#!/usr/bin/env bash
# Tier-1 verification plus a parallel smoke sweep.
#
# Runs the unit/integration/property test suite, then a tiny 2-policy x
# 2-capacity sweep through the multiprocessing path (--jobs 2) and
# checks it is bit-identical to the serial path (--jobs 1), so every PR
# exercises the spawn/fork worker plumbing and the determinism
# guarantee, not just the in-process code.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

echo "== import preflight (PYTHONPATH=src resolution) =="
if ! preflight_err="$(python -c 'import repro, repro.cli, repro.lint' 2>&1)"; then
    echo "FATAL: cannot import the repro package with PYTHONPATH=src." >&2
    echo "Run this script from a checkout whose src/repro is intact;" >&2
    echo "the import error was:" >&2
    echo "$preflight_err" >&2
    exit 1
fi

echo "== repro-lint (determinism / purity / FP-discipline) =="
# Human output for the log, then the JSON surface the tooling consumes.
python -m repro.lint src/repro
python -m repro.lint src/repro --format json > /dev/null

echo "== repro-lint --deep (shard safety / transitive purity / units) =="
# Whole-program pass, gated on its own committed baseline
# (lint-deep-baseline.json). Every cross-worker access must carry a
# `# shard:` annotation or a reasoned baseline entry; the inventory is
# written as a CI artifact for the sharded-engine work (ROADMAP item 2).
python -m repro.lint --deep src/repro --shard-report shard-report.json
python - <<'EOF'
import json

report = json.load(open("shard-report.json"))
sites = report["sites"]
cross = [s for s in sites if s["ownership"] == "cross-worker"]
assert cross, "shard report is vacuous: no cross-worker sites at all"
assert report["summary"]["unannotated_cross_worker"] == 0, \
    "unannotated cross-worker accesses slipped past the lint gate"
functions = {s["function"] for s in cross}
for expected in ("Orchestrator._dispatch", "Orchestrator._sample_memory",
                 "Worker._charge"):
    assert any(f.endswith(expected) for f in functions), \
        f"known cross-worker site missing from inventory: {expected}"
print(f"shard inventory OK: {len(sites)} sites "
      f"({len(cross)} cross-worker), placement + cluster-memory covered")
EOF

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== parallel smoke sweep (--jobs 2 vs --jobs 1) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
common=(sweep --preset azure --requests 1500 --seed 3
        --policies TTL,FaasCache --capacities 2,4 --quiet)
python -m repro.cli "${common[@]}" --jobs 2 --out "$tmpdir/parallel.md"
python -m repro.cli "${common[@]}" --jobs 1 --out "$tmpdir/serial.md"
cmp "$tmpdir/parallel.md" "$tmpdir/serial.md"
echo "parallel sweep matches serial bit-for-bit"

echo "== telemetry smoke (JSONL events + Chrome trace + time series) =="
python -m repro.cli trace --preset azure --requests 1500 --seed 3 \
    --policy CIDRE --capacity-gb 2 --ring-capacity 512 \
    --events-out "$tmpdir/events.jsonl" \
    --chrome-trace "$tmpdir/trace.json" \
    --timeseries-out "$tmpdir/series.json" > /dev/null
python - "$tmpdir" <<'EOF'
import json, sys
tmpdir = sys.argv[1]
events = [json.loads(line)
          for line in open(f"{tmpdir}/events.jsonl") if line.strip()]
assert events, "no events streamed"
assert all({"t", "kind", "func"} <= set(e) for e in events)
trace = json.load(open(f"{tmpdir}/trace.json"))
assert trace["traceEvents"], "empty Chrome trace"
assert all("ph" in e and "pid" in e for e in trace["traceEvents"])
series = json.load(open(f"{tmpdir}/series.json"))
assert series["cluster"]["times_ms"] and series["functions"]
print(f"telemetry artifacts OK: {len(events)} events, "
      f"{len(trace['traceEvents'])} trace events, "
      f"{len(series['cluster']['times_ms'])} samples x "
      f"{len(series['functions'])} functions")
EOF

echo "== sanitized replay smoke (--sanitize is a bit-identical no-op) =="
run_common=(run --preset azure --requests 1500 --seed 3
            --policy CIDRE --capacity-gb 2)
python -m repro.cli "${run_common[@]}" > "$tmpdir/run-plain.txt"
python -m repro.cli "${run_common[@]}" --sanitize \
    > "$tmpdir/run-sanitized.txt" 2> "$tmpdir/sanitizer.log"
if ! cmp "$tmpdir/run-plain.txt" "$tmpdir/run-sanitized.txt"; then
    echo "FATAL: sanitized replay diverged from the plain replay" >&2
    exit 1
fi
grep -q "sanitizer: ok" "$tmpdir/sanitizer.log"
echo "sanitized replay matches plain replay bit-for-bit"

echo "== decision-audit smoke (audit verb artifacts) =="
python -m repro.cli audit --preset azure --requests 1500 --seed 3 \
    --policy CIDRE --capacity-gb 2 \
    --audit-out "$tmpdir/audit.jsonl" \
    --metrics-out "$tmpdir/metrics.prom" > /dev/null
python - "$tmpdir" <<'EOF'
import json, sys
tmpdir = sys.argv[1]
records = [json.loads(line)
           for line in open(f"{tmpdir}/audit.jsonl") if line.strip()]
assert records, "no audit records streamed"
kinds = {r["kind"] for r in records}
assert kinds <= {"css_scale", "gate_flip", "eviction_decision",
                 "scale_down"}, kinds
assert all("t" in r for r in records)
prom = open(f"{tmpdir}/metrics.prom").read()
assert "# TYPE" in prom and "repro_requests_total" in prom
print(f"audit artifacts OK: {len(records)} records "
      f"({len(kinds)} kinds), metrics exposition non-empty")
EOF

echo "== sweep --progress heartbeat smoke (--jobs 2) =="
python -m repro.cli sweep --preset azure --requests 1500 --seed 3 \
    --policies TTL,FaasCache --capacities 2,4 --jobs 2 --progress \
    2> "$tmpdir/progress.log" > /dev/null
grep -q "eta" "$tmpdir/progress.log"
test "$(grep -c "eta" "$tmpdir/progress.log")" -eq 4
echo "progress heartbeat OK: one line per cell"

echo "== chaos smoke (deterministic fault injection, sanitized) =="
# Two identical seeded chaos runs — one plain, one sanitized — must be
# bit-identical, actually inject crashes, and pass the sanitizer sweeps.
chaos_common=(run --preset azure --requests 1500 --seed 3
              --policy CIDRE --capacity-gb 4 --workers 2 --chaos-seed 7)
python -m repro.cli "${chaos_common[@]}" > "$tmpdir/chaos-plain.txt"
python -m repro.cli "${chaos_common[@]}" --sanitize \
    > "$tmpdir/chaos-sanitized.txt" 2> "$tmpdir/chaos-sanitizer.log"
if ! cmp "$tmpdir/chaos-plain.txt" "$tmpdir/chaos-sanitized.txt"; then
    echo "FATAL: sanitized chaos replay diverged from the plain one" >&2
    exit 1
fi
grep -q "sanitizer: ok" "$tmpdir/chaos-sanitizer.log"
grep -q "worker_crashes" "$tmpdir/chaos-plain.txt"
if grep -Eq "worker_crashes +0\.000" "$tmpdir/chaos-plain.txt"; then
    echo "FATAL: chaos smoke injected no crashes (vacuous run)" >&2
    exit 1
fi
echo "chaos replay deterministic under the sanitizer, crashes injected"

echo "== blame smoke (causal attribution on the chaos trace) =="
# Attribution + outcome resolution over the seeded chaos run. The check
# is non-vacuous: at least one cold start must be blamed on an audited
# eviction decision (the chaos trace is known to churn the warm pool).
python -m repro.cli blame --preset azure --requests 1500 --seed 3 \
    --policy CIDRE --capacity-gb 4 --workers 2 --chaos-seed 7 \
    --top 3 > "$tmpdir/blame.txt"
grep -q "cold starts by proximate cause" "$tmpdir/blame.txt"
grep -q "worst decisions" "$tmpdir/blame.txt"
if ! grep -Eq "^eviction +[1-9]" "$tmpdir/blame.txt"; then
    echo "FATAL: blame smoke found no eviction-caused cold starts" >&2
    exit 1
fi
echo "blame attribution non-vacuous: eviction-caused cold starts resolved"

echo "== fast-forward vs reference event-log cmp (bit-identity) =="
# The packed-stream + idle-fast-forward replay must produce a
# byte-identical JSONL event log to the classic reference replay.
ff_common=(trace --preset azure --requests 1500 --seed 3
           --policy CIDRE --capacity-gb 2)
python -m repro.cli "${ff_common[@]}" --reference \
    --events-out "$tmpdir/events-ref.jsonl" > /dev/null
python -m repro.cli "${ff_common[@]}" --fast-forward \
    --events-out "$tmpdir/events-ff.jsonl" > /dev/null
cmp "$tmpdir/events-ref.jsonl" "$tmpdir/events-ff.jsonl"
# Same check through the diff verb (exit 0 + "identical" on no drift).
python -m repro.cli diff "$tmpdir/events-ref.jsonl" \
    "$tmpdir/events-ff.jsonl" | grep -q "identical"
echo "fast-forward event log matches reference byte-for-byte"

echo "== contention smoke (inert-model identity, deterministic replay) =="
# An attached-but-inert contention model (alpha=0) must replay the exact
# byte stream of a contention-free run: the progress-based completion
# path may add no events and no float drift while every slowdown is 1.
cont_common=(trace --preset azure --requests 1500 --seed 3
             --policy CIDRE --capacity-gb 2)
python -m repro.cli "${cont_common[@]}" \
    --events-out "$tmpdir/events-plain.jsonl" > /dev/null
python -m repro.cli "${cont_common[@]}" \
    --contention-cores 4 --contention-alpha 0 \
    --events-out "$tmpdir/events-inert.jsonl" > /dev/null
cmp "$tmpdir/events-plain.jsonl" "$tmpdir/events-inert.jsonl"
echo "inert contention model matches contention-off byte-for-byte"
# A live model must itself be deterministic across the classic,
# reference and fast-forward replays (rescheduled completions are real
# heap events, so the analytic skip cannot jump a retiming).
python -m repro.cli "${cont_common[@]}" --contention-cores 1 \
    --events-out "$tmpdir/events-cont.jsonl" > /dev/null
python -m repro.cli "${cont_common[@]}" --contention-cores 1 --reference \
    --events-out "$tmpdir/events-cont-ref.jsonl" > /dev/null
python -m repro.cli "${cont_common[@]}" --contention-cores 1 --fast-forward \
    --events-out "$tmpdir/events-cont-ff.jsonl" > /dev/null
cmp "$tmpdir/events-cont.jsonl" "$tmpdir/events-cont-ref.jsonl"
cmp "$tmpdir/events-cont.jsonl" "$tmpdir/events-cont-ff.jsonl"
grep -q 'slowdown=' "$tmpdir/events-cont.jsonl" || {
    echo "FATAL: contention smoke slowed nothing (vacuous run)" >&2
    exit 1
}
echo "contention replay deterministic across classic/reference/fast-forward"

echo "== replay throughput smoke (ci-smoke vs committed baseline) =="
# Gate on the committed trajectory point, both replay modes. The band
# is two-sided: a large unexplained speedup means the committed
# baseline went stale and stopped guarding anything. The fast-forward
# run is one-sided — ff is a wash on the dense smoke trace, so only a
# slowdown there is a bug.
python -m repro.cli bench-throughput --scenarios ci-smoke \
    --check BENCH_throughput.json --factor 1.5
python -m repro.cli bench-throughput --scenarios ci-smoke --fast-forward \
    --check BENCH_throughput.json --factor 1.5 --one-sided
