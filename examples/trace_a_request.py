#!/usr/bin/env python
"""Debugging a policy with the structured event log.

Why did *that* request wait 900 ms? The :class:`repro.sim.EventLog`
records every control-plane decision; ``explain_request`` reconstructs one
request's latency story — when it arrived, what was provisioned for it,
which container finally ran it and why it had to wait.

Run with::

    python examples/trace_a_request.py
"""

from __future__ import annotations

import numpy as np

from repro.sim import (EventLog, FunctionSpec, Orchestrator, Request,
                       SimulationConfig, StartType)
from repro import CIDREPolicy


def main() -> None:
    rng = np.random.default_rng(3)
    functions = [FunctionSpec("checkout", memory_mb=512,
                              cold_start_ms=1_200)]
    # A small burst against an empty cache.
    requests = [Request("checkout", 1_000.0 + float(rng.uniform(0, 150)),
                        float(rng.lognormal(5.5, 0.2)))
                for _ in range(6)]

    log = EventLog()
    orchestrator = Orchestrator(functions, CIDREPolicy(),
                                SimulationConfig(capacity_gb=4.0),
                                event_log=log)
    result = orchestrator.run(requests)

    print(f"replayed {result.total} requests; "
          f"{len(log)} control-plane events recorded\n")

    # Pick the slowest non-warm request and explain it.
    slowest = max(result.requests, key=lambda r: r.wait_ms)
    print(f"slowest request: r{slowest.req_id} "
          f"({slowest.start_type.value} start, "
          f"waited {slowest.wait_ms:,.0f} ms)\n")
    print("its event story:")
    print(log.render(log.explain_request(slowest.req_id)))

    delayed = [r for r in result.requests
               if r.start_type is StartType.DELAYED]
    if delayed:
        print(f"\n{len(delayed)} of the burst's requests rode busy "
              f"containers (delayed warm starts) instead of waiting "
              f"for their own cold start.")


if __name__ == "__main__":
    main()
