#!/usr/bin/env python
"""Debugging a policy with the event log and run telemetry.

Why did *that* request wait 900 ms? The :class:`repro.sim.EventLog`
records every control-plane decision; ``explain_request`` reconstructs
one request's latency story — when it arrived, what was provisioned for
it, which container finally ran it and why it had to wait. The
:mod:`repro.sim.telemetry` sinks extend the same stream into artifacts:
a JSONL event file, per-request spans, a Chrome ``trace_event`` file
you can open in Perfetto or ``chrome://tracing``, and per-function time
series.

Run with::

    python examples/trace_a_request.py

(or reproduce it from the CLI with ``cidre-sim trace`` /
``cidre-sim explain``).
"""

from __future__ import annotations

import numpy as np

from repro.sim import (EventLog, FunctionSpec, JsonlSink, Orchestrator,
                       Request, SimulationConfig, SpanBuilder, StartType,
                       TimeSeriesRecorder, write_chrome_trace)
from repro import CIDREPolicy


def main() -> None:
    rng = np.random.default_rng(3)
    functions = [FunctionSpec("checkout", memory_mb=512,
                              cold_start_ms=1_200)]
    # A small burst against an empty cache.
    requests = [Request("checkout", 1_000.0 + float(rng.uniform(0, 150)),
                        float(rng.lognormal(5.5, 0.2)))
                for _ in range(6)]

    # The log fans every event out to streaming sinks: the full stream
    # to disk as JSON Lines, and a span builder folding it into
    # per-request latency spans as it goes.
    jsonl = JsonlSink("checkout_events.jsonl")
    spans = SpanBuilder()
    log = EventLog(sinks=(jsonl, spans))
    recorder = TimeSeriesRecorder(interval_ms=500.0)
    orchestrator = Orchestrator(functions, CIDREPolicy(),
                                SimulationConfig(capacity_gb=4.0),
                                event_log=log, recorder=recorder)
    result = orchestrator.run(requests)
    log.close()

    print(f"replayed {result.total} requests; "
          f"{len(log)} control-plane events recorded "
          f"({jsonl.emitted} streamed to {jsonl.path})\n")

    # Pick the slowest non-warm request and explain it.
    slowest = max(result.requests, key=lambda r: r.wait_ms)
    print(f"slowest request: r{slowest.req_id} "
          f"({slowest.start_type.value} start, "
          f"waited {slowest.wait_ms:,.0f} ms)\n")
    print("its event story:")
    print(log.render(log.explain_request(slowest.req_id)))

    # The same story, as a span: wait vs exec decomposition.
    span = next(s for s in spans.finish()
                if s.req_id == slowest.req_id)
    print(f"\nas a span: waited {span.wait_ms:,.0f} ms, "
          f"executed {span.exec_ms:,.0f} ms on c{span.container_id}"
          + (f" (provisioned "
             f"{span.provision_ready_ms - span.provision_start_ms:,.0f}"
             f" ms for it)" if span.provision_start_ms is not None
             else ""))

    # Export everything the burst did as a Chrome trace: open
    # checkout.trace.json in https://ui.perfetto.dev.
    trace = write_chrome_trace("checkout.trace.json", spans)
    print(f"\nwrote checkout.trace.json "
          f"({len(trace['traceEvents'])} trace events) — load it in "
          f"Perfetto or chrome://tracing")

    # And the warm-pool time series the recorder sampled.
    warm = recorder.functions["checkout"].points("warm")
    peak_t, peak = max(warm, key=lambda p: p[1])
    print(f"checkout warm pool peaked at {peak:.0f} containers "
          f"(t={peak_t:,.0f} ms)")

    delayed = [r for r in result.requests
               if r.start_type is StartType.DELAYED]
    if delayed:
        print(f"\n{len(delayed)} of the burst's requests rode busy "
              f"containers (delayed warm starts) instead of waiting "
              f"for their own cold start.")


if __name__ == "__main__":
    main()
