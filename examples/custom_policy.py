#!/usr/bin/env python
"""Writing a custom orchestration policy against the public API.

The simulator treats policies as plug-ins: subclass
:class:`repro.OrchestrationPolicy`, override the scaling decision and/or the
eviction priority, and run it through the same harness as the built-ins.
This example builds a "HYBRID" policy that:

* queues on busy containers only when the function's *average* execution
  time is short relative to its cold start (a static version of CIDRE's
  dynamic CSS gate);
* evicts by cost-weighted recency.

It is intentionally simple — the point is the extension surface, and that
even a crude concurrency-aware rule beats pure caching.

Run with::

    python examples/custom_policy.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import (CIDREPolicy, FaasCachePolicy, OrchestrationPolicy,
                   SimulationConfig, simulate)
from repro.policies import ScalingDecision
from repro.traces import azure_trace


class HybridPolicy(OrchestrationPolicy):
    """Queue on busy containers iff executions look short; else cold start."""

    name = "HYBRID"

    def __init__(self, ratio_threshold: float = 0.5):
        super().__init__()
        self.ratio_threshold = ratio_threshold
        self._exec_sum = defaultdict(float)
        self._exec_count = defaultdict(int)

    # -- learn execution times as requests complete ---------------------

    def on_request_complete(self, container, request, now):
        super().on_request_complete(container, request, now)
        self._exec_sum[request.func] += request.exec_ms
        self._exec_count[request.func] += 1

    # -- scaling ---------------------------------------------------------

    def scale(self, request, worker, now) -> ScalingDecision:
        count = self._exec_count[request.func]
        if count == 0:
            return ScalingDecision.cold()
        avg_exec = self._exec_sum[request.func] / count
        cold = self.ctx.spec_of(request.func).cold_start_ms
        if avg_exec < self.ratio_threshold * cold:
            return ScalingDecision.queue()
        return ScalingDecision.cold()

    # -- eviction: cost-weighted recency ----------------------------------

    def priority(self, container, now) -> float:
        spec = container.spec
        return container.last_used_ms + spec.cold_start_ms


def main() -> None:
    trace = azure_trace(total_requests=15_000, n_functions=150)
    config = SimulationConfig(capacity_gb=50.0)
    print(f"workload: {trace.num_requests} requests, "
          f"{trace.num_functions} functions, 50 GB cache\n")
    for policy in (FaasCachePolicy(), HybridPolicy(), CIDREPolicy()):
        result = simulate(trace.functions, trace.fresh_requests(), policy,
                          config)
        print(f"{policy.name:<10} overhead={result.avg_overhead_ratio:.3f} "
              f"cold={result.cold_start_ratio:.2f} "
              f"delayed={result.delayed_start_ratio:.2f} "
              f"avg wait={result.avg_wait_ms:,.0f} ms")
    print("\nHYBRID sits between FaasCache and CIDRE: static "
          "concurrency-awareness\nhelps, adaptive speculative scaling "
          "helps more.")


if __name__ == "__main__":
    main()
