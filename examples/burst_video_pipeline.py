#!/usr/bin/env python
"""Burst-parallel video processing under different keep-alive policies.

The paper's introduction motivates CIDRE with burst-parallel workloads
(Sprocket/ExCamera-style video pipelines) where a single job fans out into
hundreds of concurrent invocations of the same function. This example
models such a pipeline:

* ``split``     — one invocation per job;
* ``transcode`` — a fan-out of 50-400 concurrent chunk invocations per job;
* ``stitch``    — one invocation per job after the fan-out completes.

It then replays the workload under FaasCache, CIDRE_BSS and CIDRE and
reports how each handles the concurrency-driven scaling: the fan-out is
exactly the situation where reusing busy warm containers (delayed warm
starts) beats provisioning hundreds of cold containers.

Run with::

    python examples/burst_video_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import (CIDREBSSPolicy, CIDREPolicy, FaasCachePolicy,
                   FunctionSpec, Request, SimulationConfig, simulate)
from repro.sim import StartType


def build_pipeline_workload(seed: int = 42, jobs: int = 25):
    rng = np.random.default_rng(seed)
    functions = [
        FunctionSpec("split", memory_mb=256, cold_start_ms=600),
        FunctionSpec("transcode", memory_mb=768, cold_start_ms=1500),
        FunctionSpec("stitch", memory_mb=512, cold_start_ms=1000),
    ]
    requests = []
    for _ in range(jobs):
        job_at = rng.uniform(0, 15 * 60_000.0)
        split_exec = float(rng.lognormal(5.5, 0.2))       # ~250 ms
        requests.append(Request("split", job_at, split_exec))
        fanout_at = job_at + split_exec
        chunks = int(rng.integers(50, 400))
        chunk_execs = rng.lognormal(6.0, 0.25, size=chunks)  # ~400 ms
        for exec_ms in chunk_execs:
            requests.append(Request("transcode",
                                    fanout_at + rng.uniform(0, 100),
                                    float(exec_ms)))
        stitch_at = fanout_at + float(chunk_execs.max()) + 500.0
        requests.append(Request("stitch", stitch_at,
                                float(rng.lognormal(6.5, 0.2))))
    return functions, requests


def main() -> None:
    functions, requests = build_pipeline_workload()
    # Cache sized well below peak fan-out demand: 400 concurrent
    # transcodes would want ~300 GB; give it 40 GB.
    config = SimulationConfig(capacity_gb=40.0)

    print(f"video pipeline: {len(requests)} invocations across "
          f"{len(functions)} functions, 40 GB cache\n")
    for policy in (FaasCachePolicy(), CIDREBSSPolicy(), CIDREPolicy()):
        result = simulate(functions,
                          [Request(r.func, r.arrival_ms, r.exec_ms)
                           for r in requests],
                          policy, config)
        per_fn = result.per_function()
        transcode = per_fn["transcode"]
        print(f"== {policy.name}")
        print(f"   overall: overhead ratio {result.avg_overhead_ratio:.3f}, "
              f"cold {result.cold_start_ratio:.1%}, "
              f"delayed {result.delayed_start_ratio:.1%}, "
              f"p99 wait {result.wait_percentile(99):,.0f} ms")
        print(f"   transcode fan-out: cold {transcode.cold_start_ratio:.1%},"
              f" delayed {transcode.delayed_start_ratio:.1%}, "
              f"avg wait {transcode.avg_wait_ms:,.0f} ms, "
              f"wasted cold starts {result.wasted_cold_starts}")
    print("\nThe fan-out stage is where speculative scaling pays off: "
          "instead of\nhundreds of cold starts per job, most chunks ride "
          "containers vacated by\nearlier chunks (delayed warm starts).")


if __name__ == "__main__":
    main()
