#!/usr/bin/env python
"""Replaying the *real* Azure Functions 2019 dataset.

If you download the "Serverless in the Wild" dataset
(https://github.com/Azure/AzurePublicDataset), this example replays a
30-minute window of day 1 through CIDRE and FaasCache:

    python examples/replay_azure_dataset.py \
        ~/azurefunctions-dataset2019/invocations_per_function_md.anon.d01.csv \
        ~/azurefunctions-dataset2019/function_durations_percentiles.anon.d01.csv \
        ~/azurefunctions-dataset2019/app_memory_percentiles.anon.d01.csv

Without arguments it fabricates a small dataset in the same CSV schema so
the example is runnable offline — the point is the adapter workflow, not
the numbers.
"""

from __future__ import annotations

import csv
import sys
import tempfile
from pathlib import Path

from repro import SimulationConfig
from repro.experiments.parallel import ParallelRunner
from repro.traces.azure_dataset import azure_dataset_trace


def fabricate_dataset(directory: Path):
    """Write a tiny synthetic dataset in the real schema (20 functions)."""
    import numpy as np
    rng = np.random.default_rng(11)
    minutes = [str(m) for m in range(1, 1441)]

    inv = directory / "invocations.csv"
    with open(inv, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=[
            "HashOwner", "HashApp", "HashFunction", "Trigger"] + minutes)
        writer.writeheader()
        for i in range(20):
            row = {"HashOwner": "o", "HashApp": f"app{i % 5}",
                   "HashFunction": f"func{i:02d}", "Trigger": "http"}
            rate = rng.integers(1, 40)
            for m in minutes:
                row[m] = str(int(rng.poisson(rate)))
            writer.writerow(row)

    dur = directory / "durations.csv"
    with open(dur, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=[
            "HashOwner", "HashApp", "HashFunction", "Average",
            "percentile_Average_50", "percentile_Average_75"])
        writer.writeheader()
        for i in range(20):
            p50 = float(rng.lognormal(5.5, 0.8))
            writer.writerow({"HashOwner": "o", "HashApp": f"app{i % 5}",
                             "HashFunction": f"func{i:02d}",
                             "Average": p50 * 1.1,
                             "percentile_Average_50": p50,
                             "percentile_Average_75": p50 * 1.4})

    mem = directory / "memory.csv"
    with open(mem, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=[
            "HashOwner", "HashApp", "AverageAllocatedMb"])
        writer.writeheader()
        for a in range(5):
            writer.writerow({"HashOwner": "o", "HashApp": f"app{a}",
                             "AverageAllocatedMb":
                             str(int(rng.integers(128, 1024)))})
    return inv, dur, mem


def main() -> None:
    if len(sys.argv) == 4:
        paths = [Path(p) for p in sys.argv[1:4]]
        source = "real Azure dataset"
    else:
        tmp = Path(tempfile.mkdtemp(prefix="azure-dataset-demo-"))
        paths = list(fabricate_dataset(tmp))
        source = f"fabricated demo dataset in {tmp}"

    trace = azure_dataset_trace(*paths, start_minute=0,
                                duration_minutes=30, max_functions=100,
                                seed=1)
    print(f"loaded {source}: {trace.num_functions} functions, "
          f"{trace.num_requests} requests in the 30-minute window\n")

    # Both policies replay concurrently in worker processes; results are
    # bit-identical to running them one after another in-process.
    runner = ParallelRunner(jobs=2)
    results = runner.run_grid(trace, ["FaasCache", "CIDRE"],
                              [SimulationConfig(capacity_gb=16.0)])
    for exp in results:
        result = exp.result
        print(f"{exp.policy_name:<10} "
              f"overhead={result.avg_overhead_ratio:.3f} "
              f"cold={result.cold_start_ratio:.2f} "
              f"delayed={result.delayed_start_ratio:.2f} "
              f"avg wait={result.avg_wait_ms:,.0f} ms")
    print(f"\n{runner.last_report.render()}")


if __name__ == "__main__":
    main()
