#!/usr/bin/env python
"""Explaining policy decisions with the decision audit.

Why did CIDRE evict *that* container? Why did the CSS gate close the
cold-start path for a function? The event log says what happened; the
:class:`repro.obs.DecisionAudit` records **why** — one record per CSS
``scale()`` call (the four Algorithm 1 signals and the branch taken),
per BSS gate flip, and per REPLACE eviction with every victim's Eq. 3
term decomposition (``clock``, ``freq_per_min``, ``cost_ms``,
``size_mb``, ``warm_count``) and the surviving candidates it outranked.

A :class:`repro.obs.MetricsRegistry` rides along and exports the run as
Prometheus text exposition.

Run with::

    python examples/audit_an_eviction.py

(or reproduce it from the CLI with ``cidre-sim audit``).
"""

from __future__ import annotations

import numpy as np

from repro import CIDREPolicy
from repro.analysis.audit import (eviction_balance, expensive_decisions,
                                  gate_flip_timeline)
from repro.obs import DecisionAudit, MetricsRegistry
from repro.sim import FunctionSpec, Orchestrator, Request, SimulationConfig


def contended_burst(rng, n_funcs=5, rounds=40):
    """Several functions repeatedly bursting against a small cache."""
    functions = [FunctionSpec(f"svc{i}", memory_mb=200.0,
                              cold_start_ms=800.0)
                 for i in range(n_funcs)]
    requests = []
    for r in range(rounds):
        at = r * 4_000.0
        for i in range(n_funcs):
            for _ in range(int(rng.integers(1, 4))):
                requests.append(
                    Request(f"svc{i}", at + float(rng.uniform(0, 600)),
                            float(rng.lognormal(5.2, 0.4))))
    return functions, requests


def main() -> None:
    rng = np.random.default_rng(11)
    functions, requests = contended_burst(rng)

    audit = DecisionAudit()
    metrics = MetricsRegistry()
    orchestrator = Orchestrator(functions, CIDREPolicy(),
                                SimulationConfig(capacity_gb=1.0),
                                audit=audit, metrics=metrics)
    result = orchestrator.run(requests)

    by_kind = {kind: len(audit.of_kind(kind))
               for kind in ("css_scale", "gate_flip", "eviction_decision")}
    print(f"replayed {result.total} requests; {audit.recorded} decision "
          f"records: {by_kind}\n")

    # --- why did the gate flip? --------------------------------------
    for func, flips in sorted(gate_flip_timeline(list(audit)).items()):
        story = ", ".join(
            f"t={t:,.0f} {'reopened' if enabled else 'closed'} ({reason})"
            for t, enabled, reason in flips[:4])
        print(f"{func}: {len(flips)} gate flip(s) — {story}")

    # --- why did the most expensive eviction pick its victims? -------
    evictions = [(cost, r) for cost, r in expensive_decisions(list(audit))
                 if r["kind"] == "eviction_decision"]
    if evictions:
        cost, record = evictions[0]
        print(f"\nmost expensive eviction (t={record['t']:,.0f} ms, "
              f"~{cost:,.0f} ms of cold starts to win back, "
              f"needed {record['need_mb']:.0f} MB):")
        for victim in record["victims"]:
            print(f"  evicted c{victim['cid']} ({victim['func']}): "
                  f"priority {victim['priority']:.3f} = "
                  f"clock {victim['clock']:.3f} + "
                  f"{victim['freq_per_min']:.2f}/min * "
                  f"{victim['cost_ms']:.0f} ms / "
                  f"({victim['size_mb']:.0f} MB * "
                  f"|F|={victim['warm_count']})")
        survivor = record["survivors"][0] if record["survivors"] else None
        if survivor is not None:
            print(f"  cheapest survivor: c{survivor['cid']} "
                  f"({survivor['func']}) at priority "
                  f"{survivor['priority']:.3f}")

    # --- Observation 2, from decision provenance alone ---------------
    balance = eviction_balance(list(audit))
    print(f"\neviction balance over {balance.decisions} REPLACE "
          f"decisions ({balance.total} victims): "
          f"max per-function share {balance.max_share:.1%}")
    for func, count, share in balance.rows():
        print(f"  {func}: {count} ({share:.1%})")

    # --- and the metrics sidecar -------------------------------------
    metrics.save_prometheus("audit_metrics.prom")
    print(f"\nwrote audit_metrics.prom ({len(metrics)} metric families) "
          f"— promtool/Grafana-ready text exposition")


if __name__ == "__main__":
    main()
