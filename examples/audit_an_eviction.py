#!/usr/bin/env python
"""Explaining policy decisions — and what they cost.

Why did CIDRE evict *that* container? Why did the CSS gate close the
cold-start path for a function? The event log says what happened; the
:class:`repro.obs.DecisionAudit` records **why** — one record per CSS
``scale()`` call (the four Algorithm 1 signals and the branch taken),
per BSS gate flip, and per REPLACE eviction with every victim's Eq. 3
term decomposition (``clock``, ``freq_per_min``, ``cost_ms``,
``size_mb``, ``warm_count``) and the surviving candidates it outranked.

The second half follows a decision to its *outcome*: with a
:class:`repro.obs.CauseTracker` attached, every cold start is stamped
with the decision that emptied the warm pool it would have hit, and
the :class:`repro.obs.OutcomeResolver` settles each eviction at a
horizon — the cold-start penalty it caused versus the memory it
reclaimed (its *regret*), plus the keep-warm waste of its victims.

A :class:`repro.obs.MetricsRegistry` rides along and exports the run as
Prometheus text exposition.

Run with::

    python examples/audit_an_eviction.py

(or reproduce it from the CLI with ``cidre-sim audit`` and
``cidre-sim blame``).
"""

from __future__ import annotations

import numpy as np

from repro import CIDREPolicy
from repro.analysis.attribution import (cause_breakdown, frontier_rows,
                                        regret_instants, worst_decisions)
from repro.analysis.audit import (eviction_balance, expensive_decisions,
                                  gate_flip_timeline)
from repro.obs import CauseTracker, DecisionAudit, MetricsRegistry, resolve
from repro.sim import FunctionSpec, Orchestrator, Request, SimulationConfig
from repro.sim.eventlog import EventLog
from repro.sim.telemetry import write_chrome_trace


def contended_burst(rng, n_funcs=5, rounds=40):
    """Several functions repeatedly bursting against a small cache."""
    functions = [FunctionSpec(f"svc{i}", memory_mb=200.0,
                              cold_start_ms=800.0)
                 for i in range(n_funcs)]
    requests = []
    for r in range(rounds):
        at = r * 4_000.0
        for i in range(n_funcs):
            for _ in range(int(rng.integers(1, 4))):
                requests.append(
                    Request(f"svc{i}", at + float(rng.uniform(0, 600)),
                            float(rng.lognormal(5.2, 0.4))))
    return functions, requests


def main() -> None:
    rng = np.random.default_rng(11)
    functions, requests = contended_burst(rng)

    audit = DecisionAudit()
    metrics = MetricsRegistry()
    log = EventLog()
    orchestrator = Orchestrator(functions, CIDREPolicy(),
                                SimulationConfig(capacity_gb=1.0),
                                audit=audit, metrics=metrics,
                                event_log=log,
                                attribution=CauseTracker())
    result = orchestrator.run(requests)

    by_kind = {kind: len(audit.of_kind(kind))
               for kind in ("css_scale", "gate_flip", "eviction_decision")}
    print(f"replayed {result.total} requests; {audit.recorded} decision "
          f"records: {by_kind}\n")

    # --- why did the gate flip? --------------------------------------
    for func, flips in sorted(gate_flip_timeline(list(audit)).items()):
        story = ", ".join(
            f"t={t:,.0f} {'reopened' if enabled else 'closed'} ({reason})"
            for t, enabled, reason in flips[:4])
        print(f"{func}: {len(flips)} gate flip(s) — {story}")

    # --- why did the most expensive eviction pick its victims? -------
    evictions = [(cost, r) for cost, r in expensive_decisions(list(audit))
                 if r["kind"] == "eviction_decision"]
    if evictions:
        cost, record = evictions[0]
        print(f"\nmost expensive eviction (t={record['t']:,.0f} ms, "
              f"~{cost:,.0f} ms of cold starts to win back, "
              f"needed {record['need_mb']:.0f} MB):")
        for victim in record["victims"]:
            print(f"  evicted c{victim['cid']} ({victim['func']}): "
                  f"priority {victim['priority']:.3f} = "
                  f"clock {victim['clock']:.3f} + "
                  f"{victim['freq_per_min']:.2f}/min * "
                  f"{victim['cost_ms']:.0f} ms / "
                  f"({victim['size_mb']:.0f} MB * "
                  f"|F|={victim['warm_count']})")
        survivor = record["survivors"][0] if record["survivors"] else None
        if survivor is not None:
            print(f"  cheapest survivor: c{survivor['cid']} "
                  f"({survivor['func']}) at priority "
                  f"{survivor['priority']:.3f}")

    # --- Observation 2, from decision provenance alone ---------------
    balance = eviction_balance(list(audit))
    print(f"\neviction balance over {balance.decisions} REPLACE "
          f"decisions ({balance.total} victims): "
          f"max per-function share {balance.max_share:.1%}")
    for func, count, share in balance.rows():
        print(f"  {func}: {count} ({share:.1%})")

    # --- from intent to outcome: what did the decisions cost? --------
    resolver = resolve(audit.records, log.events, metrics=metrics)
    print("\ncold starts by proximate cause:",
          dict(sorted(cause_breakdown(log.events).items())))
    print(f"{len(resolver.outcomes)} decisions settled; worst by regret:")
    for outcome, record in worst_decisions(resolver, audit, k=3):
        for_func = (record or {}).get("for_func", "?")
        print(f"  #{outcome.did} ({outcome.kind}) at "
              f"{outcome.t_ms:,.0f} ms for {for_func}: caused "
              f"{outcome.penalty_ms:,.0f} ms of cold starts across "
              f"{outcome.provisions} provision(s), reclaimed "
              f"{outcome.reclaimed_mb_ms / 1e3:,.0f} MB-s -> regret "
              f"{outcome.regret_ms:,.0f} ms")

    # The flip side: which functions were kept warm for nothing?
    print("keep-warm waste vs cold-start penalty (top 3 by waste):")
    for func, waste_mb_ms, penalty_ms in frontier_rows(resolver)[:3]:
        print(f"  {func}: idled {waste_mb_ms / 1e3:,.0f} MB-s, "
              f"paid {penalty_ms:,.0f} ms of blamed cold starts")

    # --- and the artifact sidecars -----------------------------------
    # High-regret evictions become instant markers on the Chrome trace,
    # so the Perfetto timeline links each spike to its decision.
    markers = regret_instants(resolver, threshold_ms=0.0)
    write_chrome_trace("audit_run.trace.json", log.events,
                       instants=markers)
    metrics.save_prometheus("audit_metrics.prom")
    print(f"\nwrote audit_run.trace.json ({len(markers)} high-regret "
          f"markers) and audit_metrics.prom ({len(metrics)} metric "
          f"families) — promtool/Grafana-ready text exposition")


if __name__ == "__main__":
    main()
