#!/usr/bin/env python
"""A chaos experiment: worker crashes, stragglers, and recovery.

What happens to a policy's latency story when a worker dies mid-burst?
The fault-injection layer (:mod:`repro.sim.faults`) makes that a
*deterministic* question: a :class:`FaultPlan` — crashes with restart
delays, per-worker straggler windows, heterogeneous worker classes — is
part of the simulation input, so the chaos replays bit-identically and
every orphaned in-flight request is reassigned or accounted as failed,
never lost. :mod:`repro.analysis.resilience` then reduces the event
stream to the standard resilience views.

Run with::

    python examples/chaos_run.py

(or reproduce it from the CLI with ``cidre-sim run --chaos-seed 7
--workers 2`` / ``--faults plan.json``).
"""

from __future__ import annotations

from repro import CIDREPolicy
from repro.analysis.resilience import (cold_start_breakdown,
                                       crash_windows, goodput_series,
                                       orphan_retry_waits,
                                       resilience_summary)
from repro.sim import (CrashSpec, EventLog, FaultPlan, FunctionSpec,
                       Orchestrator, Request, RetryPolicy,
                       SimulationConfig, StragglerSpec, WorkerClassSpec)


def main() -> None:
    functions = [FunctionSpec("encode", memory_mb=512,
                              cold_start_ms=1_200),
                 FunctionSpec("thumbs", memory_mb=256,
                              cold_start_ms=600)]
    # A steady stream: one encode every 400 ms, thumbnails twice as often.
    requests = ([Request("encode", 400.0 * i, 900.0)
                 for i in range(150)]
                + [Request("thumbs", 200.0 * i, 250.0)
                   for i in range(300)])
    requests.sort(key=lambda r: r.arrival_ms)

    # The fault schedule: worker 0 crashes mid-run and rejoins 8 s
    # later; worker 1 straggles (2x exec) for 10 s around the crash and
    # belongs to a "small" class with slower cold starts. Each orphaned
    # execution may retry up to twice, 50 ms after the crash.
    plan = FaultPlan(
        crashes=(CrashSpec(worker_id=0, at_ms=20_000.0,
                           restart_delay_ms=8_000.0),),
        stragglers=(StragglerSpec(worker_id=1, start_ms=15_000.0,
                                  end_ms=25_000.0,
                                  exec_multiplier=2.0),),
        worker_classes=(WorkerClassSpec(name="small", workers=(1,),
                                        cold_start_multiplier=1.5),),
        retry=RetryPolicy(max_retries=2, retry_delay_ms=50.0))

    log = EventLog()
    config = SimulationConfig(capacity_gb=2.0, workers=2, faults=plan)
    orchestrator = Orchestrator(functions, CIDREPolicy(), config,
                                event_log=log)
    result = orchestrator.run(requests)

    total = len(result.requests) + len(result.failed_requests)
    print(f"replayed {total} arrivals under chaos: "
          f"{len(result.requests)} completed, "
          f"{len(result.failed_requests)} failed, "
          f"{result.orphaned_requests} orphaned, "
          f"{result.reassigned_requests} reassigned\n")

    # When was the cluster degraded, and for how long?
    for window in crash_windows(log.events):
        print(f"worker {window.worker_id} down "
              f"{window.crash_ms:,.0f}..{window.restart_ms:,.0f} ms "
              f"({window.duration_ms / 1000:.1f} s outage)")

    # Goodput dips at the crash and recovers after the restart.
    print("\ncompletions per 5 s bucket (the crash dip and recovery):")
    for start_ms, count in goodput_series(log.events, bucket_ms=5_000.0):
        in_outage = 20_000.0 <= start_ms < 28_000.0
        marker = "  <- worker 0 down" if in_outage else ""
        print(f"  t={start_ms:7,.0f} ms  {'#' * count}{marker}")

    # What did surviving a crash cost the orphaned requests?
    waits = orphan_retry_waits(result)
    if waits:
        print(f"\n{len(waits)} completed requests survived an orphaned "
              f"execution; their waits: "
              f"{min(waits):,.0f}..{max(waits):,.0f} ms")

    # Heterogeneity: the "small" class pays for its slower cold starts.
    print("\ncold-start latency by worker class:")
    for profile in cold_start_breakdown(log.events, plan):
        print(f"  {profile.name:8s} {profile.count:3d} provisions, "
              f"mean {profile.mean_ms:,.0f} ms")

    # Or all of the above as one flat dict (tables, JSON sidecars).
    summary = resilience_summary(result, log.events, plan)
    print(f"\nresilience summary: crashes={summary['crashes']:.0f}, "
          f"mean outage {summary['mean_outage_ms'] / 1000:.1f} s, "
          f"survivor wait p99 "
          f"{summary.get('survivor_wait_p99_ms', 0.0):,.0f} ms")


if __name__ == "__main__":
    main()
