#!/usr/bin/env python
"""When does conditional speculative scaling (CSS) matter?

Basic speculative scaling (BSS) provisions a container for *every* request
that misses idle capacity — even when a busy container was always going to
free up first. Each such "wasted" cold start evicts someone else's warm
container. This example builds the regime where that hurts most:

* a heavy co-tenant (``etl``) keeps the cache under constant pressure;
* a light API function (``api``) sees occasional overlapping pairs of
  requests.

Under BSS, every overlap of ``api`` provisions a spare that the co-tenant
evicts before it is ever reused — so the next overlap provisions again,
forever. CIDRE's CSS notices (the spare's pre-reuse idle time ``T_i``
exceeds one execution ``T_e``) and routes overlaps to the briefly busy
container instead.

Run with::

    python examples/noisy_neighbor.py
"""

from __future__ import annotations

from repro import (CIDREBSSPolicy, CIDREPolicy, FunctionSpec, Request,
                   SimulationConfig, simulate)


def build_workload():
    functions = [
        FunctionSpec("api", memory_mb=256, cold_start_ms=800),
        FunctionSpec("etl", memory_mb=256, cold_start_ms=400),
    ]
    requests = []
    t = 0.0
    while t < 400_000.0:                  # ~6-concurrent ETL stream
        t += 50.0
        requests.append(Request("etl", t, 300.0))
    for k in range(20):                   # an api pair every 20 s
        at = 1_000.0 + k * 20_000.0
        requests.append(Request("api", at, 200.0))
        requests.append(Request("api", at + 10.0, 200.0))
    return functions, requests


def main() -> None:
    functions, requests = build_workload()
    config = SimulationConfig(capacity_gb=2.0)   # room for 8 containers

    print("a noisy-neighbor cache: heavy ETL stream + a light API "
          "function, 2 GB\n")
    for policy in (CIDREBSSPolicy(), CIDREPolicy()):
        result = simulate(functions,
                          [Request(r.func, r.arrival_ms, r.exec_ms)
                           for r in requests],
                          policy, config)
        api = result.per_function()["api"]
        print(f"== {policy.name}")
        print(f"   cold starts issued: {result.cold_starts_begun:4d} "
              f"(wasted: {result.wasted_cold_starts})")
        print(f"   api: cold {api.cold_start_ratio:.0%}, "
              f"avg wait {api.avg_wait_ms:,.0f} ms, "
              f"p99 wait {api.wait_percentile(99):,.0f} ms")
    print("\nCSS cuts the cold starts issued by an order of magnitude and "
          "the API\nfunction's waits with them — the spare containers BSS "
          "kept provisioning\nwere doomed to eviction before reuse.")


if __name__ == "__main__":
    main()
