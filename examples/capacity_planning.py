#!/usr/bin/env python
"""Capacity planning with the Azure-like production workload.

An operator question the Fig. 12 sweep answers: *how much keep-alive memory
do we need, and how much does the orchestration policy buy us back?* This
example runs FaasCache and CIDRE over the Azure-like trace at several cache
sizes and prints the overhead/capacity frontier — including the "CIDRE at
80 GB beats FaasCache at 120 GB"-style equivalences that motivate deploying
a better policy instead of buying RAM.

Run with (takes a minute or two)::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.experiments import run_one, policy_factories
from repro.sim import SimulationConfig
from repro.traces import azure_trace


def main() -> None:
    trace = azure_trace(total_requests=25_000, n_functions=200)
    table = policy_factories()
    capacities = (60.0, 80.0, 100.0, 120.0)
    policies = ("FaasCache", "CIDRE")

    print(f"workload: {trace.num_requests} requests, "
          f"{trace.num_functions} functions, 30 minutes\n")
    print(f"{'capacity':>9}  " + "".join(f"{p:>22}" for p in policies))
    frontier = {}
    for gb in capacities:
        row = [f"{gb:>7.0f}GB "]
        for name in policies:
            result = run_one(trace, table[name],
                             SimulationConfig(capacity_gb=gb))
            s = result.summary()
            frontier[(name, gb)] = s["avg_overhead_ratio"]
            row.append(f"  ovr={s['avg_overhead_ratio']:.3f} "
                       f"cold={s['cold_ratio']:.2f}")
        print("".join(row))

    # Find the cheapest CIDRE capacity matching FaasCache's best.
    best_faascache = min(frontier[("FaasCache", gb)] for gb in capacities)
    for gb in capacities:
        if frontier[("CIDRE", gb)] <= best_faascache:
            print(f"\nCIDRE at {gb:.0f} GB already matches FaasCache at "
                  f"{max(capacities):.0f} GB "
                  f"({frontier[('CIDRE', gb)]:.3f} vs "
                  f"{best_faascache:.3f} overhead ratio) — the policy "
                  f"substitutes for memory.")
            break


if __name__ == "__main__":
    main()
