#!/usr/bin/env python
"""Quickstart: simulate CIDRE vs FaasCache on a tiny bursty workload.

This is the 60-second tour of the public API:

1. declare deployed functions (:class:`repro.FunctionSpec`);
2. build an invocation workload (:class:`repro.Request` list);
3. replay it under an orchestration policy (:func:`repro.simulate`);
4. read the metrics off the :class:`repro.SimulationResult`.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (CIDREPolicy, FaasCachePolicy, FunctionSpec, Request,
                   SimulationConfig, simulate)


def build_workload(seed: int = 7):
    """A small API backend: three functions, one of them spiky."""
    rng = np.random.default_rng(seed)
    functions = [
        FunctionSpec("thumbnail", memory_mb=512, cold_start_ms=900),
        FunctionSpec("auth", memory_mb=128, cold_start_ms=250),
        FunctionSpec("report", memory_mb=1024, cold_start_ms=1800),
    ]
    requests = []
    # auth: steady Poisson traffic, fast executions.
    t = 0.0
    while t < 120_000:
        t += rng.exponential(80.0)
        requests.append(Request("auth", t, float(rng.lognormal(3.3, 0.3))))
    # thumbnail: bursts of concurrent uploads.
    for _ in range(40):
        burst_at = rng.uniform(0, 120_000)
        for _ in range(int(rng.integers(3, 25))):
            requests.append(Request("thumbnail",
                                    burst_at + rng.uniform(0, 200),
                                    float(rng.lognormal(5.0, 0.25))))
    # report: rare, heavy.
    for _ in range(10):
        requests.append(Request("report", rng.uniform(0, 120_000),
                                float(rng.lognormal(7.0, 0.2))))
    return functions, requests


def main() -> None:
    functions, requests = build_workload()
    config = SimulationConfig(capacity_gb=2.0)  # a deliberately small cache

    print(f"workload: {len(requests)} requests over 2 minutes, "
          f"{len(functions)} functions, 2 GB cache\n")
    header = (f"{'policy':<12} {'overhead':>9} {'cold':>6} {'warm':>6} "
              f"{'delayed':>8} {'avg wait':>9}")
    print(header)
    print("-" * len(header))
    for policy in (FaasCachePolicy(), CIDREPolicy()):
        result = simulate(functions,
                          [Request(r.func, r.arrival_ms, r.exec_ms)
                           for r in requests],
                          policy, config)
        print(f"{policy.name:<12} {result.avg_overhead_ratio:>9.3f} "
              f"{result.cold_start_ratio:>6.2f} "
              f"{result.warm_start_ratio:>6.2f} "
              f"{result.delayed_start_ratio:>8.2f} "
              f"{result.avg_wait_ms:>7.1f}ms")
    print("\nCIDRE converts cold starts of concurrent bursts into delayed "
          "warm starts,\ncutting both the cold-start ratio and the "
          "invocation overhead.")


if __name__ == "__main__":
    main()
