"""Command-line interface: generate traces, replay policies, compare.

Examples
--------
Generate the Azure-like workload and save it::

    cidre-sim generate --preset azure --out traces/ --requests 60000

Replay one policy::

    cidre-sim run --preset azure --policy CIDRE --capacity-gb 100

Compare the full Fig. 12 roster::

    cidre-sim compare --preset fc --capacity-gb 100

Run a policy x capacity sweep across 4 worker processes with an on-disk
result cache::

    cidre-sim sweep --preset azure --policies TTL,FaasCache,CIDRE \
        --capacities 80,100,120,160 --jobs 4 --cache-dir .sweep-cache
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.experiments.runner import run_one
from repro.experiments.suites import FIG12_POLICIES, policy_factories
from repro.sim.config import SimulationConfig
from repro.traces.alibaba import fc_trace
from repro.traces.azure import azure_trace
from repro.traces.io import load_trace, save_trace
from repro.traces.schema import Trace
from repro.traces.stats import workload_stats


def _build_trace(args: argparse.Namespace) -> Trace:
    if args.load:
        return load_trace(args.load, args.trace_name)
    kwargs = {}
    if args.requests:
        kwargs["total_requests"] = args.requests
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.preset == "azure":
        return azure_trace(**kwargs)
    return fc_trace(**kwargs)


def _parse_capacities(spec: str) -> List[float]:
    try:
        return [float(c) for c in spec.split(",")]
    except ValueError:
        raise SystemExit(
            f"invalid --capacities {spec!r}: expected comma-separated "
            f"numbers, e.g. 80,100,160")


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", choices=("azure", "fc"),
                        default="azure", help="synthetic workload preset")
    parser.add_argument("--requests", type=int, default=None,
                        help="target number of requests")
    parser.add_argument("--seed", type=int, default=None,
                        help="generator seed")
    parser.add_argument("--load", default=None,
                        help="directory to load a saved trace from")
    parser.add_argument("--trace-name", default=None,
                        help="trace name when loading from --load")


def cmd_generate(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    save_trace(trace, args.out)
    stats = workload_stats(trace)
    print(f"wrote {trace.name} to {args.out}")
    print(stats.row())
    return 0


def _metrics_registry(path: Optional[str]):
    """A fresh :class:`repro.obs.MetricsRegistry` when ``path`` is set."""
    if not path:
        return None
    from repro.obs import MetricsRegistry
    return MetricsRegistry()


def _write_metrics(registry, path: str) -> None:
    """Save a metrics snapshot: Prometheus text for ``.prom``/``.txt``
    paths, JSON otherwise."""
    if path.endswith((".prom", ".txt")):
        registry.save_prometheus(path)
    else:
        registry.save_json(path)
    print(f"wrote metrics to {path}")


def _make_sanitizer(args: argparse.Namespace):
    """A fresh :class:`repro.sim.sanitizer.SimSanitizer` when
    ``--sanitize`` was given."""
    if not getattr(args, "sanitize", False):
        return None
    from repro.sim.sanitizer import SimSanitizer
    return SimSanitizer()


def _fault_plan(args: argparse.Namespace, trace: Trace):
    """The :class:`repro.sim.faults.FaultPlan` requested on the command
    line, or ``None``.

    ``--faults plan.json`` loads an explicit schedule and wins over
    ``--chaos-seed N``, which derives a random-but-reproducible plan
    from the seed, the worker count, and the trace duration."""
    if getattr(args, "faults", None):
        from repro.sim.faults import FaultPlan
        return FaultPlan.from_json(args.faults)
    chaos_seed = getattr(args, "chaos_seed", None)
    if chaos_seed is not None:
        from repro.sim.faults import random_plan
        return random_plan(chaos_seed, workers=args.workers,
                           horizon_ms=max(trace.duration_ms, 60_000.0))
    return None


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", default=None,
                        help="JSON fault-plan file (crashes, stragglers, "
                             "worker classes); see repro.sim.faults")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="derive a reproducible random fault plan "
                             "from this seed (--faults wins)")


def _contention_model(args: argparse.Namespace):
    """The :class:`repro.sim.contention.ContentionModel` requested on the
    command line, or ``None``.

    ``--contention model.json`` loads an explicit model and wins over
    ``--contention-cores``/``--contention-alpha``, which build the
    default power-law curve."""
    if getattr(args, "contention", None):
        from repro.sim.contention import ContentionModel
        return ContentionModel.from_json(args.contention)
    cores = getattr(args, "contention_cores", None)
    if cores is not None:
        from repro.sim.contention import ContentionModel
        alpha = getattr(args, "contention_alpha", None)
        return ContentionModel(
            cores=cores, alpha=1.0 if alpha is None else alpha)
    return None


def _add_contention_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--contention", default=None,
                        help="JSON CPU-contention model file; see "
                             "repro.sim.contention")
    parser.add_argument("--contention-cores", type=int, default=None,
                        help="per-worker core budget for the default "
                             "slowdown curve (enables contention; "
                             "--contention wins)")
    parser.add_argument("--contention-alpha", type=float, default=None,
                        help="exponent of the slowdown curve "
                             "max(1, busy/cores)**alpha (default 1.0; "
                             "0 makes the model inert)")


def cmd_run(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    table = policy_factories()
    if args.policy not in table:
        print(f"unknown policy {args.policy!r}; choose from: "
              f"{', '.join(sorted(table))}", file=sys.stderr)
        return 2
    config = SimulationConfig(capacity_gb=args.capacity_gb,
                              workers=args.workers,
                              threads_per_container=args.threads,
                              reference_impl=args.reference,
                              faults=_fault_plan(args, trace),
                              contention=_contention_model(args))
    metrics = _metrics_registry(args.metrics_out)
    sanitizer = _make_sanitizer(args)
    if args.profile_out:
        # A profile destination is an unambiguous request to profile.
        args.profile = True
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = run_one(trace, table[args.policy], config,
                         metrics=metrics, sanitizer=sanitizer)
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
        if args.profile_out:
            profiler.dump_stats(args.profile_out)
            print(f"wrote profile to {args.profile_out}", file=sys.stderr)
    else:
        result = run_one(trace, table[args.policy], config,
                         metrics=metrics, sanitizer=sanitizer)
    if sanitizer is not None:
        sanitizer.report()
    print(render_table(
        ["metric", "value"],
        sorted(result.summary().items()),
        title=f"{args.policy} on {trace.name} @ {args.capacity_gb} GB"))
    if metrics is not None:
        _write_metrics(metrics, args.metrics_out)
    return 0


def _resolve_policy(name: str):
    table = policy_factories()
    if name not in table:
        print(f"unknown policy {name!r}; choose from: "
              f"{', '.join(sorted(table))}", file=sys.stderr)
        return None
    return table[name]


def cmd_trace(args: argparse.Namespace) -> int:
    """Replay one policy with full run telemetry attached."""
    from repro.sim.eventlog import EventLog
    from repro.sim.telemetry import (JsonlSink, SpanBuilder,
                                     TimeSeriesRecorder,
                                     write_chrome_trace)

    trace = _build_trace(args)
    factory = _resolve_policy(args.policy)
    if factory is None:
        return 2
    config = SimulationConfig(capacity_gb=args.capacity_gb,
                              workers=args.workers,
                              threads_per_container=args.threads,
                              reference_impl=args.reference,
                              fast_forward=args.fast_forward,
                              faults=_fault_plan(args, trace),
                              contention=_contention_model(args))
    sinks = []
    jsonl = spans = None
    if args.events_out:
        jsonl = JsonlSink(args.events_out)
        sinks.append(jsonl)
    if args.chrome_trace:
        spans = SpanBuilder()
        sinks.append(spans)
    recorder = (TimeSeriesRecorder(args.sample_interval_ms)
                if args.timeseries_out else None)
    metrics = _metrics_registry(args.metrics_out)
    log = EventLog(capacity=args.ring_capacity, sinks=sinks)
    sanitizer = _make_sanitizer(args)
    experiment = run_one(trace, factory, config, event_log=log,
                         recorder=recorder, metrics=metrics,
                         sanitizer=sanitizer)
    log.close()
    if sanitizer is not None:
        sanitizer.report()

    result = experiment.result
    print(f"replayed {result.total} requests "
          f"({args.policy} on {trace.name} @ {args.capacity_gb:g} GB): "
          f"{log.recorded} events recorded, "
          f"{len(log)} held in the ring ({log.dropped} rotated out)")
    if jsonl is not None:
        print(f"wrote {jsonl.emitted} events to {jsonl.path}")
    if spans is not None:
        chrome = write_chrome_trace(args.chrome_trace, spans)
        print(f"wrote Chrome trace ({len(chrome['traceEvents'])} "
              f"trace events) to {args.chrome_trace} — load it in "
              f"Perfetto or chrome://tracing")
    if recorder is not None:
        recorder.save_json(args.timeseries_out)
        print(f"wrote {len(recorder.cluster)} samples x "
              f"{len(recorder.functions)} functions to "
              f"{args.timeseries_out}")
    if metrics is not None:
        _write_metrics(metrics, args.metrics_out)
    print(render_table(
        ["metric", "value"], sorted(result.summary().items()),
        title=f"{args.policy} on {trace.name} @ {args.capacity_gb} GB"))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Replay and print one request's latency story from the event log,
    including the cold-start cause chain when the request cold-started."""
    from repro.analysis.attribution import cause_chain
    from repro.obs import CauseTracker, DecisionAudit
    from repro.sim.eventlog import EventLog

    trace = _build_trace(args)
    factory = _resolve_policy(args.policy)
    if factory is None:
        return 2
    config = SimulationConfig(capacity_gb=args.capacity_gb,
                              workers=args.workers,
                              threads_per_container=args.threads)
    log = EventLog()
    audit = DecisionAudit()
    experiment = run_one(trace, factory, config, event_log=log,
                         audit=audit, attribution=CauseTracker())
    result = experiment.result
    req = next((r for r in result.requests if r.req_id == args.req_id),
               None)
    if req is None:
        print(f"no request with id {args.req_id} "
              f"(ids run 0..{result.total - 1})", file=sys.stderr)
        return 2
    print(f"r{req.req_id} {req.func}: {req.start_type.value} start, "
          f"arrived {req.arrival_ms:.3f} ms, "
          f"waited {req.wait_ms:.3f} ms, "
          f"executed {req.exec_ms:.3f} ms on c{req.container_id}")
    print()
    print(log.render(log.explain_request(args.req_id)))
    chain = cause_chain(log, audit, args.req_id)
    if chain is not None:
        provision = chain["provision"]
        print()
        print(f"cold-start cause chain: r{req.req_id} -> "
              f"c{provision.container_id} provisioned at "
              f"{provision.time_ms:.3f} ms ({chain['kind']}) because "
              f"{chain['cause'] or 'attribution unavailable'}")
        record = chain["record"]
        if record is not None:
            if record["kind"] == "eviction_decision":
                victims = ", ".join(
                    f"c{v['cid']} {v['func']} ({v['mem_mb']:g} MB)"
                    for v in record["victims"])
                print(f"  decision #{record['did']} at "
                      f"{record['t']:.3f} ms: REPLACE freed "
                      f"{record['freed_mb']:g} MB for "
                      f"{record.get('for_func', '?')} — evicted {victims}")
            else:
                print(f"  decision #{record['did']} at "
                      f"{record['t']:.3f} ms: scale-down evicted "
                      f"c{record['cid']} {record['func']} after "
                      f"{record['idle_ms']:.0f} ms idle")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Replay with the decision audit attached and explain the policy:
    gate-flip timeline, eviction balance (Observation 2), and the most
    expensive decisions."""
    from repro.analysis.audit import (eviction_balance,
                                      expensive_decisions, gate_flip_rows)
    from repro.obs import AuditJsonlSink, DecisionAudit

    trace = _build_trace(args)
    factory = _resolve_policy(args.policy)
    if factory is None:
        return 2
    config = SimulationConfig(capacity_gb=args.capacity_gb,
                              workers=args.workers,
                              threads_per_container=args.threads)
    sinks = [AuditJsonlSink(args.audit_out)] if args.audit_out else []
    audit = DecisionAudit(sinks=sinks)
    metrics = _metrics_registry(args.metrics_out)
    experiment = run_one(trace, factory, config, audit=audit,
                         metrics=metrics)
    audit.close()

    result = experiment.result
    records = list(audit.records)
    by_kind = {}
    for record in records:
        by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
    kinds = ", ".join(f"{count} {kind}"
                      for kind, count in sorted(by_kind.items())) or "none"
    print(f"replayed {result.total} requests "
          f"({args.policy} on {trace.name} @ {args.capacity_gb:g} GB): "
          f"{len(records)} decision records ({kinds})")
    if sinks:
        print(f"wrote {sinks[0].emitted} records to {sinks[0].path}")
    if metrics is not None:
        _write_metrics(metrics, args.metrics_out)

    flip_rows = gate_flip_rows(records, limit=args.flips)
    if flip_rows:
        total_flips = by_kind.get("gate_flip", 0)
        shown = (f"last {len(flip_rows)} of {total_flips}"
                 if len(flip_rows) < total_flips else f"{total_flips}")
        print()
        print(render_table(
            ["t_ms", "func", "gate", "reason", "trigger"], flip_rows,
            title=f"CSS gate flips ({shown})"))
    else:
        print("\nno gate flips (policy has no CSS gate, or it never "
              "tripped)")

    balance = eviction_balance(records)
    if balance.total:
        print()
        print(render_table(
            ["func", "evictions", "share"],
            [[func, count, f"{share:.1%}"]
             for func, count, share in balance.rows()],
            title=f"eviction balance ({balance.total} victims over "
                  f"{balance.decisions} REPLACE decisions)"))
        print(f"imbalance: max per-function share {balance.max_share:.1%}")
    else:
        print("\nno audited eviction decisions")

    expensive = expensive_decisions(records, k=args.top)
    if expensive:
        rows = []
        for cost, record in expensive:
            if record["kind"] == "eviction_decision":
                what = (f"evicted {len(record['victims'])} container(s)"
                        + (f" for {record['for_func']}"
                           if "for_func" in record else ""))
            else:
                what = (f"{record['func']} r{record['rid']} kept queued "
                        f"at T_d={record['t_d']:.0f} ms")
            rows.append([record["t"], record["kind"], what, cost])
        print()
        print(render_table(
            ["t_ms", "kind", "decision", "cost_ms"], rows,
            title=f"top {len(rows)} most expensive decisions"))
    return 0


def cmd_blame(args: argparse.Namespace) -> int:
    """Replay with causal attribution and the outcome resolver: cold
    starts by proximate cause, the highest-regret decisions (with their
    Eq. 3 decomposition), the keep-warm-waste vs cold-start-penalty
    frontier, and optionally a pinned-decision counterfactual check."""
    from repro.analysis.attribution import (counterfactual_check,
                                            frontier_rows, run_attributed,
                                            victim_decomposition,
                                            worst_decisions)

    trace = _build_trace(args)
    factory = _resolve_policy(args.policy)
    if factory is None:
        return 2
    config = SimulationConfig(capacity_gb=args.capacity_gb,
                              workers=args.workers,
                              threads_per_container=args.threads,
                              faults=_fault_plan(args, trace),
                              contention=_contention_model(args))
    metrics = _metrics_registry(args.metrics_out)
    run = run_attributed(trace, factory, config,
                         horizon_ms=args.horizon_ms,
                         credit_ms_per_mb_ms=args.credit_rate,
                         metrics=metrics)
    result = run.experiment.result
    resolver = run.resolver
    total_stamped = sum(resolver.causes.values())
    print(f"replayed {result.total} requests "
          f"({args.policy} on {trace.name} @ {args.capacity_gb:g} GB): "
          f"{total_stamped} cold starts attributed, "
          f"{len(resolver.outcomes)} decisions settled at a "
          f"{args.horizon_ms:g} ms horizon")
    if metrics is not None:
        _write_metrics(metrics, args.metrics_out)

    if resolver.causes:
        print()
        print(render_table(
            ["cause", "cold starts", "share"],
            [[cause, count, f"{count / total_stamped:.1%}"]
             for cause, count in sorted(resolver.causes.items(),
                                        key=lambda kv: (-kv[1], kv[0]))],
            title="cold starts by proximate cause"))

    worst = worst_decisions(resolver, run.audit, k=args.top)
    if worst:
        rows = []
        for outcome, record in worst:
            funcs = ",".join(sorted({f for _c, f, _m in outcome.victims}))
            rows.append([outcome.did, outcome.kind, outcome.t_ms,
                         f"{len(outcome.victims)} ({funcs})",
                         outcome.penalty_ms,
                         outcome.reclaimed_mb_ms / 1000.0,
                         outcome.regret_ms])
        print()
        print(render_table(
            ["did", "kind", "t_ms", "victims", "penalty_ms", "mb_s_freed",
             "regret_ms"],
            rows, title=f"top {len(rows)} worst decisions"))
        head_outcome, head_record = worst[0]
        if (head_record is not None
                and head_record["kind"] == "eviction_decision"):
            print()
            print(render_table(
                ["func", "cid", "clock", "freq_per_min", "cost_ms",
                 "size_mb", "warm_count", "priority"],
                victim_decomposition(head_record),
                title=f"decision #{head_outcome.did}: Eq. 3 victim "
                      f"decomposition"))
    else:
        print("\nno settled eviction decisions to rank")

    frontier = frontier_rows(resolver)
    if frontier:
        print()
        print(render_table(
            ["func", "keepwarm_waste_mb_s", "coldstart_penalty_ms"],
            [[func, waste / 1000.0, penalty]
             for func, waste, penalty in frontier],
            title="keep-warm waste vs cold-start penalty (per function)"))

    if args.counterfactual:
        evictions = [outcome for outcome, _record in worst
                     if outcome.kind in ("eviction", "scale-down")]
        checked = evictions[:args.counterfactual]
        rows = []
        for outcome in checked:
            check = counterfactual_check(trace, factory, config, run,
                                         outcome.did)
            rows.append([check.did,
                         check.analytic_penalty_ms,
                         check.measured_delta_ms if check.feasible
                         else "n/a",
                         "yes" if check.feasible else "no (wedged)"])
        if rows:
            print()
            print(render_table(
                ["did", "analytic_ms", "replay_delta_ms", "feasible"],
                rows,
                title=f"pinned-decision counterfactual "
                      f"({len(rows)} replayed)"))
        else:
            print("\nno eviction decisions to replay counterfactually")
    return 0


def _read_event_lines(path: str) -> List[str]:
    with open(path) as fh:
        return [line.rstrip("\n") for line in fh if line.strip()]


def cmd_diff(args: argparse.Namespace) -> int:
    """First divergence between two JSONL event streams (exit 1 when
    they differ, like diff(1))."""
    lines_a = _read_event_lines(args.events_a)
    lines_b = _read_event_lines(args.events_b)
    common = min(len(lines_a), len(lines_b))
    divergence = next((i for i in range(common)
                       if lines_a[i] != lines_b[i]), None)
    if divergence is None:
        if len(lines_a) == len(lines_b):
            print(f"identical: {len(lines_a)} events")
            return 0
        divergence = common
    context = args.context
    print(f"streams diverge at event {divergence} "
          f"({args.events_a}: {len(lines_a)} events, "
          f"{args.events_b}: {len(lines_b)} events)")
    lead = lines_a[max(0, divergence - context):divergence]
    if lead:
        print("shared context:")
        for offset, line in enumerate(lead, start=divergence - len(lead)):
            print(f"  [{offset}] {line}")
    for name, lines in ((args.events_a, lines_a), (args.events_b, lines_b)):
        print(f"{name}:")
        window = lines[divergence:divergence + context + 1]
        if not window:
            print("  (stream ends)")
        for offset, line in enumerate(window, start=divergence):
            print(f"  [{offset}] {line}")
    return 1


def cmd_compare(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    table = policy_factories()
    names = args.policies.split(",") if args.policies else FIG12_POLICIES
    config = SimulationConfig(capacity_gb=args.capacity_gb,
                              workers=args.workers,
                              threads_per_container=args.threads)
    rows = []
    for name in names:
        result = run_one(trace, table[name], config)
        s = result.summary()
        rows.append([name, s["avg_overhead_ratio"], s["cold_ratio"],
                     s["warm_ratio"], s["delayed_ratio"],
                     s["avg_wait_ms"], s["avg_memory_mb"] / 1024.0])
    print(render_table(
        ["policy", "overhead", "cold", "warm", "delayed", "wait_ms",
         "mem_gb"],
        rows, title=f"{trace.name} @ {args.capacity_gb} GB"))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Print Table 1-style statistics and the concurrency distribution."""
    import numpy as np

    from repro.traces.stats import (concurrency_per_minute,
                                    fraction_cold_dominated)

    trace = _build_trace(args)
    stats = workload_stats(trace)
    print(render_table(
        ["metric", "value"],
        [["requests", stats.num_requests],
         ["rps avg/min/max",
          f"{stats.rps_avg:,.0f} / {stats.rps_min:,.0f} / "
          f"{stats.rps_max:,.0f}"],
         ["GBps avg/min/max",
          f"{stats.gbps_avg:,.1f} / {stats.gbps_min:,.1f} / "
          f"{stats.gbps_max:,.1f}"],
         ["cold-dominated requests",
          f"{fraction_cold_dominated(trace):.1%}"]],
        title=f"workload statistics: {trace.name}"))
    concurrency = concurrency_per_minute(trace)
    if concurrency.size:
        print(render_table(
            ["percentile", "reqs/min"],
            [[f"p{q}", float(np.percentile(concurrency, q))]
             for q in (50, 90, 99)],
            title="function concurrency (Fig. 3)"))
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    """Run the §2.4 queuing-vs-cold-start what-if analysis (Figs 5/6)."""
    from repro.analysis.plot import ascii_cdf
    from repro.analysis.whatif import tradeoff_analysis

    trace = _build_trace(args)
    result = tradeoff_analysis(
        trace, SimulationConfig(capacity_gb=args.capacity_gb))
    print(ascii_cdf({"queuing": result.queuing_ms,
                     "cold start": result.cold_ms},
                    title=f"queuing vs cold start ({trace.name}, "
                          f"{args.capacity_gb:g} GB)",
                    x_max_percentile=95.0))
    cross = result.crossover_ms()
    print(f"crossover: "
          f"{'none (queuing dominates)' if cross is None else f'{cross:.0f} ms'}")
    print(f"queuing wins for {result.fraction_queue_wins():.1%} "
          f"of would-be cold starts")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run a policy/capacity grid and emit a markdown report."""
    from repro.analysis.report import experiment_report
    from repro.experiments.parallel import ParallelRunner

    trace = _build_trace(args)
    table = policy_factories()
    names = (args.policies.split(",") if args.policies
             else ["FaasCache", "CIDRE_BSS", "CIDRE", "Offline"])
    unknown = [n for n in names if n not in table]
    if unknown:
        print(f"unknown policies: {unknown}", file=sys.stderr)
        return 2
    capacities = _parse_capacities(args.capacities)
    runner = ParallelRunner(jobs=args.jobs)
    results = runner.capacity_sweep(trace, names, capacities)
    report = experiment_report(results, baseline=args.baseline,
                               title=f"Policy comparison on {trace.name}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _sweep_markdown(results, trace_name: str) -> str:
    """Full-precision markdown of sweep summaries.

    Values are written with ``repr`` so two runs are file-identical iff
    their summaries are bit-identical — the CLI's determinism contract.
    """
    keys = ["avg_overhead_ratio", "cold_ratio", "warm_ratio",
            "delayed_ratio", "avg_wait_ms", "avg_memory_mb"]
    lines = [f"# Sweep results: {trace_name}", "",
             "| policy | capacity_gb | " + " | ".join(keys) + " |",
             "|" + "|".join("---" for _ in range(len(keys) + 2)) + "|"]
    for res in results:
        s = res.summary()
        lines.append("| " + res.policy_name
                     + f" | {res.config.capacity_gb!r} | "
                     + " | ".join(repr(s[k]) for k in keys) + " |")
    lines.append("")
    return "\n".join(lines)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a parallel policy x capacity sweep with a timing report."""
    from repro.experiments.parallel import ParallelRunner, ProgressHeartbeat

    trace = _build_trace(args)
    table = policy_factories()
    names = (args.policies.split(",") if args.policies
             else ["TTL", "FaasCache", "CIDRE"])
    unknown = [n for n in names if n not in table]
    if unknown:
        print(f"unknown policies: {unknown}", file=sys.stderr)
        return 2
    capacities = _parse_capacities(args.capacities)

    def progress(done, total, cell):
        status = "cached" if cell.cached else f"{cell.wall_s:.2f}s"
        print(f"[{done}/{total}] {cell.policy_name} @ "
              f"{cell.capacity_gb:g} GB ({status})", file=sys.stderr)

    if args.progress:
        progress_fn = ProgressHeartbeat()
    elif args.quiet:
        progress_fn = None
    else:
        progress_fn = progress

    runner = ParallelRunner(jobs=args.jobs, cache_dir=args.cache_dir,
                            collect="summary", progress=progress_fn,
                            events_dir=args.events_dir,
                            metrics_dir=args.metrics_out)
    results = runner.capacity_sweep(
        trace, names, capacities, seed=args.seed,
        workers=args.workers, threads_per_container=args.threads,
        faults=_fault_plan(args, trace),
        contention=_contention_model(args))

    rows = []
    for res in results:
        s = res.summary()
        rows.append([res.policy_name, res.config.capacity_gb,
                     s["avg_overhead_ratio"], s["cold_ratio"],
                     s["warm_ratio"], s["delayed_ratio"],
                     s["avg_wait_ms"]])
    print(render_table(
        ["policy", "GB", "overhead", "cold", "warm", "delayed",
         "wait_ms"],
        rows, title=f"sweep: {trace.name} x {len(capacities)} "
                    f"capacities x {len(names)} policies"))
    report = runner.last_report
    print(render_table(
        ["policy", "GB", "cell time"], report.rows(),
        title="per-cell wall clock"))
    print(report.render())
    if args.metrics_out:
        print(f"wrote per-cell metrics snapshots to {args.metrics_out}/")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(_sweep_markdown(results, trace.name))
        print(f"wrote {args.out}")
    return 0


def cmd_bench_throughput(args: argparse.Namespace) -> int:
    """Time single-run replays; optionally gate on a committed baseline."""
    from repro.experiments import throughput

    names = args.scenarios.split(",") if args.scenarios else None
    try:
        if names:
            for name in names:
                throughput.scenario_by_name(name)  # validate up front
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    rows: List[list] = []

    def progress(record):
        rows.append(record.row())
        print(f"[bench] {record.scenario}/{record.policy} "
              f"({record.impl}): {record.wall_s:.2f}s, "
              f"{record.events_per_sec:,.0f} events/s", file=sys.stderr)

    payload = throughput.run_suite(
        names, reference=args.reference,
        fast_forward=True if args.fast_forward else None,
        progress=progress)
    print(render_table(
        ["scenario", "policy", "impl", "wall_s", "events/s", "req/s",
         "cold", "evictions"],
        rows, title="replay throughput"))
    # Load baselines before --out may overwrite the same file.
    compare_baseline = (throughput.load_payload(args.compare)
                        if args.compare else None)
    check_baseline = (throughput.load_payload(args.check)
                      if args.check else None)
    if args.out:
        previous = None
        if os.path.exists(args.out):
            try:
                previous = throughput.load_payload(args.out)
            except (ValueError, OSError):
                previous = None  # corrupt/old baseline: start history fresh
        throughput.append_history(payload, previous)
        throughput.save_payload(payload, args.out)
        print(f"wrote {args.out} "
              f"({len(payload.get('history', ()))} history entries)")
    status = 0
    if compare_baseline is not None:
        baseline = compare_baseline
        delta_rows = throughput.compare_payloads(payload, baseline)
        print(render_table(
            ["scenario", "policy", "baseline ev/s", "current ev/s",
             "delta"],
            delta_rows, title=f"throughput vs {args.compare}"))
        failures = throughput.check_regression(
            payload, baseline, factor=args.factor,
            two_sided=not args.one_sided)
        if failures:
            print(f"throughput regression vs {args.compare}:",
                  file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            status = 1
    if check_baseline is not None:
        baseline = check_baseline
        failures = throughput.check_regression(
            payload, baseline, factor=args.factor,
            two_sided=not args.one_sided)
        if failures:
            print(f"throughput regression vs {args.check} "
                  f"(outside the {args.factor:g}x band):", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"throughput within {args.factor:g}x of {args.check}")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="cidre-sim",
        description="CIDRE serverless orchestration simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and save a trace")
    _add_trace_args(gen)
    gen.add_argument("--out", required=True, help="output directory")
    gen.set_defaults(func=cmd_generate)

    run = sub.add_parser("run", help="replay one policy over a trace")
    _add_trace_args(run)
    run.add_argument("--policy", default="CIDRE")
    run.add_argument("--capacity-gb", type=float, default=100.0)
    run.add_argument("--workers", type=int, default=1)
    run.add_argument("--threads", type=int, default=1)
    run.add_argument("--profile", action="store_true",
                     help="profile the replay with cProfile and print the "
                          "top 25 cumulative entries to stderr")
    run.add_argument("--profile-out", default=None,
                     help="dump pstats data here (implies --profile)")
    run.add_argument("--reference", action="store_true",
                     help="use the pre-index reference implementations "
                          "(scan/sort hot path; bit-identical results)")
    run.add_argument("--metrics-out", default=None,
                     help="write a metrics snapshot here (Prometheus "
                          "text for .prom/.txt, JSON otherwise)")
    run.add_argument("--sanitize", action="store_true",
                     help="run under the sim-sanitizer (write barrier "
                          "around probe callbacks + periodic consistency "
                          "sweeps); results stay bit-identical")
    _add_fault_args(run)
    _add_contention_args(run)
    run.set_defaults(func=cmd_run)

    tr = sub.add_parser(
        "trace", help="replay with run telemetry (JSONL event stream, "
                      "Chrome trace, time series)")
    _add_trace_args(tr)
    tr.add_argument("--policy", default="CIDRE")
    tr.add_argument("--capacity-gb", type=float, default=100.0)
    tr.add_argument("--workers", type=int, default=1)
    tr.add_argument("--threads", type=int, default=1)
    tr.add_argument("--events-out", default=None,
                    help="stream the full event log here as JSON Lines "
                         "(O(1) memory)")
    tr.add_argument("--chrome-trace", default=None,
                    help="write a Chrome trace_event JSON here "
                         "(Perfetto / chrome://tracing)")
    tr.add_argument("--timeseries-out", default=None,
                    help="write sampled per-function time series "
                         "(JSON) here")
    tr.add_argument("--sample-interval-ms", type=float, default=1_000.0,
                    help="time-series sampling period (virtual ms)")
    tr.add_argument("--ring-capacity", type=int, default=65_536,
                    help="events kept in memory (oldest rotate out; "
                         "sinks still see everything)")
    tr.add_argument("--metrics-out", default=None,
                    help="write a metrics snapshot here (Prometheus "
                         "text for .prom/.txt, JSON otherwise)")
    tr.add_argument("--sanitize", action="store_true",
                    help="run under the sim-sanitizer (write barrier "
                         "around sink/recorder callbacks + periodic "
                         "consistency sweeps); results stay bit-identical")
    tr.add_argument("--reference", action="store_true",
                    help="use the pre-index reference implementations "
                         "(scan/sort hot path; bit-identical results)")
    tr.add_argument("--fast-forward", action="store_true",
                    help="skip idle gaps analytically (bit-identical; "
                         "auto-disabled under --reference or with "
                         "--timeseries-out attached)")
    _add_fault_args(tr)
    _add_contention_args(tr)
    tr.set_defaults(func=cmd_trace)

    audit = sub.add_parser(
        "audit", help="replay with the decision audit: gate-flip "
                      "timeline, eviction balance, expensive decisions")
    _add_trace_args(audit)
    audit.add_argument("--policy", default="CIDRE")
    audit.add_argument("--capacity-gb", type=float, default=100.0)
    audit.add_argument("--workers", type=int, default=1)
    audit.add_argument("--threads", type=int, default=1)
    audit.add_argument("--audit-out", default=None,
                       help="stream decision records here as JSON Lines")
    audit.add_argument("--metrics-out", default=None,
                       help="write a metrics snapshot here (Prometheus "
                            "text for .prom/.txt, JSON otherwise)")
    audit.add_argument("--flips", type=int, default=20,
                       help="gate flips shown in the timeline "
                            "(0 = all, default 20)")
    audit.add_argument("--top", type=int, default=5,
                       help="most expensive decisions shown (default 5)")
    audit.set_defaults(func=cmd_audit)

    blame = sub.add_parser(
        "blame", help="replay with causal attribution: cold starts by "
                      "cause, highest-regret decisions, keep-warm "
                      "frontier")
    _add_trace_args(blame)
    blame.add_argument("--policy", default="CIDRE")
    blame.add_argument("--capacity-gb", type=float, default=100.0)
    blame.add_argument("--workers", type=int, default=1)
    blame.add_argument("--threads", type=int, default=1)
    blame.add_argument("--horizon-ms", type=float, default=60_000.0,
                       help="settlement horizon: how long a decision's "
                            "consequences are tallied (default 60000)")
    blame.add_argument("--credit-rate", type=float, default=0.0,
                       help="memory credit in ms per MB-ms reclaimed, "
                            "subtracted from the cold-start penalty "
                            "(default 0 = regret is the raw penalty)")
    blame.add_argument("--top", type=int, default=5,
                       help="worst decisions shown (default 5)")
    blame.add_argument("--counterfactual", type=int, default=0,
                       help="validate the top-N worst evictions by "
                            "replaying with each pinned (slow: one "
                            "replay per decision)")
    blame.add_argument("--metrics-out", default=None,
                       help="write a metrics snapshot here (Prometheus "
                            "text for .prom/.txt, JSON otherwise)")
    _add_fault_args(blame)
    _add_contention_args(blame)
    blame.set_defaults(func=cmd_blame)

    diff = sub.add_parser(
        "diff", help="first divergence between two JSONL event streams")
    diff.add_argument("events_a", help="baseline events .jsonl")
    diff.add_argument("events_b", help="candidate events .jsonl")
    diff.add_argument("--context", type=int, default=5,
                      help="events of context shown around the "
                           "divergence (default 5)")
    diff.set_defaults(func=cmd_diff)

    explain = sub.add_parser(
        "explain", help="replay and explain one request's latency story")
    explain.add_argument("req_id", type=int,
                         help="request id (serial arrival order)")
    _add_trace_args(explain)
    explain.add_argument("--policy", default="CIDRE")
    explain.add_argument("--capacity-gb", type=float, default=100.0)
    explain.add_argument("--workers", type=int, default=1)
    explain.add_argument("--threads", type=int, default=1)
    explain.set_defaults(func=cmd_explain)

    cmp_ = sub.add_parser("compare", help="compare policies over a trace")
    _add_trace_args(cmp_)
    cmp_.add_argument("--policies", default=None,
                      help="comma-separated policy names (default Fig. 12)")
    cmp_.add_argument("--capacity-gb", type=float, default=100.0)
    cmp_.add_argument("--workers", type=int, default=1)
    cmp_.add_argument("--threads", type=int, default=1)
    cmp_.set_defaults(func=cmd_compare)

    stats = sub.add_parser("stats", help="print workload statistics")
    _add_trace_args(stats)
    stats.set_defaults(func=cmd_stats)

    whatif = sub.add_parser(
        "whatif", help="queuing vs cold-start what-if (Figs 5/6)")
    _add_trace_args(whatif)
    whatif.add_argument("--capacity-gb", type=float, default=100.0)
    whatif.set_defaults(func=cmd_whatif)

    report = sub.add_parser(
        "report", help="run a policy grid and emit a markdown report")
    _add_trace_args(report)
    report.add_argument("--policies", default=None,
                        help="comma-separated policy names")
    report.add_argument("--capacities", default="80,100,160",
                        help="comma-separated cache sizes in GB")
    report.add_argument("--baseline", default="FaasCache")
    report.add_argument("--out", default=None,
                        help="write the markdown to this file")
    report.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    report.set_defaults(func=cmd_report)

    sweep = sub.add_parser(
        "sweep", help="parallel policy x capacity sweep with timing")
    _add_trace_args(sweep)
    sweep.add_argument("--policies", default=None,
                       help="comma-separated policy names "
                            "(default TTL,FaasCache,CIDRE)")
    sweep.add_argument("--capacities", default="80,100,120,160",
                       help="comma-separated cache sizes in GB")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (1 = serial fallback; "
                            "default: CPU count)")
    sweep.add_argument("--cache-dir", default=None,
                       help="persist/reuse per-cell results here")
    sweep.add_argument("--events-dir", default=None,
                       help="stream each executed cell's event log to "
                            "a JSONL file in this directory")
    sweep.add_argument("--metrics-out", default=None,
                       help="directory for per-cell metrics snapshots "
                            "(one JSON file per executed cell)")
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument("--threads", type=int, default=1)
    sweep.add_argument("--out", default=None,
                       help="write full-precision markdown results here")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress on stderr")
    sweep.add_argument("--progress", action="store_true",
                       help="heartbeat progress on stderr: cells "
                            "done/total, per-cell wall time, ETA "
                            "(overrides --quiet)")
    _add_fault_args(sweep)
    _add_contention_args(sweep)
    sweep.set_defaults(func=cmd_sweep)

    bench = sub.add_parser(
        "bench-throughput",
        help="time single-run replay throughput (events/sec)")
    bench.add_argument("--scenarios", default=None,
                       help="comma-separated scenario names "
                            "(default: the full suite)")
    bench.add_argument("--reference", action="store_true",
                       help="also time the pre-index reference "
                            "implementation of every cell")
    bench.add_argument("--out", default=None,
                       help="write the JSON payload here "
                            "(BENCH_throughput.json format)")
    bench.add_argument("--fast-forward", action="store_true",
                       help="force fast_forward=True on every scenario "
                            "(indexed cells only; reference cells always "
                            "run classic)")
    bench.add_argument("--compare", default=None,
                       help="print per-cell deltas vs this baseline JSON "
                            "and exit non-zero on regression")
    bench.add_argument("--check", default=None,
                       help="fail if events/sec leaves the --factor band "
                            "around this baseline JSON")
    bench.add_argument("--factor", type=float, default=2.0,
                       help="allowed throughput ratio vs the baseline "
                            "(default 2.0)")
    bench.add_argument("--one-sided", action="store_true",
                       help="only fail on slowdowns; skip the "
                            "faster-than-baseline (stale baseline) check")
    bench.set_defaults(func=cmd_bench_throughput)

    lint = sub.add_parser(
        "lint", help="static determinism/purity/FP-discipline analysis "
                     "(repro-lint)")
    from repro.lint.cli import add_lint_arguments, run_lint
    add_lint_arguments(lint)
    lint.set_defaults(func=run_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
