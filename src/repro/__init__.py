"""repro — reproduction of "Concurrency-Informed Orchestration for
Serverless Functions" (CIDRE, ASPLOS 2025).

Quickstart
----------
>>> from repro import FunctionSpec, Request, CIDREPolicy, simulate
>>> fn = FunctionSpec("hello", memory_mb=128, cold_start_ms=500)
>>> reqs = [Request("hello", arrival_ms=float(i * 10), exec_ms=40.0)
...         for i in range(100)]
>>> result = simulate([fn], reqs, CIDREPolicy())
>>> result.total
100
"""

from repro.core import (BSSOnlyPolicy, CIDREBSSPolicy, CIDREPolicy,
                        CIPOnlyPolicy, CSSOnlyPolicy)
from repro.policies import (BoundedQueueFaasCache, CodeCrunchPolicy,
                            EnsurePolicy, FaasCacheCPolicy, FaasCachePolicy,
                            FlamePolicy, HybridHistogramPolicy,
                            IceBreakerPolicy, LRUPolicy, OfflinePolicy,
                            OrchestrationPolicy, RainbowCakePolicy,
                            TTLPolicy)
from repro.sim import (FunctionSpec, Orchestrator, Request, SimulationConfig,
                       SimulationResult, StartType, simulate)

__version__ = "1.0.0"

__all__ = [
    "BSSOnlyPolicy", "BoundedQueueFaasCache", "CIDREBSSPolicy",
    "CIDREPolicy", "CIPOnlyPolicy", "CSSOnlyPolicy", "CodeCrunchPolicy",
    "EnsurePolicy", "FaasCacheCPolicy", "FaasCachePolicy", "FlamePolicy",
    "FunctionSpec", "HybridHistogramPolicy", "IceBreakerPolicy",
    "LRUPolicy", "OfflinePolicy",
    "Orchestrator", "OrchestrationPolicy", "RainbowCakePolicy", "Request",
    "SimulationConfig", "SimulationResult", "StartType", "TTLPolicy",
    "simulate", "__version__",
]
