"""Blame analysis: from cause stamps and settled outcomes to answers.

Builds the ``cidre-sim blame`` story on top of the attribution /
outcome machinery (:mod:`repro.obs.attribution`,
:mod:`repro.obs.outcomes`):

* :func:`run_attributed` — one factual replay with the full blame
  instrumentation attached (event log, decision audit, cause tracker,
  outcome resolver), plus the container-id bookkeeping counterfactual
  replays need.
* :func:`cause_breakdown` / :func:`worst_decisions` /
  :func:`frontier_rows` — the three report surfaces: cold starts by
  proximate cause, the top-K highest-regret decisions joined back to
  their audit records (Eq. 3 decomposition for REPLACE victims), and
  the per-function keep-warm-waste vs cold-start-penalty frontier.
* :func:`cause_chain` — one request's causal story: request → cold
  start → cause label → the audit record of the decision it blames.
* :func:`counterfactual_check` — validation: replay with one audited
  eviction suppressed (its victims pinned) and compare the measured
  cold-start delta against the resolver's analytic penalty.

The counterfactual relies on two properties. First, pinning a
decision's victims cannot change the replay *before* that decision:
the victims factually survived until it fired, so every earlier
REPLACE choice and its feasibility are unchanged and decision ids stay
aligned across the two runs. Second, container ids are drawn from a
process-global counter, so factual victim ids are rebased onto the
counterfactual run by a constant offset learned from
:func:`repro.sim.container.reserve_container_id`. Pinning only guards
the base ``make_room`` path — policies that evict outside it (TTL
expiry, layer decay) may still remove a pinned victim, and a pinned
container that never frees can wedge the replay (reported as
``feasible=False`` rather than raised).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentResult, run_one
from repro.obs.attribution import CauseTracker
from repro.obs.audit import DecisionAudit
from repro.obs.outcomes import (DEFAULT_HORIZON_MS, DecisionOutcome,
                                OutcomeResolver, resolve)
from repro.sim.container import reserve_container_id
from repro.sim.eventlog import (Event, EventKind, EventLog, cause_class,
                                cause_decision_id, split_cause)

__all__ = ["AttributedRun", "CounterfactualCheck", "cause_breakdown",
           "cause_chain", "counterfactual_check", "frontier_rows",
           "regret_instants", "run_attributed", "victim_decomposition",
           "worst_decisions"]


@dataclass
class AttributedRun:
    """One factual replay with blame instrumentation attached."""

    experiment: ExperimentResult
    log: EventLog
    audit: DecisionAudit
    tracker: CauseTracker
    resolver: OutcomeResolver
    horizon_ms: float
    #: container id of the run's first container (for cid rebasing).
    first_cid: int


def run_attributed(trace, factory, config, horizon_ms: float =
                   DEFAULT_HORIZON_MS, credit_ms_per_mb_ms: float = 0.0,
                   metrics=None) -> AttributedRun:
    """Replay once with event log + audit + attribution + resolver."""
    first_cid = reserve_container_id() + 1
    log = EventLog()
    audit = DecisionAudit()
    tracker = CauseTracker()
    experiment = run_one(trace, factory, config, event_log=log,
                         audit=audit, attribution=tracker)
    resolver = resolve(audit.records, log.events, horizon_ms=horizon_ms,
                       credit_ms_per_mb_ms=credit_ms_per_mb_ms,
                       metrics=metrics)
    return AttributedRun(experiment=experiment, log=log, audit=audit,
                         tracker=tracker, resolver=resolver,
                         horizon_ms=horizon_ms, first_cid=first_cid)


# ----------------------------------------------------------------------
# Report surfaces


def cause_breakdown(events: Iterable[Event]) -> Dict[str, int]:
    """Stamped cold starts by cause class, straight off the events."""
    counts: Dict[str, int] = {}
    for event in events:
        if event.kind is not EventKind.PROVISION_START:
            continue
        _, cause = split_cause(event.detail)
        if cause:
            cls = cause_class(cause)
            counts[cls] = counts.get(cls, 0) + 1
    return counts


def worst_decisions(resolver: OutcomeResolver, audit: DecisionAudit,
                    k: int = 5
                    ) -> List[Tuple[DecisionOutcome, Optional[Dict]]]:
    """The ``k`` settled decisions with the highest regret, each joined
    with its audit record (``None`` if it rotated out of a bounded
    ring). Ties break on decision id so the report is deterministic."""
    ranked = sorted(resolver.outcomes,
                    key=lambda o: (-o.regret_ms, o.did))
    return [(outcome, audit.record_by_id(outcome.did))
            for outcome in ranked[:k]]


def victim_decomposition(record: Dict) -> List[List]:
    """Eq. 3 component rows for a REPLACE decision's victims.

    Columns: func, cid, clock, freq_per_min, cost_ms, size_mb,
    warm_count, priority — the values the ranking actually used
    (recorded before the eviction ticked the clock)."""
    rows = []
    for victim in record.get("victims", ()):
        rows.append([victim.get("func"), victim.get("cid"),
                     victim.get("clock"), victim.get("freq_per_min"),
                     victim.get("cost_ms"), victim.get("size_mb"),
                     victim.get("warm_count"), victim.get("priority")])
    return rows


def frontier_rows(resolver: OutcomeResolver) -> List[List]:
    """Per-function keep-warm-waste vs cold-start-penalty frontier.

    One row per function touched by any settled decision or waste
    record: ``[func, waste_mb_ms, penalty_ms]``, sorted by descending
    waste (ties on name). Functions high on both axes are being churned
    — evicted while still idle-expensive *and* paying cold starts for
    it; high waste with zero penalty marks safe eviction targets the
    policy is keeping warm for nothing."""
    waste = resolver.waste_by_func()
    penalty = resolver.penalty_by_func()
    rows = [[func, waste.get(func, 0.0), penalty.get(func, 0.0)]
            for func in sorted(set(waste) | set(penalty))]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def regret_instants(resolver: OutcomeResolver,
                    threshold_ms: float = 0.0) -> List[Dict]:
    """Chrome-trace instant markers for high-regret evictions.

    One marker per settled decision with ``regret_ms > threshold_ms``,
    in the ``instants`` format of
    :func:`repro.sim.telemetry.chrome_trace`: the marker sits at the
    decision's timestamp and carries its decision id, penalty and
    regret as args so a Perfetto user can jump from the spike to the
    decision that caused it."""
    markers = []
    for outcome in resolver.outcomes:
        if outcome.regret_ms > threshold_ms:
            markers.append({
                "time_ms": outcome.t_ms,
                "name": f"high-regret {outcome.kind} #{outcome.did}",
                "args": {"did": outcome.did,
                         "penalty_ms": outcome.penalty_ms,
                         "regret_ms": outcome.regret_ms,
                         "victims": len(outcome.victims)},
            })
    return markers


def cause_chain(log: EventLog, audit: Optional[DecisionAudit],
                req_id: int) -> Optional[Dict]:
    """One request's cold-start cause chain, or ``None`` if it never
    cold-started (warm/delayed hits have no provision to blame).

    Returns ``{"provision": Event, "kind": str, "cause": str,
    "record": Optional[Dict]}`` — the blamed decision's audit record is
    joined in when the cause names one and ``audit`` still holds it."""
    provision = log.cold_start_of(req_id)
    if provision is None:
        return None
    kind, cause = split_cause(provision.detail)
    record = None
    if cause and audit is not None:
        did = cause_decision_id(cause)
        if did is not None:
            record = audit.record_by_id(did)
    return {"provision": provision, "kind": kind, "cause": cause,
            "record": record}


# ----------------------------------------------------------------------
# Pinned-decision counterfactual


@dataclass(frozen=True)
class CounterfactualCheck:
    """Analytic regret vs a replay with one eviction suppressed."""

    did: int
    t_ms: float
    funcs: Tuple[str, ...]            #: victim functions compared
    analytic_penalty_ms: float        #: resolver's settled penalty
    factual_window_ms: float          #: victims' cold-start ms, factual
    counterfactual_window_ms: float   #: same window, decision pinned
    feasible: bool                    #: False = pinned replay wedged

    @property
    def measured_delta_ms(self) -> float:
        """Cold-start time the decision measurably caused."""
        return self.factual_window_ms - self.counterfactual_window_ms


def _window_provision_ms(events: Sequence[Event], funcs,
                         t_lo: float, t_hi: float) -> float:
    """Realized provision time (READY - START) of ``funcs`` whose
    provisioning started inside ``[t_lo, t_hi]``."""
    total = 0.0
    started: Dict[int, float] = {}
    for event in events:
        if event.kind is EventKind.PROVISION_START:
            if event.func in funcs and t_lo <= event.time_ms <= t_hi:
                started[event.container_id] = event.time_ms
        elif event.kind is EventKind.CONTAINER_READY:
            begun = started.pop(event.container_id, None)
            if begun is not None:
                total += event.time_ms - begun
    return total


def counterfactual_check(trace, factory, config, run: AttributedRun,
                         did: int) -> CounterfactualCheck:
    """Replay with decision ``did``'s victims pinned; compare windows.

    The factual and the pinned replay measure the same absolute time
    window ``[t_d, t_d + horizon]`` (both runs are identical up to
    ``t_d``), summing realized provision time for the victims'
    functions. With the eviction suppressed those functions stay warm,
    so the window delta is the cold-start penalty the decision caused —
    the quantity the resolver computes analytically from cause stamps.
    A pinned replay that cannot finish (immortal victims wedge the
    memory) is reported with ``feasible=False`` and zeroed windows."""
    record = run.audit.record_by_id(did)
    if record is None or record.get("kind") not in ("eviction_decision",
                                                    "scale_down"):
        raise ValueError(f"decision {did} is not an audited eviction")
    if record["kind"] == "eviction_decision":
        victims = [(v["cid"], v["func"]) for v in record["victims"]]
    else:
        victims = [(record["cid"], record["func"])]
    t_d = record["t"]
    t_hi = t_d + run.horizon_ms
    funcs = tuple(sorted({func for _cid, func in victims}))
    outcome = run.resolver.outcome_of(did)
    analytic_ms = outcome.penalty_ms if outcome is not None else 0.0
    factual_ms = _window_provision_ms(run.log.events, funcs, t_d, t_hi)

    offset = (reserve_container_id() + 1) - run.first_cid
    protected = frozenset(cid + offset for cid, _func in victims)

    def pinned_factory(t):
        policy = factory(t)
        policy.protected_cids = protected
        return policy

    pinned_log = EventLog()
    try:
        run_one(trace, pinned_factory, config, event_log=pinned_log)
    except RuntimeError:
        return CounterfactualCheck(
            did=did, t_ms=t_d, funcs=funcs,
            analytic_penalty_ms=analytic_ms,
            factual_window_ms=0.0, counterfactual_window_ms=0.0,
            feasible=False)
    pinned_ms = _window_provision_ms(pinned_log.events, funcs, t_d, t_hi)
    return CounterfactualCheck(
        did=did, t_ms=t_d, funcs=funcs,
        analytic_penalty_ms=analytic_ms,
        factual_window_ms=factual_ms,
        counterfactual_window_ms=pinned_ms, feasible=True)
