"""Interference analytics for contention runs (:mod:`repro.sim.contention`).

The paper's motivating observation is that co-located concurrency
inflates execution time. This module reduces a run to the views that
show (or refute) that interaction:

* **per-request slowdowns** — realized wall time over trace ``exec_ms``
  for every completed request;
* **slowdown CDFs** — overall or per function, for latency-CDF figures;
* **concurrency-vs-latency curves** — mean realized slowdown grouped by
  the worker-local concurrency each execution started at, the curve a
  contention model must make monotone (and a contention-free run keeps
  flat at 1.0).

Everything consumes a run's event stream (live
:class:`~repro.sim.eventlog.Event` objects or records loaded back with
:func:`~repro.sim.telemetry.read_events_jsonl`) plus the
:class:`~repro.sim.metrics.SimulationResult`, mirroring
:mod:`repro.analysis.resilience`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.cdf import ECDF
from repro.sim.eventlog import Event, EventKind
from repro.sim.request import Request

__all__ = ["ConcurrencyPoint", "concurrency_curve", "exec_concurrency",
           "interference_summary", "request_slowdowns", "slowdown_cdf"]


def request_slowdowns(requests: Iterable[Request]) -> Dict[int, float]:
    """``req_id -> realized slowdown`` (wall time over trace ``exec_ms``)
    for every completed request with a positive service demand.

    1.0 means the request ran at full speed; a contention model (or a
    straggler window) pushes the ratio above 1."""
    slowdowns: Dict[int, float] = {}
    for request in requests:
        if (request.exec_ms > 0 and request.start_ms is not None
                and request.end_ms is not None):
            slowdowns[request.req_id] = (
                (request.end_ms - request.start_ms) / request.exec_ms)
    return slowdowns


def slowdown_cdf(requests: Iterable[Request],
                 func: Optional[str] = None) -> Optional[ECDF]:
    """ECDF of realized slowdowns, optionally restricted to one function.

    Returns ``None`` when no completed request qualifies (ECDFs need at
    least one sample)."""
    samples = [
        (request.end_ms - request.start_ms) / request.exec_ms
        for request in requests
        if (request.exec_ms > 0 and request.start_ms is not None
            and request.end_ms is not None
            and (func is None or request.func == func))]
    if not samples:
        return None
    return ECDF(samples)


def exec_concurrency(events: Iterable[Event]) -> Dict[int, int]:
    """``req_id -> worker-local in-flight executions`` at the moment each
    execution started (including itself; always >= 1).

    Walks ``exec_start``/``exec_end`` keeping a per-worker busy count; a
    ``worker_crash`` zeroes its worker (the in-flight executions it
    destroyed emit no ``exec_end``)."""
    busy: Dict[Optional[int], int] = {}
    level: Dict[int, int] = {}
    for event in events:
        kind = event.kind
        if kind is EventKind.EXEC_START:
            count = busy.get(event.worker_id, 0) + 1
            busy[event.worker_id] = count
            level[event.req_id] = count
        elif kind is EventKind.EXEC_END:
            count = busy.get(event.worker_id, 0) - 1
            busy[event.worker_id] = count if count > 0 else 0
        elif kind is EventKind.WORKER_CRASH:
            busy[event.worker_id] = 0
    return level


@dataclass(frozen=True)
class ConcurrencyPoint:
    """Mean realized slowdown at one start-time concurrency level."""

    concurrency: int
    mean_slowdown: float
    requests: int


def concurrency_curve(events: Iterable[Event],
                      requests: Iterable[Request]
                      ) -> List[ConcurrencyPoint]:
    """The paper's motivating concurrency-vs-latency interaction: mean
    realized slowdown grouped by the worker-local concurrency each
    execution started at, sorted by concurrency.

    Under a contention model the curve rises with concurrency; without
    one it stays flat at 1.0. Requests whose start fell outside the
    event stream (ring overflow) are skipped."""
    levels = exec_concurrency(events)
    slowdowns = request_slowdowns(requests)
    totals: Dict[int, List[float]] = {}
    for req_id, slowdown in slowdowns.items():
        concurrency = levels.get(req_id)
        if concurrency is None:
            continue
        totals.setdefault(concurrency, []).append(slowdown)
    return [ConcurrencyPoint(concurrency, sum(values) / len(values),
                             len(values))
            for concurrency, values in sorted(totals.items())]


def interference_summary(result, events: Iterable[Event]
                         ) -> Dict[str, float]:
    """Flat scalar summary of a contention run, for tables and JSON.

    ``events`` is consumed once; pass any iterable."""
    slowdowns = request_slowdowns(result.requests)
    values: Sequence[float] = sorted(slowdowns.values())
    summary: Dict[str, float] = {
        "measured": float(len(values)),
        "slowed": float(sum(1 for v in values if v > 1.0)),
        "mean_slowdown": (sum(values) / len(values)) if values else 0.0,
        "max_slowdown": values[-1] if values else 0.0,
    }
    if values:
        cdf = ECDF(values)
        summary["slowdown_p50"] = cdf.percentile(50)
        summary["slowdown_p99"] = cdf.percentile(99)
    curve = concurrency_curve(events, result.requests)
    if curve:
        summary["max_concurrency"] = float(curve[-1].concurrency)
        summary["slowdown_at_max_concurrency"] = curve[-1].mean_slowdown
    return summary
