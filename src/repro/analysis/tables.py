"""Plain-text rendering of tables and figure series.

The benchmark harness prints every reproduced table/figure as text: tables
as aligned columns, CDF "figures" as fixed-quantile series. Keeping the
rendering in one place makes bench output uniform and testable.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

import numpy as np


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if _numeric(cell)
                               else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_cdf_series(series: Mapping[str, Sequence[float]],
                      quantiles: Sequence[float] = (10, 25, 50, 75, 90,
                                                    95, 99),
                      title: Optional[str] = None,
                      unit: str = "ms") -> str:
    """Render named samples as rows of fixed quantiles — a text CDF."""
    headers = ["series"] + [f"p{int(q)}" for q in quantiles] + ["mean"]
    rows: List[List[object]] = []
    for name, samples in series.items():
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            rows.append([name] + ["-"] * (len(quantiles) + 1))
            continue
        row: List[object] = [name]
        row.extend(float(np.percentile(data, q)) for q in quantiles)
        row.append(float(data.mean()))
        rows.append(row)
    table = render_table(headers, rows, title=title)
    return f"{table}\n(all values in {unit})"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.3f}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def _numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace("-", "").replace(".", "")
    return stripped.isdigit() and cell not in ("-", "")
