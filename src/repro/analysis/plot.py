"""ASCII plotting for CDFs and series.

The benchmark harness is text-first (no matplotlib dependency), but a CDF
table of quantiles hides the curve's shape. This module renders compact
Unicode line plots — good enough to eyeball a crossover (Fig. 5) or a
capacity trend (Fig. 12) in terminal output.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Marker characters cycled across series.
MARKERS = "ox+*#@%&"


def ascii_cdf(series: Mapping[str, Sequence[float]],
              width: int = 64, height: int = 16,
              x_max_percentile: float = 99.0,
              title: Optional[str] = None,
              log_x: bool = False) -> str:
    """Render empirical CDFs of one or more samples as an ASCII plot.

    Parameters
    ----------
    series:
        Mapping of name -> samples.
    x_max_percentile:
        Clip the x-axis at this pooled percentile so tails don't squash
        the interesting region.
    log_x:
        Use a logarithmic x-axis (for Fig. 2-style ratio plots).
    """
    cleaned = {name: np.sort(np.asarray(list(values), dtype=float))
               for name, values in series.items()
               if len(list(values)) > 0}
    if not cleaned:
        return "(no data)"
    pooled = np.concatenate(list(cleaned.values()))
    x_hi = float(np.percentile(pooled, x_max_percentile))
    x_lo = float(pooled.min())
    if log_x:
        x_lo = max(x_lo, 1e-9)
        x_hi = max(x_hi, x_lo * 10)
        xs = np.logspace(np.log10(x_lo), np.log10(x_hi), width)
    else:
        if x_hi <= x_lo:
            x_hi = x_lo + 1.0
        xs = np.linspace(x_lo, x_hi, width)

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, data) in enumerate(cleaned.items()):
        marker = MARKERS[idx % len(MARKERS)]
        for col, x in enumerate(xs):
            p = np.searchsorted(data, x, side="right") / data.size
            row = height - 1 - int(round(p * (height - 1)))
            if grid[row][col] == " ":
                grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        p = 1.0 - i / (height - 1)
        lines.append(f"{p:4.2f} |" + "".join(row))
    axis = "-" * width
    lines.append("     +" + axis)
    lines.append(f"      {xs[0]:<12.4g}{'':^{max(width - 24, 0)}}"
                 f"{xs[-1]:>12.4g}")
    legend = "  ".join(f"{MARKERS[i % len(MARKERS)]}={name}"
                       for i, name in enumerate(cleaned))
    lines.append("      " + legend)
    return "\n".join(lines)


def ascii_series(rows: Mapping[str, Sequence[Tuple[float, float]]],
                 width: int = 64, height: int = 14,
                 title: Optional[str] = None) -> str:
    """Render (x, y) series as an ASCII line plot (Fig. 12-style trends)."""
    cleaned = {name: sorted((float(x), float(y)) for x, y in pts)
               for name, pts in rows.items() if pts}
    if not cleaned:
        return "(no data)"
    all_x = [x for pts in cleaned.values() for x, _ in pts]
    all_y = [y for pts in cleaned.values() for _, y in pts]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(cleaned.items()):
        marker = MARKERS[idx % len(MARKERS)]
        for x, y in pts:
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / (y_hi - y_lo)
                                         * (height - 1)))
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{y:8.3g} |" + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<12.4g}{'':^{max(width - 24, 0)}}"
                 f"{x_hi:>12.4g}")
    legend = "  ".join(f"{MARKERS[i % len(MARKERS)]}={name}"
                       for i, name in enumerate(cleaned))
    lines.append("          " + legend)
    return "\n".join(lines)
