"""Rendering helpers for :class:`repro.sim.telemetry.TimeSeriesRecorder`.

The recorder produces fixed-interval per-function series (container
counts by state, committed memory, start-type rates). These helpers turn
them into the repo's text-first outputs: ``ascii_series`` plots of one
metric across functions, and summary tables of per-function telemetry
(peak warm pool, start mix) — the per-function concurrency statistics
the paper's evaluation leans on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.plot import ascii_series
from repro.analysis.tables import render_table


def timeseries_plot(recorder, metric: str = "warm",
                    funcs: Optional[Sequence[str]] = None,
                    include_cluster: bool = False,
                    title: Optional[str] = None,
                    top: int = 6) -> str:
    """ASCII plot of one recorded metric over virtual time.

    ``metric`` is any :class:`~repro.sim.telemetry.FunctionSeries`
    metric (``warm``, ``busy``, ``idle``, ``provisioning``,
    ``memory_mb``, ``warm_starts``, ``cold_starts``,
    ``delayed_starts``). Defaults to the ``top`` functions by peak value
    when ``funcs`` is not given.
    """
    if funcs is None:
        ranked = sorted(
            recorder.functions,
            key=lambda f: -max(
                (v for _, v in recorder.functions[f].points(metric)),
                default=0.0))
        funcs = ranked[:top]
    series = {f: recorder.functions[f].points(metric)
              for f in funcs if f in recorder.functions}
    if include_cluster:
        series["cluster"] = recorder.cluster.points(metric)
    return ascii_series(series,
                        title=title or f"{metric} over time (ms)")


def timeseries_table(recorder,
                     funcs: Optional[Sequence[str]] = None) -> str:
    """Per-function telemetry summary table (peaks and start mix)."""
    names = sorted(funcs if funcs is not None else recorder.functions)
    rows: List[list] = []
    for func in names:
        series = recorder.functions.get(func)
        if series is None or not len(series):
            continue
        rows.append([
            func,
            max(series.warm),
            max(series.busy),
            max(series.provisioning),
            max(series.memory_mb),
            sum(series.starts["warm"]),
            sum(series.starts["delayed"]),
            sum(series.starts["cold"]),
        ])
    return render_table(
        ["function", "peak_warm", "peak_busy", "peak_prov",
         "peak_mb", "warm", "delayed", "cold"],
        rows, title="per-function telemetry")
