"""Markdown experiment reports.

:func:`experiment_report` turns a set of
:class:`~repro.experiments.runner.ExperimentResult` objects into a
self-contained markdown document: per-capacity tables, relative
improvements against a chosen baseline, and the start-type breakdown —
the artifact you attach to a PR when proposing a policy change.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.comparison import best_policy, compare
from repro.experiments.runner import ExperimentResult


def _md_table(headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> str:
    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:,.2f}"
        return str(v)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def experiment_report(results: Sequence[ExperimentResult],
                      baseline: str = "FaasCache",
                      title: str = "Policy comparison report",
                      oracle: Optional[str] = "Offline") -> str:
    """Render a markdown report over a grid of experiment results.

    Results are grouped by (trace, capacity); within each group every
    policy is compared against ``baseline``. The ``oracle`` policy (if
    present) is excluded from "best online policy" callouts.
    """
    if not results:
        raise ValueError("no results to report")
    groups: Dict[tuple, Dict[str, ExperimentResult]] = {}
    for res in results:
        key = (res.trace_name, res.config.capacity_gb)
        groups.setdefault(key, {})[res.policy_name] = res

    sections: List[str] = [f"# {title}", ""]
    for (trace_name, capacity_gb), by_policy in sorted(groups.items()):
        sections.append(f"## {trace_name} @ {capacity_gb:g} GB")
        sections.append("")
        rows = []
        for name, res in by_policy.items():
            r = res.result
            rows.append([name, r.avg_overhead_ratio * 100,
                         r.cold_start_ratio * 100,
                         r.delayed_start_ratio * 100,
                         r.warm_start_ratio * 100, r.avg_wait_ms,
                         r.wait_percentile(99) if r.requests else 0.0])
        sections.append(_md_table(
            ["policy", "overhead %", "cold %", "delayed %", "warm %",
             "avg wait ms", "p99 wait ms"], rows))
        sections.append("")
        if baseline in by_policy:
            base = by_policy[baseline].result
            callouts = []
            for name, res in by_policy.items():
                if name == baseline:
                    continue
                c = compare(base, res.result, baseline, name)
                callouts.append(
                    f"- **{name}**: overhead "
                    f"{c.overhead_reduction_pct:+.1f}%, cold starts "
                    f"{c.cold_ratio_reduction_pct:+.1f}%, wait "
                    f"{c.wait_reduction_pct:+.1f}% vs {baseline}")
            sections.extend(callouts)
            sections.append("")
        online = {name: res.result for name, res in by_policy.items()
                  if name != oracle}
        if online:
            winner = best_policy(online)
            sections.append(f"Best online policy: **{winner}** "
                            f"({online[winner].avg_overhead_ratio:.1%} "
                            f"average overhead ratio).")
            sections.append("")
    return "\n".join(sections).rstrip() + "\n"
