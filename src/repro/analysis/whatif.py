"""The §2.4 what-if analyses (Figs 5-8).

* :func:`tradeoff_analysis` (Figs 5/6) — replay the workload under
  FaasCache and, for every request that triggers a cold start while a busy
  warm container of its function exists, record the *counterfactual*
  queuing delay (shortest remaining work among the busy containers) next
  to the cold-start latency it actually paid. The paper finds the two
  CDFs cross at 464 ms on Azure (69.4% of requests better off queuing)
  and that queuing always wins on FC.

* :func:`queue_length_study` (Fig. 7) — FaasCache with per-container
  delayed-warm-start queues of length L ∈ {0, 1, 2}.

* :func:`eviction_study` (Fig. 8) — FaasCache vs FaasCache-C (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.cdf import ECDF, crossover
from repro.policies.base import ScalingDecision
from repro.policies.faascache import (BoundedQueueFaasCache,
                                      FaasCacheCPolicy, FaasCachePolicy)
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.orchestrator import Orchestrator
from repro.traces.schema import Trace


class QueueAlwaysFaasCache(FaasCachePolicy):
    """A FaasCache variant that always prefers the delayed-warm-start
    queue when the function has busy containers (used by tests and
    extension studies; the Figs 5/6 analysis itself uses the
    counterfactual :class:`TradeoffProbeFaasCache` below)."""

    name = "FaasCache-queue-always"

    def scale(self, request, worker, now) -> ScalingDecision:
        # The orchestrator escalates to a cold start automatically when the
        # function has no busy or provisioning containers to wait on.
        return ScalingDecision.queue()


class TradeoffProbeFaasCache(FaasCachePolicy):
    """Vanilla FaasCache instrumented for the Figs 5/6 what-if.

    Every time a request triggers a cold start while the function has at
    least one busy warm container, the probe records the *counterfactual*
    queuing delay — how long this request would have waited for the busy
    container with the shortest remaining work — next to the cold-start
    latency it is about to pay. The replay itself stays vanilla (each
    probe measures the alternative without taking it), mirroring the
    paper's per-request what-if accounting.
    """

    name = "FaasCache-tradeoff-probe"

    def __init__(self) -> None:
        super().__init__()
        self.queuing_ms: List[float] = []
        self.cold_ms: List[float] = []

    def scale(self, request, worker, now) -> ScalingDecision:
        best_wait: Optional[float] = None
        for container in worker.busy_of(request.func):
            done = max((r.start_ms + r.exec_ms for r in container.active),
                       default=now)
            wait = max(done - now, 0.0)
            if best_wait is None or wait < best_wait:
                best_wait = wait
        if best_wait is not None:
            assert self.ctx is not None
            self.queuing_ms.append(best_wait)
            self.cold_ms.append(
                self.ctx.spec_of(request.func).cold_start_ms)
        return ScalingDecision.cold()


@dataclass
class TradeoffResult:
    """Figs 5/6: queuing delays vs counterfactual cold-start latencies."""

    queuing_ms: np.ndarray
    cold_ms: np.ndarray

    @property
    def queuing_cdf(self) -> ECDF:
        return ECDF(self.queuing_ms)

    @property
    def cold_cdf(self) -> ECDF:
        return ECDF(self.cold_ms)

    def crossover_ms(self) -> Optional[float]:
        """Where the two CDFs cross (464 ms in the paper's Fig. 5)."""
        return crossover(self.queuing_cdf, self.cold_cdf)

    def fraction_queue_wins(self) -> float:
        """Fraction of delayed requests whose queuing delay was below the
        cold start they would have paid."""
        if self.queuing_ms.size == 0:
            return 0.0
        return float((self.queuing_ms < self.cold_ms).mean())


def tradeoff_analysis(trace: Trace,
                      config: Optional[SimulationConfig] = None
                      ) -> TradeoffResult:
    """Run the instrumented FaasCache replay and collect Figs 5/6 data.

    Returns the per-cold-start counterfactual queuing delays (the shortest
    wait on a busy warm container at the moment the cold start was
    issued) paired with the cold-start latencies actually paid.
    """
    config = config or SimulationConfig()
    probe = TradeoffProbeFaasCache()
    orch = Orchestrator(trace.functions, probe, config)
    orch.run(trace.fresh_requests())
    return TradeoffResult(np.asarray(probe.queuing_ms),
                          np.asarray(probe.cold_ms))


@dataclass
class QueueLengthResult:
    """One Fig. 7 bar: overhead + start breakdown at queue length L."""

    queue_length: int
    avg_overhead_ratio: float
    warm_ratio: float
    delayed_ratio: float
    cold_ratio: float


def queue_length_study(trace: Trace,
                       lengths: Sequence[int] = (0, 1, 2),
                       config: Optional[SimulationConfig] = None
                       ) -> List[QueueLengthResult]:
    """Fig. 7: sweep the per-container delayed-warm-start queue length."""
    config = config or SimulationConfig()
    out = []
    for length in lengths:
        orch = Orchestrator(trace.functions,
                            BoundedQueueFaasCache(length), config)
        res = orch.run(trace.fresh_requests())
        out.append(QueueLengthResult(
            queue_length=length,
            avg_overhead_ratio=res.avg_overhead_ratio,
            warm_ratio=res.warm_start_ratio,
            delayed_ratio=res.delayed_start_ratio,
            cold_ratio=res.cold_start_ratio,
        ))
    return out


def eviction_study(trace: Trace,
                   config: Optional[SimulationConfig] = None
                   ) -> Dict[str, SimulationResult]:
    """Fig. 8: vanilla FaasCache vs concurrency-aware FaasCache-C."""
    config = config or SimulationConfig()
    out: Dict[str, SimulationResult] = {}
    for policy_cls in (FaasCachePolicy, FaasCacheCPolicy):
        policy = policy_cls()
        orch = Orchestrator(trace.functions, policy, config)
        out[policy.name] = orch.run(trace.fresh_requests())
    return out
