"""Trace and result analytics: CDFs, what-if studies, opportunity space."""

from repro.analysis.attribution import (AttributedRun, CounterfactualCheck,
                                        cause_breakdown, cause_chain,
                                        counterfactual_check, frontier_rows,
                                        regret_instants, run_attributed,
                                        victim_decomposition,
                                        worst_decisions)
from repro.analysis.audit import (EvictionBalance, eviction_balance,
                                  expensive_decisions, gate_flip_rows,
                                  gate_flip_timeline, gate_flips)
from repro.analysis.cdf import ECDF, crossover, fraction_below
from repro.analysis.interference import (ConcurrencyPoint,
                                         concurrency_curve,
                                         exec_concurrency,
                                         interference_summary,
                                         request_slowdowns, slowdown_cdf)
from repro.analysis.comparison import (Comparison, best_policy, compare,
                                       comparison_table)
from repro.analysis.opportunity import (OpportunityResult,
                                        opportunity_space,
                                        opportunity_sweep)
from repro.analysis.plot import ascii_cdf, ascii_series
from repro.analysis.report import experiment_report
from repro.analysis.resilience import (ClassColdStarts, CrashWindow,
                                       cold_start_breakdown,
                                       crash_windows, goodput_series,
                                       orphan_retry_waits,
                                       orphan_wait_cdf,
                                       resilience_summary)
from repro.analysis.tables import render_cdf_series, render_table
from repro.analysis.timeseries import timeseries_plot, timeseries_table
from repro.analysis.whatif import (QueueAlwaysFaasCache, QueueLengthResult,
                                   TradeoffProbeFaasCache, TradeoffResult,
                                   eviction_study, queue_length_study,
                                   tradeoff_analysis)

__all__ = [
    "AttributedRun", "CounterfactualCheck", "cause_breakdown",
    "cause_chain", "counterfactual_check", "frontier_rows",
    "regret_instants", "run_attributed", "victim_decomposition",
    "worst_decisions",
    "ClassColdStarts", "ConcurrencyPoint", "CrashWindow",
    "cold_start_breakdown", "concurrency_curve", "crash_windows",
    "exec_concurrency", "goodput_series", "interference_summary",
    "orphan_retry_waits", "orphan_wait_cdf", "request_slowdowns",
    "resilience_summary", "slowdown_cdf",
    "ECDF", "EvictionBalance", "OpportunityResult", "QueueAlwaysFaasCache",
    "eviction_balance", "expensive_decisions", "gate_flip_rows",
    "gate_flip_timeline", "gate_flips",
    "Comparison", "ascii_cdf", "ascii_series", "best_policy", "compare",
    "comparison_table",
    "QueueLengthResult", "TradeoffProbeFaasCache", "TradeoffResult",
    "crossover", "eviction_study",
    "fraction_below", "opportunity_space", "opportunity_sweep",
    "experiment_report", "queue_length_study", "render_cdf_series",
    "render_table",
    "timeseries_plot", "timeseries_table", "tradeoff_analysis",
]
