"""Resilience analytics for chaos runs (:mod:`repro.sim.faults`).

Everything here consumes a run's event stream (live :class:`Event`
objects from an :class:`~repro.sim.eventlog.EventLog`, or records loaded
back with :func:`~repro.sim.telemetry.read_events_jsonl`) plus the
:class:`~repro.sim.metrics.SimulationResult`, and reduces them to the
views a fault-injection experiment needs:

* **crash windows** — every worker outage as a ``(crash, restart)``
  interval, with open-ended windows for workers that never rejoined;
* **goodput series** — completions per fixed time bucket, the signal
  that shows throughput dipping at a crash and recovering after the
  restart;
* **orphan retry waits** — invocation overhead of every completed
  request that survived at least one crash (its first execution was
  orphaned and re-dispatched), optionally as an
  :class:`~repro.analysis.cdf.ECDF` for latency-CDF figures;
* **cold-start breakdown by worker class** — provision-to-ready latency
  grouped by a :class:`~repro.sim.faults.FaultPlan`'s heterogeneous
  worker classes, quantifying what a slow class costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.cdf import ECDF
from repro.sim.eventlog import Event, EventKind
from repro.sim.faults import FaultPlan
from repro.sim.metrics import SimulationResult

__all__ = ["CrashWindow", "ClassColdStarts", "cold_start_breakdown",
           "crash_windows", "goodput_series", "orphan_retry_waits",
           "orphan_wait_cdf", "resilience_summary"]


@dataclass(frozen=True)
class CrashWindow:
    """One worker outage interval."""

    worker_id: int
    crash_ms: float
    #: When the worker rejoined; ``None`` when it never restarted.
    restart_ms: Optional[float]

    @property
    def duration_ms(self) -> Optional[float]:
        """Outage length, or ``None`` for a permanent crash."""
        if self.restart_ms is None:
            return None
        return self.restart_ms - self.crash_ms


def crash_windows(events: Iterable[Event]) -> List[CrashWindow]:
    """Pair each ``worker_crash`` with its matching ``worker_restart``.

    A worker may crash several times; restarts are matched to the most
    recent open crash of the same worker, in stream order."""
    windows: List[CrashWindow] = []
    open_crash: Dict[int, int] = {}       # worker_id -> index in windows
    for event in events:
        if event.kind is EventKind.WORKER_CRASH:
            open_crash[event.worker_id] = len(windows)
            windows.append(CrashWindow(event.worker_id,
                                       event.time_ms, None))
        elif event.kind is EventKind.WORKER_RESTART:
            index = open_crash.pop(event.worker_id, None)
            if index is not None:
                closed = windows[index]
                windows[index] = CrashWindow(closed.worker_id,
                                             closed.crash_ms,
                                             event.time_ms)
    return windows


def goodput_series(events: Iterable[Event],
                   bucket_ms: float = 1_000.0,
                   span_ms: Optional[Tuple[float, float]] = None
                   ) -> List[Tuple[float, int]]:
    """Completions per fixed time bucket: ``(bucket_start_ms, count)``.

    Buckets with zero completions between the first and last completion
    are included, so the series plots as a contiguous curve and crash
    dips show up as explicit zeros rather than gaps.

    ``span_ms`` is an optional ``(start_ms, end_ms)`` range to bucket
    over instead of the completions' own extent. The series then covers
    the full range — leading/trailing zero buckets included, with the
    final (possibly partial) bucket present even when the range is not a
    multiple of ``bucket_ms`` — and a run with no completions yields
    all-zero buckets instead of ``[]``. Without it, a crash dip after
    the last completion would be silently truncated away."""
    if bucket_ms <= 0:
        raise ValueError("bucket_ms must be > 0")
    counts: Dict[int, int] = {}
    for event in events:
        if event.kind is EventKind.EXEC_END:
            counts[int(event.time_ms // bucket_ms)] = counts.get(
                int(event.time_ms // bucket_ms), 0) + 1
    if span_ms is not None:
        start, end = span_ms
        if end < start:
            raise ValueError("span_ms end precedes its start")
        lo = int(start // bucket_ms)
        hi = int(end // bucket_ms)
        # A span ending exactly on a bucket boundary owns no part of the
        # next bucket (buckets are [start, start + bucket_ms)).
        if hi > lo and end == hi * bucket_ms:
            hi -= 1
    elif not counts:
        return []
    else:
        lo, hi = min(counts), max(counts)
    return [(bucket * bucket_ms, counts.get(bucket, 0))
            for bucket in range(lo, hi + 1)]


def orphan_retry_waits(result: SimulationResult) -> List[float]:
    """Invocation overhead (ms) of every completed request that was
    orphaned by a crash at least once, in arrival order."""
    return [request.wait_ms for request in result.requests
            if request.retries > 0 and request.start_ms is not None]


def orphan_wait_cdf(result: SimulationResult) -> Optional[ECDF]:
    """ECDF of :func:`orphan_retry_waits`, or ``None`` when no completed
    request was ever orphaned."""
    waits = orphan_retry_waits(result)
    if not waits:
        return None
    return ECDF(waits)


@dataclass(frozen=True)
class ClassColdStarts:
    """Provision-to-ready latency profile of one worker class."""

    name: str
    count: int
    total_ms: float

    @property
    def mean_ms(self) -> float:
        if not self.count:
            return 0.0
        return self.total_ms / self.count


def cold_start_breakdown(events: Iterable[Event],
                         plan: Optional[FaultPlan] = None
                         ) -> List[ClassColdStarts]:
    """Cold-start (``provision_start`` to ``container_ready``) latency
    grouped by the plan's worker classes.

    Workers outside every class (or all workers when ``plan`` is None)
    land in the ``"default"`` class. Provisions cancelled by a crash
    (no matching ready event) are excluded. Classes come back sorted by
    name."""
    started: Dict[int, Tuple[float, Optional[int]]] = {}
    totals: Dict[str, Tuple[int, float]] = {}
    for event in events:
        if event.kind is EventKind.PROVISION_START:
            started[event.container_id] = (event.time_ms, event.worker_id)
        elif event.kind is EventKind.CONTAINER_READY:
            begin = started.pop(event.container_id, None)
            if begin is None:
                continue
            start_ms, worker_id = begin
            name = "default"
            if plan is not None and worker_id is not None:
                wclass = plan.class_of(worker_id)
                if wclass is not None:
                    name = wclass.name
            count, total = totals.get(name, (0, 0.0))
            totals[name] = (count + 1, total + event.time_ms - start_ms)
    return [ClassColdStarts(name, count, total)
            for name, (count, total) in sorted(totals.items())]


def resilience_summary(result: SimulationResult,
                       events: Iterable[Event],
                       plan: Optional[FaultPlan] = None,
                       bucket_ms: float = 1_000.0,
                       span_ms: Optional[Tuple[float, float]] = None
                       ) -> Dict[str, float]:
    """Flat scalar summary of a chaos run, for tables and JSON.

    ``events`` is consumed several times, so pass a materialised
    sequence (an :class:`EventLog`'s buffer or a loaded list), not a
    one-shot generator."""
    events = list(events)
    windows = crash_windows(events)
    closed = [w.duration_ms for w in windows if w.restart_ms is not None]
    series = goodput_series(events, bucket_ms, span_ms)
    waits = orphan_retry_waits(result)
    summary: Dict[str, float] = {
        "crashes": float(len(windows)),
        "permanent_crashes": float(len(windows) - len(closed)),
        "mean_outage_ms": (sum(closed) / len(closed)) if closed else 0.0,
        "completed": float(len(result.requests)),
        "failed": float(len(result.failed_requests)),
        "orphaned": float(result.orphaned_requests),
        "reassigned": float(result.reassigned_requests),
        "survivors": float(len(waits)),
        "mean_goodput_per_bucket": (
            sum(count for _, count in series) / len(series)
            if series else 0.0),
        "min_goodput_per_bucket": (
            float(min(count for _, count in series)) if series else 0.0),
    }
    if waits:
        cdf = ECDF(waits)
        summary["survivor_wait_p50_ms"] = cdf.percentile(50)
        summary["survivor_wait_p99_ms"] = cdf.percentile(99)
    for profile in cold_start_breakdown(events, plan):
        summary[f"cold_ms_{profile.name}"] = profile.mean_ms
    return summary
