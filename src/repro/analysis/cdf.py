"""Empirical CDFs and distribution summaries for figures.

Every CDF figure in the paper (Figs 2, 3, 5, 6, 9, 10, 13, 14, 19) is an
empirical CDF of some per-request or per-function quantity; :class:`ECDF`
provides evaluation, percentiles, crossover detection (the 464 ms
crossover of Fig. 5), and compact fixed-grid summaries for text rendering.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


class ECDF:
    """Empirical cumulative distribution function of a 1-D sample."""

    def __init__(self, samples: Iterable[float]):
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("ECDF needs at least one sample")
        self.x = np.sort(data)

    def __len__(self) -> int:
        return int(self.x.size)

    def __call__(self, value: float) -> float:
        """P(X <= value)."""
        return float(np.searchsorted(self.x, value, side="right")
                     / self.x.size)

    def percentile(self, q: float) -> float:
        """``q``-th percentile (0-100)."""
        return float(np.percentile(self.x, q))

    def quantiles(self, qs: Sequence[float]) -> np.ndarray:
        return np.percentile(self.x, qs)

    def mean(self) -> float:
        return float(self.x.mean())

    def grid(self, points: int = 11,
             lo: Optional[float] = None,
             hi: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """(values, cumulative probabilities) over an even grid — a text
        rendering of the CDF curve."""
        lo = self.x.min() if lo is None else lo
        hi = self.x.max() if hi is None else hi
        xs = np.linspace(lo, hi, points)
        ys = np.array([self(v) for v in xs])
        return xs, ys


def crossover(a: ECDF, b: ECDF, lo: Optional[float] = None,
              hi: Optional[float] = None,
              tolerance: float = 1e-3) -> Optional[float]:
    """Value where CDF ``a`` and CDF ``b`` cross (Fig. 5's 464 ms point).

    Scans the merged support for the first location where the sign of
    ``a(x) - b(x)`` flips. Returns ``None`` when one curve dominates the
    other everywhere in the scanned range.
    """
    support = np.unique(np.concatenate([a.x, b.x]))
    if lo is not None:
        support = support[support >= lo]
    if hi is not None:
        support = support[support <= hi]
    if support.size == 0:
        return None
    diffs = np.array([a(v) - b(v) for v in support])
    sign = None
    for value, diff in zip(support, diffs):
        if abs(diff) <= tolerance:
            continue
        current = diff > 0
        if sign is None:
            sign = current
        elif current != sign:
            return float(value)
    return None


def fraction_below(samples: Iterable[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold``."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return 0.0
    return float((data < threshold).mean())
