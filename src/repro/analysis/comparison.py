"""Policy-vs-policy comparison helpers.

The paper reports its results as relative improvements ("reduces the cold
start ratio and the average invocation overhead by up to 75.1% and 39.3%").
:func:`compare` computes those deltas between two
:class:`~repro.sim.metrics.SimulationResult` objects, and
:func:`comparison_table` renders a full matrix against a chosen baseline —
the shape EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.analysis.tables import render_table
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class Comparison:
    """Relative improvements of ``candidate`` over ``baseline``.

    Positive percentages mean the candidate is better (lower overhead /
    fewer cold starts / less memory).
    """

    baseline_name: str
    candidate_name: str
    overhead_reduction_pct: float
    cold_ratio_reduction_pct: float
    wait_reduction_pct: float
    memory_reduction_pct: float

    def __str__(self) -> str:
        return (f"{self.candidate_name} vs {self.baseline_name}: "
                f"overhead -{self.overhead_reduction_pct:.1f}%, "
                f"cold starts -{self.cold_ratio_reduction_pct:.1f}%, "
                f"wait -{self.wait_reduction_pct:.1f}%, "
                f"memory -{self.memory_reduction_pct:.1f}%")


def _reduction_pct(baseline: float, candidate: float) -> float:
    """Relative reduction in percent; 0 when the baseline is zero."""
    if baseline == 0:
        return 0.0
    return (baseline - candidate) / baseline * 100.0


def compare(baseline: SimulationResult, candidate: SimulationResult,
            baseline_name: str = "baseline",
            candidate_name: str = "candidate") -> Comparison:
    """Headline relative improvements of ``candidate`` over ``baseline``."""
    return Comparison(
        baseline_name=baseline_name,
        candidate_name=candidate_name,
        overhead_reduction_pct=_reduction_pct(
            baseline.avg_overhead_ratio, candidate.avg_overhead_ratio),
        cold_ratio_reduction_pct=_reduction_pct(
            baseline.cold_start_ratio, candidate.cold_start_ratio),
        wait_reduction_pct=_reduction_pct(
            baseline.avg_wait_ms, candidate.avg_wait_ms),
        memory_reduction_pct=_reduction_pct(
            baseline.avg_memory_mb, candidate.avg_memory_mb),
    )


def comparison_table(results: Mapping[str, SimulationResult],
                     baseline: str,
                     order: Optional[Sequence[str]] = None,
                     title: Optional[str] = None) -> str:
    """Render every policy's improvement over ``baseline`` as a table."""
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} not in results")
    names = list(order) if order is not None else list(results)
    base = results[baseline]
    rows = []
    for name in names:
        if name not in results:
            raise KeyError(f"policy {name!r} not in results")
        c = compare(base, results[name], baseline, name)
        rows.append([name, results[name].avg_overhead_ratio,
                     c.overhead_reduction_pct,
                     c.cold_ratio_reduction_pct, c.wait_reduction_pct])
    return render_table(
        ["policy", "overhead ratio", "overhead -%", "cold -%", "wait -%"],
        rows,
        title=title or f"improvements relative to {baseline}")


def best_policy(results: Mapping[str, SimulationResult],
                metric: str = "avg_overhead_ratio",
                exclude: Sequence[str] = ()) -> str:
    """Name of the policy minimizing ``metric`` (an attribute name)."""
    candidates = {name: res for name, res in results.items()
                  if name not in set(exclude)}
    if not candidates:
        raise ValueError("no candidates to choose from")
    return min(candidates, key=lambda n: getattr(candidates[n], metric))
