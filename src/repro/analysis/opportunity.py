"""Opportunity-space analysis (§2.5, Figs 9-10).

For each invocation request of function ``f`` arriving at ``t_a`` with cold
start overhead ``t_c``, the *opportunity space window* is
``[t_a, t_a + t_c]``: if this request were cold-started, any other request
of ``f`` completing inside the window would vacate a warm container the new
request could have reused instead — a delayed warm start opportunity.

Following the paper's methodology exactly, the analysis is trace-only
(no simulation): every other request is assumed to start with zero
invocation overhead, so request ``r'`` completes at
``arrival(r') + exec(r')``. Fig. 9 scales the cold-start overhead (shrinking
the window); Fig. 10 scales execution times (shifting all completions,
which the paper observes leaves the distribution essentially unchanged).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.traces.schema import Trace


@dataclass
class OpportunityResult:
    """Per-request delayed-warm-start opportunity counts."""

    counts: np.ndarray
    cold_factor: float
    exec_factor: float

    def cdf_at(self, threshold: int) -> float:
        """Fraction of requests with <= ``threshold`` opportunities."""
        if self.counts.size == 0:
            return 0.0
        return float((self.counts <= threshold).mean())

    def fraction_with_at_least(self, n: int) -> float:
        """Fraction of requests with >= ``n`` opportunities (the paper
        highlights ">25 opportunities for ~60% of requests")."""
        if self.counts.size == 0:
            return 0.0
        return float((self.counts >= n).mean())

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.counts, q))


def opportunity_space(trace: Trace, cold_factor: float = 1.0,
                      exec_factor: float = 1.0) -> OpportunityResult:
    """Count delayed-warm-start opportunities for every request.

    Parameters
    ----------
    cold_factor:
        Multiplier on each function's cold-start overhead (Fig. 9 sweeps
        1.0 / 0.75 / 0.5 / 0.25).
    exec_factor:
        Multiplier on every request's execution time (Fig. 10 sweeps
        1.0 / 1.5 / 2.0).
    """
    if cold_factor <= 0 or exec_factor <= 0:
        raise ValueError("factors must be positive")
    per_func: Dict[str, List[int]] = {}
    for i, req in enumerate(trace.requests):
        per_func.setdefault(req.func, []).append(i)

    requests = trace.requests
    counts = np.zeros(len(requests), dtype=int)
    for func, indices in per_func.items():
        cold = trace.spec_of(func).cold_start_ms * cold_factor
        completions = sorted(
            requests[i].arrival_ms + requests[i].exec_ms * exec_factor
            for i in indices)
        for i in indices:
            t_a = requests[i].arrival_ms
            own = t_a + requests[i].exec_ms * exec_factor
            lo = bisect.bisect_left(completions, t_a)
            hi = bisect.bisect_right(completions, t_a + cold)
            n = hi - lo
            # Exclude the request's own completion if it falls in-window.
            if t_a <= own <= t_a + cold:
                n -= 1
            counts[i] = max(n, 0)
    return OpportunityResult(counts, cold_factor, exec_factor)


def opportunity_sweep(trace: Trace,
                      cold_factors: Sequence[float] = (1.0, 0.75, 0.5, 0.25),
                      exec_factors: Sequence[float] = (1.0, 1.5, 2.0)
                      ) -> Dict[str, List[OpportunityResult]]:
    """Both sweeps of §2.5 in one call: Fig. 9 then Fig. 10."""
    fig9 = [opportunity_space(trace, cold_factor=f) for f in cold_factors]
    fig10 = [opportunity_space(trace, exec_factor=f) for f in exec_factors]
    return {"cold": fig9, "exec": fig10}
