"""Analytics over decision-audit records (:mod:`repro.obs`).

Everything here consumes the plain record dicts a
:class:`~repro.obs.DecisionAudit` collects (or that
:func:`~repro.obs.read_audit_jsonl` loads back from a sidecar file) and
reduces them to the three views the ``repro audit`` CLI verb prints:

* the per-function **gate-flip timeline** — every ``bss_enabled``
  transition with the comparison that caused it;
* the **eviction balance** — victims per function across all
  ``eviction_decision`` records, with the max per-function share. This is
  the paper's Observation 2 metric (CIP spreads evictions across
  functions instead of thrashing one), computed from decision provenance
  alone rather than from the event log;
* the **most expensive decisions** — decisions ranked by the latency
  they plausibly cost: eviction decisions by the summed cold-start cost
  of their victims (what re-provisioning the evicted capacity costs),
  queue decisions by the delayed-start signal ``T_d`` they accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = ["EvictionBalance", "eviction_balance", "expensive_decisions",
           "gate_flip_rows", "gate_flip_timeline", "gate_flips"]


def gate_flips(records: Iterable[dict]) -> List[dict]:
    """The ``gate_flip`` records, in stream order."""
    return [r for r in records if r.get("kind") == "gate_flip"]


def gate_flip_timeline(records: Iterable[dict]
                       ) -> Dict[str, List[Tuple[float, bool, str]]]:
    """Per-function ``(t, enabled, reason)`` transitions, in time order."""
    timeline: Dict[str, List[Tuple[float, bool, str]]] = {}
    for flip in gate_flips(records):
        timeline.setdefault(flip["func"], []).append(
            (flip["t"], flip["enabled"], flip.get("reason", "")))
    return timeline


def gate_flip_rows(records: Iterable[dict],
                   limit: int = 0) -> List[List[object]]:
    """Table rows ``[t, func, transition, reason, trigger]`` for the CLI.

    ``limit`` keeps only the last N flips (0 = all).
    """
    rows = [[flip["t"], flip["func"],
             "off->on" if flip["enabled"] else "on->off",
             flip.get("reason", ""), flip.get("trigger", "")]
            for flip in gate_flips(records)]
    if limit and len(rows) > limit:
        rows = rows[-limit:]
    return rows


@dataclass
class EvictionBalance:
    """Observation 2's imbalance view, from audit records alone."""

    #: Victims per function, over every ``eviction_decision`` record.
    counts: Dict[str, int]
    #: Number of REPLACE decisions (one record may evict several).
    decisions: int
    #: Total victims.
    total: int

    @property
    def max_share(self) -> float:
        """Largest per-function share of all evictions (1.0 = one
        function absorbs everything — maximally imbalanced)."""
        if not self.total:
            return 0.0
        return max(self.counts.values()) / self.total

    def rows(self) -> List[List[object]]:
        """Table rows ``[func, evictions, share]``, most-evicted first."""
        return [[func, count, count / self.total]
                for func, count in sorted(self.counts.items(),
                                          key=lambda kv: (-kv[1], kv[0]))]


def eviction_balance(records: Iterable[dict]) -> EvictionBalance:
    """Count victims per function across ``eviction_decision`` records."""
    counts: Dict[str, int] = {}
    decisions = 0
    total = 0
    for record in records:
        if record.get("kind") != "eviction_decision":
            continue
        decisions += 1
        for victim in record["victims"]:
            counts[victim["func"]] = counts.get(victim["func"], 0) + 1
            total += 1
    return EvictionBalance(counts, decisions, total)


def expensive_decisions(records: Iterable[dict],
                        k: int = 10) -> List[Tuple[float, dict]]:
    """Top-``k`` decisions by estimated latency cost.

    Eviction decisions cost the summed ``cost_ms`` of their victims (the
    cold starts needed to win that capacity back); ``css_scale`` records
    that kept a request queued cost the ``T_d`` delayed-start signal the
    gate accepted. Returns ``(cost_ms, record)`` pairs, most expensive
    first (ties broken by time, earliest first).
    """
    scored: List[Tuple[float, float, int, dict]] = []
    for i, record in enumerate(records):
        kind = record.get("kind")
        if kind == "eviction_decision":
            cost = sum(v.get("cost_ms", 0.0) for v in record["victims"])
        elif kind == "css_scale" and record.get("decision") == "queue" \
                and record.get("t_d") is not None:
            cost = record["t_d"]
        else:
            continue
        scored.append((-cost, record.get("t", 0.0), i, record))
    scored.sort(key=lambda item: item[:3])
    return [(-neg_cost, record)
            for neg_cost, _, _, record in scored[:k]]
