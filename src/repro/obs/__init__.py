"""Run observability: decision audit and metrics registry.

:mod:`repro.obs` layers *decision provenance* over the run telemetry of
:mod:`repro.sim.telemetry`: where the event log answers "what happened"
(a request queued, a container died), the decision audit answers *why*
(which ``T_i/T_e/T_d/T_p`` comparison closed the cold-start path, which
Eq. 3 term made this container the eviction victim), and the metrics
registry keeps cheap aggregate counters/gauges/histograms exportable as
JSON or Prometheus text.

Both attachments are opt-in and strictly read-only: runs with them on
are bit-identical to runs with them off (pinned by differential tests).
"""

from repro.obs.attribution import (CAUSE_CLASSES, CauseTracker, cause_class,
                                   cause_decision_id, split_cause)
from repro.obs.audit import (AuditJsonlSink, AuditSink, DecisionAudit,
                             RECORD_KINDS, read_audit_jsonl)
from repro.obs.metrics import (Counter, DEFAULT_LATENCY_BUCKETS_MS, Gauge,
                               Histogram, MetricsRegistry)
from repro.obs.outcomes import (ContainerWaste, DecisionOutcome,
                                OutcomeResolver, resolve)

__all__ = [
    "AuditJsonlSink", "AuditSink", "CAUSE_CLASSES", "CauseTracker",
    "ContainerWaste", "Counter", "DEFAULT_LATENCY_BUCKETS_MS",
    "DecisionAudit", "DecisionOutcome", "Gauge", "Histogram",
    "MetricsRegistry", "OutcomeResolver", "RECORD_KINDS", "cause_class",
    "cause_decision_id", "read_audit_jsonl", "resolve", "split_cause",
]
