"""Decision-audit probe: structured records explaining policy choices.

A :class:`DecisionAudit` attached to a run receives one record per
policy decision worth explaining:

``css_scale``
    Every :meth:`CSSScalingMixin.scale` call — the four window stats
    ``T_i/T_e/T_d/T_p`` behind Algorithm 1, the branch taken
    (``speculate`` / ``disable`` / ``reopen`` / ``stay_queued``), the
    post-call ``bss_enabled`` state, and (when evaluated) the
    backlog-projection inputs.

``gate_flip``
    Each per-function ``bss_enabled`` transition, with timestamp, the
    comparison that caused it (``T_i>T_e`` or ``T_d>T_p``) and whether
    it fired from ``scale()`` or maintenance.

``eviction_decision``
    Each base ``make_room`` REPLACE decision — every victim's Eq. 3
    decomposition (``clock``, ``freq_per_min``, ``cost_ms``,
    ``size_mb``, ``warm_count`` = ``|F(c)|``, final ``priority``) plus
    a ranking snapshot of the surviving candidates.

Records are plain dicts (JSON-ready, compact keys mirroring
``event_to_dict``) kept in an in-memory ring and optionally streamed to
:class:`AuditSink`\\ s — the JSONL sidecar sink mirrors
:class:`repro.sim.telemetry.JsonlSink`. The audit is strictly
read-only: attaching one leaves runs bit-identical to unaudited runs
(pinned by ``tests/obs/test_audit_differential.py``).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Union

__all__ = ["AuditSink", "AuditJsonlSink", "DecisionAudit",
           "RECORD_KINDS", "read_audit_jsonl"]

#: Every record kind a :class:`DecisionAudit` can emit. ``scale_down``
#: records are minted by the orchestrator for policy-direct evictions
#: (TTL expiry, keep-alive decay) so cold-start attribution can blame
#: them by ``decision_id`` like any REPLACE decision.
RECORD_KINDS = ("css_scale", "gate_flip", "eviction_decision",
                "scale_down")


class AuditSink:
    """Receives audit records as they are emitted.

    Same contract as :class:`repro.sim.telemetry.EventSink`, but for
    decision records (plain dicts) instead of lifecycle events.
    """

    def emit(self, record: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "AuditSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AuditJsonlSink(AuditSink):
    """Streams audit records to a JSONL sidecar file, one per line."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w")
        self.emitted = 0

    def emit(self, record: Dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_audit_jsonl(path: Union[str, Path]) -> List[Dict]:
    """Load the records written by :class:`AuditJsonlSink`."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class DecisionAudit:
    """In-memory record ring + sink fan-out for policy decisions.

    ``capacity=None`` keeps every record; a finite capacity keeps the
    most recent ones (sinks still see the full stream, like
    ``EventLog``'s ring/sink split).
    """

    def __init__(self, sinks: Sequence[AuditSink] = (),
                 capacity: Optional[int] = None):
        self.capacity = capacity
        self.records: Deque[Dict] = deque(maxlen=capacity)
        self.recorded = 0
        self._sinks: List[AuditSink] = list(sinks)

    @property
    def sinks(self) -> Sequence[AuditSink]:
        return tuple(self._sinks)

    def attach(self, sink: AuditSink) -> AuditSink:
        self._sinks.append(sink)
        return sink

    def emit(self, record: Dict) -> int:
        """Record one decision; returns its stable ``decision_id``.

        Decision ids are assigned monotonically from 0 in emission order
        — the audit stream's line number — so sidecar files, the
        in-memory ring and cause stamps (``eviction:<id>``) all agree.
        The caller's dict is never mutated; the stamped copy is what the
        ring and the sinks see (``did`` key).
        """
        did = self.recorded
        stamped = dict(record)
        stamped["did"] = did
        self.records.append(stamped)
        self.recorded += 1
        for sink in self._sinks:
            sink.emit(stamped)
        return did

    def of_kind(self, kind: str) -> List[Dict]:
        return [r for r in self.records if r.get("kind") == kind]

    def record_by_id(self, did: int) -> Optional[Dict]:
        """The record with decision id ``did`` still held in the ring.

        O(1) for unbounded audits (ids are ring indexes); on a bounded
        ring the oldest records rotate out and return ``None``.
        """
        dropped = self.recorded - len(self.records)
        index = did - dropped
        if 0 <= index < len(self.records):
            return self.records[index]
        return None

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Dict]:
        return iter(self.records)
