"""Causal cold-start attribution: which decision emptied the warm pool?

A :class:`CauseTracker` attached to a run
(``Orchestrator(..., attribution=CauseTracker())``) stamps every
``PROVISION_START`` with its *proximate cause* — the reason the request
could not be served warm:

``first-invocation``
    The function never had a container (or nothing ever removed one):
    the unavoidable first cold start.
``eviction:<decision_id>``
    A ``make_room`` REPLACE decision (audited as an
    ``eviction_decision`` record with that ``decision_id``) removed the
    function's last container.
``scale-down:<decision_id>``
    A policy-direct eviction — TTL expiry, keep-alive decay, prewarm
    reclaim — removed the last container; the orchestrator mints a
    ``scale_down`` audit record for it on the spot.
``crash``
    A worker crash destroyed the function's last container (fault
    layer); there is no decision to blame, only the fault plan.
``capacity-blocked``
    Containers of the function exist but none could take the request
    (all busy/provisioning, or idle on another worker): the cold start
    is a concurrency shortfall, not a removal.

The tracker keeps one integer per function (containers currently in
existence: provisioning, idle, busy or compressed) plus the blame label
written whenever a removal zeroes that count. It is strictly read-only
with respect to the simulation: the only observable difference between
an attributed and an unattributed run is the ``" cause=..."`` suffix on
``PROVISION_START`` details (pinned by
``tests/obs/test_attribution_differential.py``), and attribution *off*
is byte-identical to a build without this module.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.sim.eventlog import (CAUSE_CLASSES, cause_class,
                                cause_decision_id, split_cause)

__all__ = ["CAUSE_CLASSES", "CauseTracker", "cause_class",
           "cause_decision_id", "split_cause"]


class CauseTracker:
    """Per-function warm-pool accounting behind the cause stamps.

    The orchestrator drives it from exactly three sites: every
    ``_begin_provision`` (:meth:`begin_provision`, which both computes
    the stamp and counts the new container), every :meth:`~note_removal`
    (REPLACE and policy-direct evictions), and every crash
    (:meth:`note_crash`). All methods fold into tracker-owned state
    only; arguments are never mutated.
    """

    def __init__(self) -> None:
        #: func -> containers currently in existence (any live state).
        self._live: Dict[str, int] = {}
        #: func -> (cause class, decision_id or None) written when a
        #: removal zeroed the pool; absent = never emptied by a removal.
        self._blame: Dict[str, Tuple[str, Optional[int]]] = {}
        #: Stamps handed out, by cause class (cheap sanity/summary view).
        self.stamped: Dict[str, int] = {}

    # -- provisioning --------------------------------------------------

    def begin_provision(self, func: str) -> str:
        """Cause label for a provision of ``func`` starting now.

        Also counts the new container into the pool, so a burst of
        provisions after one eviction blames the eviction exactly once
        (the remainder are ``capacity-blocked`` — only the removed
        container could have absorbed one of them).
        """
        live = self._live
        count = live.get(func, 0)
        if count > 0:
            label = "capacity-blocked"
        else:
            blamed = self._blame.get(func)
            if blamed is None:
                label = "first-invocation"
            elif blamed[1] is None:
                label = blamed[0]
            else:
                label = f"{blamed[0]}:{blamed[1]}"
        live[func] = count + 1
        counts = self.stamped
        cls = cause_class(label)
        counts[cls] = counts.get(cls, 0) + 1
        return label

    # -- removals ------------------------------------------------------

    def note_removal(self, func: str, kind: str,
                     decision_id: Optional[int]) -> None:
        """One container of ``func`` was evicted.

        ``kind`` is ``"eviction"`` for REPLACE victims (the decision_id
        of the audited ``eviction_decision``) and ``"scale-down"`` for
        policy-direct evictions (the decision_id of the minted
        ``scale_down`` record, or ``None`` with no audit attached).
        """
        live = self._live
        count = live.get(func, 0) - 1
        if count < 0:  # pragma: no cover - defensive
            count = 0
        live[func] = count
        if count == 0:
            self._blame[func] = (kind, decision_id)

    def note_crash(self, funcs: Iterable[str]) -> None:
        """A worker crash destroyed one container per entry of ``funcs``
        (duplicates allowed — crashes kill whole pools at once)."""
        live = self._live
        blame = self._blame
        for func in funcs:
            count = live.get(func, 0) - 1
            if count < 0:  # pragma: no cover - defensive
                count = 0
            live[func] = count
            if count == 0:
                blame[func] = ("crash", None)

    # -- introspection -------------------------------------------------

    def live_count(self, func: str) -> int:
        """Containers of ``func`` the tracker currently believes exist."""
        return self._live.get(func, 0)

    def blamed(self, func: str) -> Optional[Tuple[str, Optional[int]]]:
        """The (class, decision_id) that last emptied ``func``'s pool."""
        return self._blame.get(func)
