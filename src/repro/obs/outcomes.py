"""Decision-outcome resolver: what did each eviction actually cost?

The audit (:mod:`repro.obs.audit`) records *why* a decision was taken
and attribution (:mod:`repro.obs.attribution`) stamps *which* decision
each cold start blames. This module closes the loop: an
:class:`OutcomeResolver` streams over the joined audit-record / event
timeline and settles every eviction-class decision at a fixed horizon,
turning intent into measured outcome:

eviction regret
    The cold-start penalty actually paid for the victims' functions
    within ``horizon_ms`` of the decision — the summed realized
    provision durations (``CONTAINER_READY`` − ``PROVISION_START``) of
    every provision stamped ``cause=eviction:<did>`` /
    ``cause=scale-down:<did>`` — minus a memory credit,
    ``credit_ms_per_mb_ms`` × the memory-ms the decision reclaimed
    (each victim's footprint, held until the first blamed re-provision
    of its function or the horizon, whichever comes first). The default
    credit rate is ``0.0``, so out of the box ``regret_ms`` *is* the
    realized cold-start penalty — the quantity the pinned-decision
    counterfactual (:mod:`repro.analysis.attribution`) validates — and
    ``reclaimed_mb_ms`` is reported alongside for callers pricing
    memory themselves.

keep-warm waste
    The flip side, charged to decisions that waited too long: when an
    evicted container's terminal idle stretch ends (its ``EVICTION``
    event arrives), the resolver emits a :class:`ContainerWaste` with
    the idle memory-ms the container consumed without serving anything
    — ``idle_ms`` × ``mem_mb`` — and whether it *ever* served
    (``never_used`` marks pure provisioning waste).

With a :class:`~repro.obs.metrics.MetricsRegistry` attached the
resolver owns two instrument families (the orchestrator deliberately
does not double-count them): ``repro_coldstart_cause_total{cause=...}``
counting every stamped provision by cause class, and
``repro_eviction_regret_ms`` observing each settled decision's regret.

The resolver is a sink on both streams — attach the same instance with
``audit.attach(resolver)`` *and* ``event_log.attach(resolver)`` for
live resolution, or replay offline with :func:`resolve`. At equal
timestamps audit records sort before events (decision before effect),
matching live emission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.sim.eventlog import (Event, EventKind, cause_class,
                                cause_decision_id, split_cause)

__all__ = ["ContainerWaste", "DecisionOutcome", "OutcomeResolver",
           "resolve"]

#: Default settlement horizon: a decision's consequences are tallied
#: for this long after it fires. Long enough to catch the re-provision
#: wave an eviction triggers, short enough that regret stays local.
DEFAULT_HORIZON_MS = 60_000.0


@dataclass(frozen=True)
class DecisionOutcome:
    """One settled eviction-class decision."""

    did: int                      #: audit decision id
    kind: str                     #: "eviction" (REPLACE) or "scale-down"
    t_ms: float                   #: when the decision fired
    settled_ms: float             #: when the resolver settled it
    horizon_ms: float
    victims: Tuple[Tuple[int, str, float], ...]  #: (cid, func, mem_mb)
    provisions: int               #: blamed provisions that completed
    penalty_ms: float             #: realized cold-start time caused
    reclaimed_mb_ms: float        #: memory-ms actually freed
    regret_ms: float              #: penalty - credit_rate * reclaimed


@dataclass(frozen=True)
class ContainerWaste:
    """Terminal idle stretch of one evicted container."""

    cid: int
    func: str
    evicted_ms: float
    idle_ms: float                #: length of the terminal idle stretch
    mem_mb: float
    waste_mb_ms: float            #: idle_ms * mem_mb
    never_used: bool              #: True = never served any request
    did: Optional[int]            #: the decision that evicted it


@dataclass
class _OpenDecision:
    """Working state of a decision still inside its horizon."""

    did: int
    kind: str
    t_ms: float
    deadline_ms: float
    victims: List[Tuple[int, str, float]] = field(default_factory=list)
    penalty_ms: float = 0.0
    provisions: int = 0
    in_flight: int = 0            #: blamed provisions awaiting READY
    reprovisioned: Dict[str, float] = field(default_factory=dict)


class OutcomeResolver:
    """Streaming joiner over audit records and lifecycle events.

    Feed it the merged timeline via :meth:`emit` (dicts are audit
    records, :class:`~repro.sim.eventlog.Event` instances are events);
    call :meth:`finish` once the run ends to settle decisions whose
    horizon had not yet elapsed. Settled outcomes accumulate in
    :attr:`outcomes`, keep-warm waste in :attr:`wastes`, cause-class
    counts in :attr:`causes`.
    """

    def __init__(self, horizon_ms: float = DEFAULT_HORIZON_MS,
                 credit_ms_per_mb_ms: float = 0.0,
                 metrics=None):
        if horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")
        self.horizon_ms = horizon_ms
        self.credit_ms_per_mb_ms = credit_ms_per_mb_ms
        self.outcomes: List[DecisionOutcome] = []
        self.wastes: List[ContainerWaste] = []
        #: cause class -> stamped provisions seen.
        self.causes: Dict[str, int] = {}
        self._now = 0.0
        self._finished = False
        #: did -> open decision state, insertion (= time) ordered.
        self._open: Dict[int, _OpenDecision] = {}
        #: victim cid -> (did, func, mem_mb) awaiting its EVICTION event.
        self._victim_of: Dict[int, Tuple[Optional[int], str, float]] = {}
        #: cid -> exact terminal idle_ms from its scale_down record.
        self._scale_idle: Dict[int, float] = {}
        #: cid -> (blamed did or None, provision start time).
        self._provisioning: Dict[int, Tuple[Optional[int], float]] = {}
        self._active: Dict[int, int] = {}       #: cid -> running execs
        self._idle_since: Dict[int, float] = {}
        self._served: Dict[int, bool] = {}
        self._m_causes = None
        self._m_regret = None
        if metrics is not None:
            self._m_causes = metrics.counter(
                "repro_coldstart_cause_total",
                "Cold starts (PROVISION_START) by proximate cause class",
                labelnames=("cause",))
            self._m_regret = metrics.histogram(
                "repro_eviction_regret_ms",
                "Settled eviction-decision regret (realized cold-start "
                "penalty minus memory credit)")

    # -- sink protocol --------------------------------------------------

    def emit(self, item: Union[Dict, Event]) -> None:
        """One timeline element: an audit record dict or an Event."""
        if isinstance(item, dict):
            self._on_record(item)
        else:
            self._on_event(item)

    def close(self) -> None:
        """Sink teardown: settle whatever is still open (idempotent)."""
        self.finish()

    # -- audit records --------------------------------------------------

    def _on_record(self, record: Dict) -> None:
        kind = record.get("kind")
        if kind == "eviction_decision":
            victims = [(v["cid"], v["func"], v["mem_mb"])
                       for v in record["victims"]]
            self._open_decision(record, "eviction", victims)
        elif kind == "scale_down":
            victims = [(record["cid"], record["func"], record["mem_mb"])]
            self._scale_idle[record["cid"]] = record["idle_ms"]
            self._open_decision(record, "scale-down", victims)

    def _open_decision(self, record: Dict, kind: str,
                       victims: List[Tuple[int, str, float]]) -> None:
        did = record["did"]
        t = record["t"]
        state = _OpenDecision(did=did, kind=kind, t_ms=t,
                              deadline_ms=t + self.horizon_ms,
                              victims=victims)
        self._open[did] = state
        for cid, func, mem_mb in victims:
            self._victim_of[cid] = (did, func, mem_mb)

    # -- lifecycle events -----------------------------------------------

    def _on_event(self, event: Event) -> None:
        t = event.time_ms
        self._now = t
        kind = event.kind
        cid = event.container_id
        if kind is EventKind.PROVISION_START:
            self._on_provision(event, t, cid)
        elif kind is EventKind.RESTORE_START:
            # A decompression pays restore latency, not a cold start:
            # mark the cid in-flight unblamed so READY skips it.
            self._provisioning[cid] = (None, t)
        elif kind is EventKind.CONTAINER_READY:
            self._on_ready(t, cid)
        elif kind is EventKind.EXEC_START:
            self._active[cid] = self._active.get(cid, 0) + 1
            self._served[cid] = True
        elif kind is EventKind.EXEC_END:
            left = self._active.get(cid, 1) - 1
            self._active[cid] = left
            if left <= 0:
                self._idle_since[cid] = t
        elif kind is EventKind.EVICTION:
            self._on_eviction(t, cid)
        self._settle_due()

    def _on_provision(self, event: Event, t: float,
                      cid: Optional[int]) -> None:
        _, cause = split_cause(event.detail)
        if not cause:
            # Unattributed run: nothing to blame, nothing to count.
            self._provisioning[cid] = (None, t)
            return
        cls = cause_class(cause)
        self.causes[cls] = self.causes.get(cls, 0) + 1
        if self._m_causes is not None:
            self._m_causes.labels(cause=cls).inc()
        did = cause_decision_id(cause)
        state = self._open.get(did) if did is not None else None
        if state is not None:
            state.in_flight += 1
            state.reprovisioned.setdefault(event.func, t)
            self._provisioning[cid] = (did, t)
        else:
            self._provisioning[cid] = (None, t)

    def _on_ready(self, t: float, cid: Optional[int]) -> None:
        blamed = self._provisioning.pop(cid, None)
        if blamed is not None:
            did, started = blamed
            state = self._open.get(did) if did is not None else None
            if state is not None:
                state.penalty_ms += t - started
                state.provisions += 1
                state.in_flight -= 1
        self._active[cid] = 0
        self._idle_since[cid] = t
        self._served.setdefault(cid, False)

    def _on_eviction(self, t: float, cid: Optional[int]) -> None:
        joined = self._victim_of.pop(cid, None)
        idle_exact = self._scale_idle.pop(cid, None)
        if joined is not None:
            did, func, mem_mb = joined
            if idle_exact is not None:
                idle_ms = idle_exact
            else:
                idle_ms = t - self._idle_since.get(cid, t)
            self.wastes.append(ContainerWaste(
                cid=cid, func=func, evicted_ms=t, idle_ms=idle_ms,
                mem_mb=mem_mb, waste_mb_ms=idle_ms * mem_mb,
                never_used=not self._served.get(cid, False), did=did))
        self._active.pop(cid, None)
        self._idle_since.pop(cid, None)
        self._served.pop(cid, None)

    # -- settlement -----------------------------------------------------

    def _settle_due(self) -> None:
        now = self._now
        due = [state for state in self._open.values()
               if now > state.deadline_ms and state.in_flight == 0]
        for state in due:
            self._settle(state, credit_cap_ms=self.horizon_ms)

    def _settle(self, state: _OpenDecision, credit_cap_ms: float) -> None:
        reclaimed = 0.0
        reprov = state.reprovisioned
        for _cid, func, mem_mb in state.victims:
            held_ms = reprov.get(func)
            if held_ms is None:
                held_ms = state.t_ms + credit_cap_ms
            duration_ms = held_ms - state.t_ms
            if duration_ms < 0.0:
                duration_ms = 0.0
            elif duration_ms > credit_cap_ms:
                duration_ms = credit_cap_ms
            reclaimed += mem_mb * duration_ms
        regret_ms = (state.penalty_ms
                     - self.credit_ms_per_mb_ms * reclaimed)
        outcome = DecisionOutcome(
            did=state.did, kind=state.kind, t_ms=state.t_ms,
            settled_ms=self._now, horizon_ms=self.horizon_ms,
            victims=tuple(state.victims), provisions=state.provisions,
            penalty_ms=state.penalty_ms, reclaimed_mb_ms=reclaimed,
            regret_ms=regret_ms)
        self.outcomes.append(outcome)
        if self._m_regret is not None:
            self._m_regret.observe(regret_ms)
        self._open.pop(state.did, None)

    def finish(self) -> None:
        """Settle every still-open decision at end of stream.

        Decisions whose horizon had not elapsed get their memory credit
        capped at the time actually observed; blamed provisions still
        in flight contribute nothing (their READY never arrived).
        """
        if self._finished:
            return
        self._finished = True
        for state in list(self._open.values()):
            cap = self._now - state.t_ms
            if cap < 0.0:
                cap = 0.0
            elif cap > self.horizon_ms:
                cap = self.horizon_ms
            self._settle(state, credit_cap_ms=cap)

    # -- summaries ------------------------------------------------------

    def outcome_of(self, did: int) -> Optional[DecisionOutcome]:
        """The settled outcome for one decision id, if settled."""
        for outcome in self.outcomes:
            if outcome.did == did:
                return outcome
        return None

    def waste_by_func(self) -> Dict[str, float]:
        """Total keep-warm waste (mb-ms) per function."""
        totals: Dict[str, float] = {}
        for waste in self.wastes:
            totals[waste.func] = (totals.get(waste.func, 0.0)
                                  + waste.waste_mb_ms)
        return totals

    def penalty_by_func(self) -> Dict[str, float]:
        """Realized eviction-caused cold-start penalty (ms) per function.

        Charges each settled decision's penalty to its victims'
        functions (split evenly across distinct victim functions when a
        REPLACE evicted several)."""
        totals: Dict[str, float] = {}
        for outcome in self.outcomes:
            funcs = sorted({func for _cid, func, _mb in outcome.victims})
            if not funcs:
                continue
            share_ms = outcome.penalty_ms / len(funcs)
            for func in funcs:
                totals[func] = totals.get(func, 0.0) + share_ms
        return totals


def resolve(records: Iterable[Dict], events: Iterable[Event],
            horizon_ms: float = DEFAULT_HORIZON_MS,
            credit_ms_per_mb_ms: float = 0.0,
            metrics=None) -> OutcomeResolver:
    """Offline resolution: merge and replay a finished run's streams.

    ``records`` is a :class:`~repro.obs.audit.DecisionAudit`'s records
    (or a parsed sidecar), ``events`` an
    :class:`~repro.sim.eventlog.EventLog`'s events. The merge is stable
    and orders records before events at equal timestamps, reproducing
    live emission order (a decision precedes the evictions it causes).
    """
    resolver = OutcomeResolver(horizon_ms=horizon_ms,
                               credit_ms_per_mb_ms=credit_ms_per_mb_ms,
                               metrics=metrics)
    merged = []
    for index, record in enumerate(records):
        merged.append((record["t"], 0, index, record))
    for index, event in enumerate(events):
        merged.append((event.time_ms, 1, index, event))
    merged.sort(key=lambda entry: entry[:3])
    for entry in merged:
        resolver.emit(entry[3])
    resolver.finish()
    return resolver
