"""A lightweight, stdlib-only metrics registry (Prometheus-flavoured).

One :class:`MetricsRegistry` is created per run and fed from orchestrator
and policy hook sites. It supports the three staple instrument types —
monotone :class:`Counter`, settable :class:`Gauge`, fixed-bucket
:class:`Histogram` — each optionally split by a fixed set of label names
(``family.labels(func="f3").inc()``). Instruments are get-or-create by
name, so hook sites can call ``registry.counter("repro_evictions_total")``
without threading instrument handles around.

Export surfaces:

* :meth:`MetricsRegistry.snapshot` — a plain JSON-ready dict (every
  family, every labelled child, full histogram bucket vectors);
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` histogram series, deterministic sample order), so
  artifacts drop straight into promtool / Grafana tooling.

Updating an instrument never touches simulator state: metrics observe,
they do not steer — attaching a registry leaves runs bit-identical
(pinned by the differential tests in ``tests/obs``).
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple, Union

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

#: Default histogram buckets, tuned for millisecond latencies.
DEFAULT_LATENCY_BUCKETS_MS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                              500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: float) -> str:
    """Prometheus sample-value formatting that parses back exactly."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ======================================================================
# Instruments (the per-label-set children)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down (pool sizes, committed memory)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (inclusive) edges.

    ``counts[i]`` holds observations with ``value <= buckets[i]`` (and
    greater than the previous edge); ``counts[-1]`` is the +Inf overflow
    bucket.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]):
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts, ``+Inf`` last (== :attr:`count`)."""
        out = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


# ======================================================================
# Families


class _Family:
    """One named metric: type, help text, and labelled children."""

    __slots__ = ("name", "help", "kind", "labelnames", "_children",
                 "_make")

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: Sequence[str], make_child: Callable):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._children: Dict[Tuple[str, ...], object] = {}
        self._make = make_child

    def labels(self, **labels: object):
        """The child instrument for one label-value combination."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make()
        return child

    # Unlabelled convenience: a family with no label names behaves like
    # its single child, so `registry.counter("x").inc()` just works.

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in deterministic (sorted) order."""
        return sorted(self._children.items())

    def samples(self) -> List[dict]:
        out = []
        for key, child in self.children():
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                out.append({"labels": labels,
                            "le": list(child.buckets),
                            "counts": list(child.counts),
                            "sum": child.sum, "count": child.count})
            else:
                out.append({"labels": labels, "value": child.value})
        return out


# ======================================================================
# Registry


class MetricsRegistry:
    """Per-run instrument registry with JSON and Prometheus export."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- get-or-create instruments -------------------------------------

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> _Family:
        return self._get_or_create(name, help_text, "counter", labelnames,
                                   Counter)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> _Family:
        return self._get_or_create(name, help_text, "gauge", labelnames,
                                   Gauge)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
                  labelnames: Sequence[str] = ()) -> _Family:
        edges = tuple(float(b) for b in buckets)
        if not edges or any(a >= b for a, b in zip(edges, edges[1:])):
            raise ValueError("buckets must be non-empty and strictly "
                             "increasing")
        return self._get_or_create(name, help_text, "histogram",
                                   labelnames, lambda: Histogram(edges))

    def _get_or_create(self, name: str, help_text: str, kind: str,
                       labelnames: Sequence[str],
                       make_child: Callable) -> _Family:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"{name} is already registered as a {family.kind}")
            if tuple(labelnames) and tuple(labelnames) != family.labelnames:
                raise ValueError(
                    f"{name} is already registered with labels "
                    f"{family.labelnames}")
            return family
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = _Family(name, help_text, kind, labelnames, make_child)
        self._families[name] = family
        return family

    # -- introspection / export ----------------------------------------

    def families(self) -> List[_Family]:
        return [self._families[n] for n in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def snapshot(self) -> dict:
        """JSON-ready dump: every family with its labelled samples."""
        return {
            family.name: {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": family.samples(),
            }
            for family in self.families()
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} "
                             f"{_escape_label(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                base = list(zip(family.labelnames, key))
                if family.kind == "histogram":
                    running = 0
                    for edge, count in zip(child.buckets, child.counts):
                        running += count
                        lines.append(_sample_line(
                            family.name + "_bucket",
                            base + [("le", _fmt(edge))], running))
                    lines.append(_sample_line(
                        family.name + "_bucket", base + [("le", "+Inf")],
                        child.count))
                    lines.append(_sample_line(family.name + "_sum", base,
                                              child.sum))
                    lines.append(_sample_line(family.name + "_count",
                                              base, child.count))
                else:
                    lines.append(_sample_line(family.name, base,
                                              child.value))
        return "\n".join(lines) + ("\n" if lines else "")

    def save_json(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)

    def save_prometheus(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_prometheus())


def _sample_line(name: str, labels: List[Tuple[str, str]],
                 value: float) -> str:
    if labels:
        body = ",".join(f'{k}="{_escape_label(str(v))}"'
                        for k, v in labels)
        return f"{name}{{{body}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"
