"""Trace persistence: CSV for requests, JSON for function specs.

The on-disk layout mirrors how public FaaS traces ship (per-invocation CSV
plus per-function metadata), so users with access to the real Azure
Functions dataset can convert it into this format and replay it through
the same harness:

* ``<name>.functions.json`` — list of function spec dicts;
* ``<name>.requests.csv``   — ``func,arrival_ms,exec_ms`` rows.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.sim.function import FunctionSpec
from repro.sim.request import Request
from repro.traces.schema import Trace

PathLike = Union[str, Path]


def save_trace(trace: Trace, directory: PathLike) -> None:
    """Write ``trace`` into ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    functions = [
        {
            "name": f.name,
            "memory_mb": f.memory_mb,
            "cold_start_ms": f.cold_start_ms,
            "runtime": f.runtime,
            "app": f.app,
        }
        for f in trace.functions
    ]
    meta = {"name": trace.name, "functions": functions}
    with open(directory / f"{trace.name}.functions.json", "w") as fh:
        json.dump(meta, fh, indent=2)
    with open(directory / f"{trace.name}.requests.csv", "w",
              newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["func", "arrival_ms", "exec_ms"])
        for req in trace.requests:
            writer.writerow([req.func, repr(req.arrival_ms),
                             repr(req.exec_ms)])


def load_trace(directory: PathLike, name: str) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    directory = Path(directory)
    with open(directory / f"{name}.functions.json") as fh:
        meta = json.load(fh)
    functions = [
        FunctionSpec(
            name=f["name"],
            memory_mb=float(f["memory_mb"]),
            cold_start_ms=float(f["cold_start_ms"]),
            runtime=f.get("runtime", "python3.8"),
            app=f.get("app", ""),
        )
        for f in meta["functions"]
    ]
    requests = []
    with open(directory / f"{name}.requests.csv", newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            requests.append(Request(row["func"], float(row["arrival_ms"]),
                                    float(row["exec_ms"])))
    return Trace(meta["name"], functions, requests)
