"""Azure-Functions-like workload preset.

Calibrated against the published characteristics of the Azure Functions
2019 trace [Shahrad et al., ATC '20] and the statistics the paper reports:

* Table 1: the 30-minute Azure sample used for evaluation has 330
  functions and ~598k requests (~332 req/s aggregate);
* Fig. 3: minute-level concurrency is heavy-tailed (90th percentile around
  ~100 req/min, 99th in the thousands), slightly lower than FC;
* Fig. 2: cold-start cost estimated at 1-3 ms per MB of allocated memory;
* §2.6: most functions show ~25% execution-time variance;
* execution times are sub-second at the median but span ms to seconds.

The defaults are scaled down (fewer requests over the same 30 minutes) so a
full policy sweep runs in seconds; pass ``scale_rps`` to approach the
paper's full load.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.traces.schema import Trace
from repro.traces.synth import (ArrivalModel, FunctionPopulation,
                                synth_trace)

THIRTY_MINUTES_MS = 30 * 60 * 1_000.0


def azure_population(cold_ms_per_mb: float = 2.0) -> FunctionPopulation:
    """The Azure-like function population hyper-priors."""
    return FunctionPopulation(
        popularity_alpha=1.1,
        exec_median_ms_log_mu=math.log(300.0),
        exec_median_ms_log_sigma=1.1,
        exec_cv=0.25,
        cold_ms_per_mb=cold_ms_per_mb,
        cold_noise_cv=0.3,
    )


def azure_arrivals() -> ArrivalModel:
    """Azure-like burst model: mostly small bursts, occasional big spikes."""
    return ArrivalModel(
        burst_size_p=0.35,
        heavy_tail_prob=0.03,
        heavy_tail_pareto_alpha=1.35,
        heavy_tail_scale=20.0,
        max_burst=1_500,
        burst_spread_ms=300.0,
    )


def azure_trace(seed: int = 2025,
                n_functions: int = 110,
                duration_ms: float = THIRTY_MINUTES_MS,
                total_requests: int = 66_000,
                cold_ms_per_mb: float = 2.0,
                population: Optional[FunctionPopulation] = None,
                arrivals: Optional[ArrivalModel] = None) -> Trace:
    """Generate the Azure-like evaluation workload.

    The paper's 30-minute sample has 330 functions and ~598k requests
    (~1,800 requests per function). The default scales both axes by one
    third — 110 functions, ~66k requests — preserving the *per-function
    request density* that drives keep-alive economics, while keeping a
    full policy sweep tractable. Pass ``n_functions=330,
    total_requests=598_000`` for the full-scale sample.
    """
    rng = np.random.default_rng(seed)
    return synth_trace(
        name=f"azure-30m-{seed}",
        rng=rng,
        n_functions=n_functions,
        duration_ms=duration_ms,
        total_requests=total_requests,
        population=population or azure_population(cold_ms_per_mb),
        arrivals=arrivals or azure_arrivals(),
    )
