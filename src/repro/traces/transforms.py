"""Trace transforms used by the paper's sensitivity studies.

* :func:`scale_iat` — compress/stretch inter-arrival times (Fig. 19's
  0.5x/1x/2x IAT levels; Fig. 16's concurrency sweep);
* :func:`scale_exec_time` — multiply execution times (Fig. 10, Fig. 20,
  Table 2's 1.0x/1.5x/2.0x execution times);
* :func:`scale_cold_start` — multiply cold-start costs (Fig. 9's
  0.25x-1.0x cold-start overhead sweep).

All transforms return new :class:`~repro.traces.schema.Trace` objects and
leave the input untouched.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.sim.request import Request
from repro.traces.schema import Trace


def scale_iat(trace: Trace, factor: float, name: str = "") -> Trace:
    """Scale inter-arrival times by ``factor``.

    ``factor < 1`` compresses the trace (higher load / concurrency);
    ``factor > 1`` stretches it (lower load). Arrival times are scaled
    around the trace start so that relative structure is preserved.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    if not trace.requests:
        return Trace(name or trace.name, list(trace.functions), [])
    origin = trace.requests[0].arrival_ms
    requests = [
        Request(r.func, origin + (r.arrival_ms - origin) * factor, r.exec_ms)
        for r in trace.requests
    ]
    return Trace(name or f"{trace.name}-iat{factor:g}x",
                 list(trace.functions), requests)


def scale_exec_time(trace: Trace, factor: float, name: str = "") -> Trace:
    """Scale every request's execution time by ``factor`` (Fig. 20)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    requests = [Request(r.func, r.arrival_ms, r.exec_ms * factor)
                for r in trace.requests]
    return Trace(name or f"{trace.name}-exec{factor:g}x",
                 list(trace.functions), requests)


def scale_cold_start(trace: Trace, factor: float, name: str = "") -> Trace:
    """Scale every function's cold-start cost by ``factor`` (Fig. 9)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    functions = [replace(f, cold_start_ms=f.cold_start_ms * factor)
                 for f in trace.functions]
    requests = [Request(r.func, r.arrival_ms, r.exec_ms)
                for r in trace.requests]
    return Trace(name or f"{trace.name}-cold{factor:g}x",
                 functions, requests)


def map_requests(trace: Trace, fn: Callable[[Request], Request],
                 name: str = "") -> Trace:
    """Generic per-request transform (for custom what-ifs)."""
    requests = [fn(r) for r in trace.requests]
    return Trace(name or f"{trace.name}-mapped",
                 list(trace.functions), requests)
