"""Burst-parallel workflow (DAG) workload generation.

The paper motivates concurrency-driven scaling with burst-parallel,
stateful workflow processing (Sprocket-style video pipelines, ExCamera,
serverless analytics): one job fans out into tens-to-thousands of
concurrent invocations of the same function, then fans back in. This
module generates such workloads as first-class traces:

* a :class:`WorkflowStage` is one function with a fan-out degree
  distribution and an execution-time distribution;
* a :class:`WorkflowSpec` chains stages; each *job* instantiates the chain
  with stage ``k+1``'s invocations released when stage ``k``'s slowest
  invocation completes (the ideal-DAG approximation — like §2.5, scheduling
  overhead is not baked into the trace, the simulator adds it at replay);
* :func:`workflow_trace` superimposes a Poisson stream of jobs, optionally
  on top of a background trace.

These are the workloads where delayed warm starts shine: every fan-out is
a concurrency spike against a warm pool sized for the previous one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.function import FunctionSpec
from repro.sim.request import Request
from repro.traces.schema import Trace


@dataclass(frozen=True)
class WorkflowStage:
    """One stage of a burst-parallel workflow.

    Parameters
    ----------
    name:
        Stage (function) name, unique within the workflow.
    memory_mb / cold_start_ms:
        Container shape of the stage's function.
    fanout_min / fanout_max:
        Each job invokes this stage ``U[fanout_min, fanout_max]`` times
        concurrently (1/1 for sequential stages).
    exec_median_ms / exec_sigma:
        Lognormal execution-time distribution of one invocation.
    """

    name: str
    memory_mb: float = 512.0
    cold_start_ms: float = 1_000.0
    fanout_min: int = 1
    fanout_max: int = 1
    exec_median_ms: float = 300.0
    exec_sigma: float = 0.25

    def __post_init__(self) -> None:
        if not 1 <= self.fanout_min <= self.fanout_max:
            raise ValueError(
                f"{self.name}: need 1 <= fanout_min <= fanout_max")
        if self.exec_median_ms <= 0:
            raise ValueError(f"{self.name}: exec_median_ms must be > 0")


@dataclass(frozen=True)
class WorkflowSpec:
    """A chain of stages executed per job."""

    name: str
    stages: Tuple[WorkflowStage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a workflow needs at least one stage")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError("stage names must be unique")

    def function_specs(self) -> List[FunctionSpec]:
        return [FunctionSpec(name=f"{self.name}-{s.name}",
                             memory_mb=s.memory_mb,
                             cold_start_ms=s.cold_start_ms,
                             app=self.name)
                for s in self.stages]


def video_pipeline(name: str = "video") -> WorkflowSpec:
    """The Sprocket-style pipeline from the paper's motivation."""
    return WorkflowSpec(name, (
        WorkflowStage("split", memory_mb=256, cold_start_ms=600,
                      exec_median_ms=250.0),
        WorkflowStage("transcode", memory_mb=768, cold_start_ms=1_500,
                      fanout_min=50, fanout_max=400,
                      exec_median_ms=400.0),
        WorkflowStage("stitch", memory_mb=512, cold_start_ms=1_000,
                      exec_median_ms=700.0),
    ))


def mapreduce(name: str = "mapreduce", mappers: int = 100,
              reducers: int = 10) -> WorkflowSpec:
    """An Occupy-the-Cloud-style map/shuffle/reduce job."""
    return WorkflowSpec(name, (
        WorkflowStage("map", memory_mb=512, cold_start_ms=1_000,
                      fanout_min=max(mappers // 2, 1), fanout_max=mappers,
                      exec_median_ms=500.0),
        WorkflowStage("reduce", memory_mb=1_024, cold_start_ms=2_000,
                      fanout_min=max(reducers // 2, 1),
                      fanout_max=reducers, exec_median_ms=900.0),
    ))


def generate_job(rng: np.random.Generator, workflow: WorkflowSpec,
                 start_ms: float,
                 stage_jitter_ms: float = 100.0) -> List[Request]:
    """Instantiate one job: stage k+1 starts when stage k's slowest
    invocation would complete (zero-overhead DAG approximation)."""
    requests: List[Request] = []
    stage_start = start_ms
    for stage in workflow.stages:
        fanout = int(rng.integers(stage.fanout_min, stage.fanout_max + 1))
        offsets = rng.uniform(0.0, stage_jitter_ms, size=fanout)
        execs = stage.exec_median_ms * rng.lognormal(
            0.0, stage.exec_sigma, size=fanout)
        latest_completion = stage_start
        for offset, exec_ms in zip(offsets, execs):
            arrival = stage_start + float(offset)
            requests.append(Request(f"{workflow.name}-{stage.name}",
                                    arrival, float(max(exec_ms, 1.0))))
            latest_completion = max(latest_completion,
                                    arrival + float(exec_ms))
        stage_start = latest_completion
    return requests


def workflow_trace(workflows: Sequence[WorkflowSpec],
                   jobs_per_workflow: Sequence[int],
                   duration_ms: float,
                   seed: int = 0,
                   name: str = "workflows",
                   background: Optional[Trace] = None) -> Trace:
    """A Poisson stream of jobs per workflow, optionally superimposed on a
    background trace (the co-tenant traffic of a shared cluster)."""
    if len(workflows) != len(jobs_per_workflow):
        raise ValueError("need one job count per workflow")
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    rng = np.random.default_rng(seed)
    functions: List[FunctionSpec] = []
    requests: List[Request] = []
    for workflow, jobs in zip(workflows, jobs_per_workflow):
        functions.extend(workflow.function_specs())
        starts = np.sort(rng.uniform(0.0, duration_ms, size=jobs))
        for start in starts:
            requests.extend(generate_job(rng, workflow, float(start)))
    if background is not None:
        functions.extend(background.functions)
        requests.extend(Request(r.func, r.arrival_ms, r.exec_ms)
                        for r in background.requests)
    return Trace(name, functions, requests)
