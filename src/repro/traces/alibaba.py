"""Alibaba Cloud Function Compute (FC)-like workload preset.

Calibrated against what the paper reports about its internal 30-minute FC
trace:

* Table 1: 220 functions and ~410k requests in the sampled evaluation
  workload (~228 req/s aggregate; the raw trace peaks much higher);
* Fig. 3: concurrency is *higher* than Azure — the {90th, 99th} percentile
  per-function concurrency is {120, 4,482} requests/min;
* Fig. 2: the cold-start-to-execution-time ratio spans four orders of
  magnitude, with 40.4% of cold starts exceeding the execution time;
* Fig. 6: unlike Azure, queuing delays on busy containers are essentially
  *always* shorter than FC cold starts — executions are short relative to
  provisioning, which the preset encodes with shorter executions and a
  fatter burst tail.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.traces.schema import Trace
from repro.traces.synth import (ArrivalModel, FunctionPopulation,
                                synth_trace)

THIRTY_MINUTES_MS = 30 * 60 * 1_000.0


def fc_population(cold_ms_per_mb: float = 3.0) -> FunctionPopulation:
    """FC-like population: short executions, relatively pricey cold starts."""
    return FunctionPopulation(
        popularity_alpha=0.95,
        exec_median_ms_log_mu=math.log(120.0),
        exec_median_ms_log_sigma=1.0,
        exec_cv=0.25,
        cold_ms_per_mb=cold_ms_per_mb,
        cold_noise_cv=0.5,
    )


def fc_arrivals() -> ArrivalModel:
    """FC-like burst model: heavier concurrency tail than Azure (Fig. 3)."""
    return ArrivalModel(
        burst_size_p=0.25,
        heavy_tail_prob=0.10,
        heavy_tail_pareto_alpha=1.2,
        heavy_tail_scale=60.0,
        max_burst=4_500,
        burst_spread_ms=200.0,
        steady_fraction=0.15,
    )


def fc_production_arrivals() -> ArrivalModel:
    """Production-cluster traffic shape (§5.2 / Fig. 14).

    The paper's production test runs on a 37-machine cluster sharing a
    large pool with other tenants and sees a 1.10% baseline cold-start
    ratio — traffic there is dominated by sustained streams rather than
    the evaluation traces' heavy burst tail.
    """
    return ArrivalModel(
        burst_size_p=0.6,
        heavy_tail_prob=0.005,
        heavy_tail_pareto_alpha=1.6,
        heavy_tail_scale=8.0,
        max_burst=200,
        steady_fraction=0.7,
    )


def fc_production_trace(seed: int = 9,
                        n_functions: int = 75,
                        duration_ms: float = THIRTY_MINUTES_MS,
                        total_requests: int = 50_000) -> Trace:
    """The §5.2 production-cluster workload (used by Fig. 14)."""
    rng = np.random.default_rng(seed)
    return synth_trace(
        name=f"fc-production-{seed}",
        rng=rng,
        n_functions=n_functions,
        duration_ms=duration_ms,
        total_requests=total_requests,
        population=fc_population(),
        arrivals=fc_production_arrivals(),
    )


def fc_trace(seed: int = 2026,
             n_functions: int = 75,
             duration_ms: float = THIRTY_MINUTES_MS,
             total_requests: int = 62_000,
             cold_ms_per_mb: float = 3.0,
             population: Optional[FunctionPopulation] = None,
             arrivals: Optional[ArrivalModel] = None) -> Trace:
    """Generate the FC-like evaluation workload.

    The paper's sampled FC workload has 220 functions and ~410k requests
    (~1,860 per function). The default scales both axes to 75 functions /
    ~45k realized requests, preserving per-function density. Pass
    ``n_functions=220, total_requests=410_000`` for full scale.
    """
    rng = np.random.default_rng(seed)
    return synth_trace(
        name=f"fc-30m-{seed}",
        rng=rng,
        n_functions=n_functions,
        duration_ms=duration_ms,
        total_requests=total_requests,
        population=population or fc_population(cold_ms_per_mb),
        arrivals=arrivals or fc_arrivals(),
    )
