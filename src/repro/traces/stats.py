"""Workload statistics — Table 1 and the Fig. 2/3 trace characterizations.

* :func:`workload_stats` computes Table 1's rows: request count, requests
  per second (avg / min / max over one-second windows), and GBps — "the
  aggregate memory size of all requests per second in GBs".
* :func:`concurrency_per_minute` computes each function's requests-per-
  minute samples, whose pooled distribution is the Fig. 3 concurrency CDF.
* :func:`cold_to_exec_ratios` computes the Fig. 2 cold-start-latency to
  execution-time ratio per request, with an optional ms/MB scaling factor
  reproducing the paper's f=1,2,3 estimates for Azure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.traces.schema import Trace

MB_PER_GB = 1024.0


@dataclass(frozen=True)
class WorkloadStats:
    """One row of Table 1."""

    name: str
    num_requests: int
    rps_avg: float
    rps_min: float
    rps_max: float
    gbps_avg: float
    gbps_min: float
    gbps_max: float

    def row(self) -> str:
        return (f"{self.name:>12s}  {self.num_requests:>9,d}   "
                f"{self.rps_avg:,.0f} / {self.rps_min:,.0f} / "
                f"{self.rps_max:,.0f}   "
                f"{self.gbps_avg:,.1f} / {self.gbps_min:,.1f} / "
                f"{self.gbps_max:,.1f}")


def workload_stats(trace: Trace, bucket_ms: float = 1_000.0
                   ) -> WorkloadStats:
    """Compute Table 1-style statistics over fixed one-second buckets."""
    if not trace.requests:
        return WorkloadStats(trace.name, 0, 0, 0, 0, 0, 0, 0)
    arrivals = np.array([r.arrival_ms for r in trace.requests])
    memory = np.array([trace.spec_of(r.func).memory_mb
                       for r in trace.requests]) / MB_PER_GB
    start = arrivals.min()
    buckets = ((arrivals - start) // bucket_ms).astype(int)
    n_buckets = int(buckets.max()) + 1
    counts = np.bincount(buckets, minlength=n_buckets)
    gb = np.bincount(buckets, weights=memory, minlength=n_buckets)
    per_sec = bucket_ms / 1_000.0
    rps = counts / per_sec
    gbps = gb / per_sec
    return WorkloadStats(
        name=trace.name,
        num_requests=len(trace.requests),
        rps_avg=float(rps.mean()),
        rps_min=float(rps.min()),
        rps_max=float(rps.max()),
        gbps_avg=float(gbps.mean()),
        gbps_min=float(gbps.min()),
        gbps_max=float(gbps.max()),
    )


def concurrency_per_minute(trace: Trace) -> np.ndarray:
    """Per-function, per-minute request counts (nonzero minutes only).

    Each sample is one function's requests/minute in one minute — the
    quantity whose CDF the paper plots in Fig. 3.
    """
    if not trace.requests:
        return np.zeros(0)
    per_func: Dict[str, List[float]] = {}
    for req in trace.requests:
        per_func.setdefault(req.func, []).append(req.arrival_ms)
    samples: List[int] = []
    for arrivals in per_func.values():
        arr = np.asarray(arrivals)
        minutes = ((arr - arr.min()) // 60_000.0).astype(int)
        counts = np.bincount(minutes)
        samples.extend(int(c) for c in counts if c > 0)
    return np.asarray(samples, dtype=float)


def cold_to_exec_ratios(trace: Trace,
                        ms_per_mb: Optional[float] = None) -> np.ndarray:
    """Fig. 2: per-request ratio of cold-start latency to execution time.

    With ``ms_per_mb`` set, the cold-start latency is *estimated* from the
    function's memory footprint (the paper's Azure methodology, f=1,2,3);
    otherwise each function's own ``cold_start_ms`` is used (the FC
    methodology, where real cold-start measurements exist).
    """
    ratios: List[float] = []
    for req in trace.requests:
        spec = trace.spec_of(req.func)
        if ms_per_mb is not None:
            cold = spec.memory_mb * ms_per_mb
        else:
            cold = spec.cold_start_ms
        ratios.append(cold / max(req.exec_ms, 1e-9))
    return np.asarray(ratios)


def fraction_cold_dominated(trace: Trace,
                            ms_per_mb: Optional[float] = None) -> float:
    """Fraction of requests whose cold start exceeds their execution time
    (the paper reports 40.4% for FC)."""
    ratios = cold_to_exec_ratios(trace, ms_per_mb)
    if ratios.size == 0:
        return 0.0
    return float((ratios > 1.0).mean())


def execution_time_cv(trace: Trace) -> Dict[str, float]:
    """Per-function coefficient of variation of execution time (§2.6)."""
    per_func: Dict[str, List[float]] = {}
    for req in trace.requests:
        per_func.setdefault(req.func, []).append(req.exec_ms)
    out: Dict[str, float] = {}
    for func, execs in per_func.items():
        arr = np.asarray(execs)
        if len(arr) < 2 or arr.mean() == 0:
            out[func] = 0.0
        else:
            out[func] = float(arr.std(ddof=1) / arr.mean())
    return out
