"""Trace schema: a workload is functions + timestamped invocation requests.

A :class:`Trace` bundles the deployed :class:`~repro.sim.function.FunctionSpec`
set with the invocation :class:`~repro.sim.request.Request` list and carries
the metadata the analysis and bench layers need (name, duration). Traces are
value objects: transforms (:mod:`repro.traces.transforms`) return new traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.sim.function import FunctionSpec
from repro.sim.request import Request


@dataclass
class Trace:
    """One replayable FaaS workload."""

    name: str
    functions: List[FunctionSpec]
    requests: List[Request]

    def __post_init__(self) -> None:
        known = {f.name for f in self.functions}
        for req in self.requests:
            if req.func not in known:
                raise ValueError(
                    f"request targets unknown function {req.func!r}")
        self.requests.sort(key=lambda r: r.arrival_ms)
        for i, req in enumerate(self.requests):
            req.req_id = i

    # ------------------------------------------------------------------

    @property
    def num_functions(self) -> int:
        return len(self.functions)

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def duration_ms(self) -> float:
        """Span from the first arrival to the last completion-relevant
        arrival (0 for an empty trace)."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_ms - self.requests[0].arrival_ms

    def spec_of(self, func: str) -> FunctionSpec:
        return self._spec_index()[func]

    def _spec_index(self) -> Dict[str, FunctionSpec]:
        index = getattr(self, "_index", None)
        if index is None:
            index = {f.name: f for f in self.functions}
            object.__setattr__(self, "_index", index)
        return index

    # ------------------------------------------------------------------

    def packed(self):
        """The trace compiled into flat parallel arrays, cached.

        Returns a :class:`repro.traces.packed.PackedTrace`; the replay
        hot path streams arrivals straight off its columns and
        materializes request records lazily. Traces are value objects,
        so the compiled form is computed once and reused (mutating a
        trace after packing is a caller error, exactly as for the
        content digest).
        """
        packed = getattr(self, "_packed", None)
        if packed is None:
            from repro.traces.packed import pack_trace
            packed = pack_trace(self)
            object.__setattr__(self, "_packed", packed)
        return packed

    def fresh_requests(self) -> List[Request]:
        """A deep-enough copy of the request list for one simulation run.

        Simulations mutate outcome fields on requests, so each run must
        replay its own copies.
        """
        return [Request(r.func, r.arrival_ms, r.exec_ms, req_id=r.req_id)
                for r in self.requests]

    def subset(self, funcs: Iterable[str], name: str = "") -> "Trace":
        """Restrict the trace to ``funcs``."""
        keep = set(funcs)
        return Trace(
            name or f"{self.name}-subset",
            [f for f in self.functions if f.name in keep],
            [Request(r.func, r.arrival_ms, r.exec_ms)
             for r in self.requests if r.func in keep],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Trace {self.name!r}: {self.num_functions} functions, "
                f"{self.num_requests} requests, "
                f"{self.duration_ms / 60000:.1f} min>")
