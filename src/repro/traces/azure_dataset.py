"""Adapter for the real Azure Functions 2019 public dataset.

The paper samples its Azure workload from the dataset released with
"Serverless in the Wild" [Shahrad et al., ATC '20]. That dataset is not
redistributable here, but users who download it can replay it through this
library via this adapter. It consumes the dataset's three CSV schemas:

* **invocations** (``invocations_per_function_md.anon.d*.csv``) — one row
  per function: ``HashOwner, HashApp, HashFunction, Trigger, 1, 2, ...,
  1440`` with per-minute invocation counts for one day;
* **durations** (``function_durations_percentiles.anon.d*.csv``) — per
  function: ``Average, Minimum, Maximum, percentile_Average_25/50/75/99``
  execution-time statistics in milliseconds;
* **memory** (``app_memory_percentiles.anon.d*.csv``) — per *app*:
  ``AverageAllocatedMb`` plus percentiles.

The adapter joins the three tables, converts each function's per-minute
counts into sub-minute arrival timestamps (the dataset is minute-
granular; the paper models second-level concurrency by spreading each
minute's invocations — we support uniform spreading and burst clustering
via the same :class:`~repro.traces.synth.ArrivalModel`), draws execution
times from a lognormal matched to the function's published percentiles,
and estimates cold-start costs from app memory (Fig. 2's 1-3 ms/MB).
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.sim.function import FunctionSpec
from repro.sim.request import Request
from repro.traces.schema import Trace

PathLike = Union[str, Path]
MINUTE_MS = 60_000.0

#: Default allocated memory when an app is missing from the memory table.
DEFAULT_MEMORY_MB = 170.0   # the dataset's reported median


@dataclass
class AzureFunctionRow:
    """One function joined across the three dataset tables."""

    func_id: str
    app_id: str
    trigger: str
    per_minute: np.ndarray          # length-1440 invocation counts
    avg_duration_ms: float
    p50_duration_ms: float
    p75_duration_ms: float
    memory_mb: float

    @property
    def total_invocations(self) -> int:
        return int(self.per_minute.sum())


def _read_csv(path: PathLike) -> List[Dict[str, str]]:
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))


def load_dataset(invocations_csv: PathLike,
                 durations_csv: PathLike,
                 memory_csv: PathLike) -> List[AzureFunctionRow]:
    """Join one day of the Azure dataset into per-function rows.

    Functions missing duration rows are dropped (they cannot be
    simulated); functions whose app lacks a memory row get
    :data:`DEFAULT_MEMORY_MB`.
    """
    durations: Dict[str, Dict[str, str]] = {
        row["HashFunction"]: row for row in _read_csv(durations_csv)}
    memory: Dict[str, float] = {}
    for row in _read_csv(memory_csv):
        try:
            memory[row["HashApp"]] = float(row["AverageAllocatedMb"])
        except (KeyError, ValueError):
            continue

    out: List[AzureFunctionRow] = []
    for row in _read_csv(invocations_csv):
        func_id = row["HashFunction"]
        duration = durations.get(func_id)
        if duration is None:
            continue
        counts = np.array([int(row.get(str(m), 0) or 0)
                           for m in range(1, 1441)])
        if counts.sum() == 0:
            continue
        try:
            avg = float(duration["Average"])
            p50 = float(duration.get("percentile_Average_50", avg) or avg)
            p75 = float(duration.get("percentile_Average_75", avg) or avg)
        except (ValueError, TypeError):
            continue
        out.append(AzureFunctionRow(
            func_id=func_id,
            app_id=row.get("HashApp", ""),
            trigger=row.get("Trigger", "unknown"),
            per_minute=counts,
            avg_duration_ms=max(avg, 1.0),
            p50_duration_ms=max(p50, 1.0),
            p75_duration_ms=max(p75, 1.0),
            memory_mb=memory.get(row.get("HashApp", ""),
                                 DEFAULT_MEMORY_MB),
        ))
    return out


def _lognormal_params(p50: float, p75: float) -> tuple:
    """Lognormal (mu, sigma) from the 50th/75th duration percentiles.

    ``sigma = (ln p75 - ln p50) / z_75`` with ``z_75 ≈ 0.6745``; degenerate
    inputs fall back to a mild 25% CV.
    """
    mu = math.log(p50)
    if p75 > p50 > 0:
        sigma = (math.log(p75) - math.log(p50)) / 0.6745
    else:
        sigma = 0.25
    return mu, min(max(sigma, 0.05), 2.5)


def build_trace(rows: Sequence[AzureFunctionRow],
                seed: int = 0,
                name: str = "azure-dataset",
                start_minute: int = 0,
                duration_minutes: int = 30,
                max_functions: Optional[int] = None,
                min_invocations: int = 1,
                cold_ms_per_mb: float = 2.0,
                burst_spread_ms: float = MINUTE_MS) -> Trace:
    """Convert joined dataset rows into a replayable :class:`Trace`.

    Parameters
    ----------
    start_minute / duration_minutes:
        Day window to replay (the paper samples 30-minute windows).
    max_functions:
        Keep only the busiest N functions in the window (the paper's
        sampling step). ``None`` keeps all.
    min_invocations:
        Drop functions with fewer in-window invocations.
    cold_ms_per_mb:
        Cold-start estimate per MB of allocated memory (Fig. 2).
    burst_spread_ms:
        Each minute's invocations spread uniformly over this much of the
        minute (the dataset is minute-granular; the paper models sub-
        minute concurrency explicitly — smaller values mean burstier
        sub-minute arrivals).
    """
    if not 0 <= start_minute < 1440:
        raise ValueError("start_minute must be in [0, 1440)")
    if duration_minutes < 1:
        raise ValueError("duration_minutes must be >= 1")
    if not 0 < burst_spread_ms <= MINUTE_MS:
        raise ValueError("burst_spread_ms must be in (0, 60000]")
    end_minute = min(start_minute + duration_minutes, 1440)

    window = []
    for row in rows:
        in_window = row.per_minute[start_minute:end_minute]
        if in_window.sum() >= min_invocations:
            window.append((row, in_window))
    window.sort(key=lambda pair: -int(pair[1].sum()))
    if max_functions is not None:
        window = window[:max_functions]
    if not window:
        raise ValueError("no functions with invocations in the window")

    rng = np.random.default_rng(seed)
    functions: List[FunctionSpec] = []
    requests: List[Request] = []
    for row, counts in window:
        spec = FunctionSpec(
            name=f"az-{row.func_id[:12]}",
            memory_mb=row.memory_mb,
            cold_start_ms=max(row.memory_mb * cold_ms_per_mb, 1.0),
            app=row.app_id[:12],
        )
        functions.append(spec)
        mu, sigma = _lognormal_params(row.p50_duration_ms,
                                      row.p75_duration_ms)
        for minute_idx, count in enumerate(counts):
            if count == 0:
                continue
            base = (minute_idx) * MINUTE_MS
            offsets = rng.uniform(0.0, burst_spread_ms, size=int(count))
            execs = rng.lognormal(mu, sigma, size=int(count))
            for offset, exec_ms in zip(offsets, execs):
                requests.append(Request(spec.name, base + float(offset),
                                        float(max(exec_ms, 1.0))))
    return Trace(name, functions, requests)


def azure_dataset_trace(invocations_csv: PathLike,
                        durations_csv: PathLike,
                        memory_csv: PathLike,
                        **build_kwargs) -> Trace:
    """One-shot: load the three CSVs and build a trace."""
    rows = load_dataset(invocations_csv, durations_csv, memory_csv)
    return build_trace(rows, **build_kwargs)
