"""Synthetic workload generation primitives.

The paper evaluates on production traces from Azure Functions and Alibaba
Cloud FC that are not redistributable (the Azure 2019 dataset is public but
not shipped here; the FC trace is internal). This module provides the
statistical machinery to synthesize workloads that match the papers'
published *distributional shape*, which is what the policy comparison
depends on:

* heavy-tailed function popularity (a few hot functions dominate);
* batch ("burst") arrivals producing the concurrency CDF of Fig. 3;
* lognormal execution times with the high per-function variance of §2.6;
* memory footprints drawn from the discrete sizes cloud FaaS offers;
* cold-start costs proportional to memory (Fig. 2's 1-3 ms/MB estimate)
  or drawn from an FC-like latency distribution.

Everything draws from a caller-supplied ``numpy`` generator so that traces
are fully reproducible from a seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.function import FunctionSpec
from repro.sim.request import Request
from repro.traces.schema import Trace

#: Common FaaS memory tiers (MB) and Azure-like selection weights.
MEMORY_TIERS_MB: Tuple[float, ...] = (128, 192, 256, 384, 512, 1024, 1536)
MEMORY_TIER_WEIGHTS: Tuple[float, ...] = (0.30, 0.15, 0.22, 0.10, 0.13,
                                          0.07, 0.03)


@dataclass
class FunctionPopulation:
    """Distributional knobs for a synthetic function population.

    Parameters
    ----------
    popularity_alpha:
        Zipf-like exponent for per-function request share: share of
        function ``i`` (1-indexed by rank) is proportional to
        ``rank ** -popularity_alpha``. Azure's workload is famously skewed
        (alpha around 1).
    exec_median_ms_log_mu / exec_median_ms_log_sigma:
        Lognormal hyper-prior for each function's *median* execution time.
    exec_cv:
        Per-request coefficient of variation around the function's median —
        §2.6 reports most functions vary by ~25%.
    cold_ms_per_mb:
        Cold-start cost per MB of memory (Fig. 2 estimates 1-3 ms/MB).
    cold_noise_cv:
        Lognormal noise on the per-function cold-start cost.
    """

    popularity_alpha: float = 1.0
    exec_median_ms_log_mu: float = math.log(250.0)
    exec_median_ms_log_sigma: float = 1.0
    exec_cv: float = 0.25
    cold_ms_per_mb: float = 1.0
    cold_noise_cv: float = 0.3
    memory_tiers_mb: Sequence[float] = MEMORY_TIERS_MB
    memory_weights: Sequence[float] = MEMORY_TIER_WEIGHTS
    runtimes: Sequence[str] = ("python3.8", "nodejs14", "dotnet6", "java11")
    runtime_weights: Sequence[float] = (0.45, 0.30, 0.15, 0.10)


@dataclass
class ArrivalModel:
    """Burst-arrival knobs shaping the concurrency distribution (Fig. 3).

    Requests arrive in *bursts*: burst epochs follow a Poisson process per
    function and each burst carries a geometric/heavy-tailed number of
    near-simultaneous requests, jittered over ``burst_spread_ms``. A burst
    of size 40 within a second is exactly the "concurrency-driven scaling"
    the paper studies.

    Parameters
    ----------
    burst_size_p:
        Geometric parameter for the common case (mean burst 1/p).
    heavy_tail_prob / heavy_tail_pareto_alpha / heavy_tail_scale:
        With small probability a burst instead draws from a Pareto tail,
        producing the 99th-percentile concurrency spikes of Fig. 3.
    burst_spread_ms:
        Requests of one burst spread uniformly over this window.
    """

    burst_size_p: float = 0.6
    heavy_tail_prob: float = 0.02
    heavy_tail_pareto_alpha: float = 1.3
    heavy_tail_scale: float = 8.0
    max_burst: int = 2_000
    burst_spread_ms: float = 250.0
    #: Temporal clustering: bursts of one function arrive inside ON
    #: windows rather than uniformly over the trace (FaaS demand is
    #: episodic — a function is hot for a while, then quiet). Set
    #: ``bursts_per_window`` to 0 to disable clustering.
    bursts_per_window: float = 20.0
    on_window_ms: float = 120_000.0
    #: Fraction of a function's requests arriving as a *steady* stream of
    #: singletons inside its ON windows (timer/HTTP trickle traffic)
    #: rather than as concurrent bursts. A steady component keeps
    #: completions flowing between bursts, which is what makes the §2.5
    #: opportunity space insensitive to execution-time scaling (Fig. 10).
    steady_fraction: float = 0.35


def zipf_shares(n: int, alpha: float) -> np.ndarray:
    """Normalized Zipf popularity shares for ``n`` ranks."""
    if n < 1:
        raise ValueError("n must be >= 1")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def draw_burst_sizes(rng: np.random.Generator, count: int,
                     model: ArrivalModel) -> np.ndarray:
    """Draw ``count`` burst sizes from the mixed geometric/Pareto model."""
    if count == 0:
        return np.zeros(0, dtype=int)
    sizes = rng.geometric(model.burst_size_p, size=count)
    heavy = rng.random(count) < model.heavy_tail_prob
    n_heavy = int(heavy.sum())
    if n_heavy:
        tail = (model.heavy_tail_scale
                * (1.0 + rng.pareto(model.heavy_tail_pareto_alpha,
                                    size=n_heavy)))
        sizes[heavy] = np.ceil(tail).astype(int)
    return np.clip(sizes, 1, model.max_burst)


def synth_functions(rng: np.random.Generator, n: int,
                    population: FunctionPopulation,
                    prefix: str = "fn") -> List[FunctionSpec]:
    """Draw ``n`` function specs from the population hyper-priors."""
    memory = rng.choice(population.memory_tiers_mb, size=n,
                        p=np.asarray(population.memory_weights)
                        / np.sum(population.memory_weights))
    runtimes = rng.choice(population.runtimes, size=n,
                          p=np.asarray(population.runtime_weights)
                          / np.sum(population.runtime_weights))
    cold_noise = rng.lognormal(mean=0.0, sigma=population.cold_noise_cv,
                               size=n)
    specs = []
    for i in range(n):
        cold = float(memory[i]) * population.cold_ms_per_mb * cold_noise[i]
        specs.append(FunctionSpec(
            name=f"{prefix}-{i:04d}",
            memory_mb=float(memory[i]),
            cold_start_ms=max(cold, 1.0),
            runtime=str(runtimes[i]),
        ))
    return specs


def synth_trace(name: str,
                rng: np.random.Generator,
                n_functions: int,
                duration_ms: float,
                total_requests: int,
                population: Optional[FunctionPopulation] = None,
                arrivals: Optional[ArrivalModel] = None) -> Trace:
    """Generate a complete synthetic trace.

    ``total_requests`` is a target — the realized count differs slightly
    because requests arrive in integer-sized bursts.
    """
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    if total_requests < 1:
        raise ValueError("total_requests must be >= 1")
    population = population or FunctionPopulation()
    arrivals = arrivals or ArrivalModel()
    specs = synth_functions(rng, n_functions, population)

    shares = zipf_shares(n_functions, population.popularity_alpha)
    # Shuffle so rank is independent of memory/cold-cost draws.
    rng.shuffle(shares)

    # Per-function median execution time (volatile per request, §2.6).
    exec_medians = rng.lognormal(population.exec_median_ms_log_mu,
                                 population.exec_median_ms_log_sigma,
                                 size=n_functions)

    mean_burst = _mean_burst_size(arrivals)
    requests: List[Request] = []
    exec_sigma = _cv_to_sigma(population.exec_cv)
    for i, spec in enumerate(specs):
        fn_requests = shares[i] * total_requests
        steady_requests = fn_requests * arrivals.steady_fraction
        burst_requests = fn_requests - steady_requests
        n_bursts = max(int(round(burst_requests / mean_burst)), 0)
        if n_bursts == 0 and rng.random() < burst_requests / mean_burst:
            n_bursts = 1
        n_steady = int(round(steady_requests))
        if n_bursts == 0 and n_steady == 0:
            continue
        # Bursts and the steady trickle share the function's ON windows.
        centers = _window_centers(rng, n_bursts + n_steady, duration_ms,
                                  arrivals)
        epochs = _epochs_in_windows(rng, centers, n_bursts, duration_ms,
                                    arrivals)
        sizes = draw_burst_sizes(rng, n_bursts, arrivals)
        if n_steady:
            epochs = np.concatenate([
                epochs,
                _epochs_in_windows(rng, centers, n_steady, duration_ms,
                                   arrivals)])
            sizes = np.concatenate([sizes,
                                    np.ones(n_steady, dtype=int)])
        for epoch, size in zip(epochs, sizes):
            jitter = rng.uniform(0.0, arrivals.burst_spread_ms, size=size)
            execs = exec_medians[i] * rng.lognormal(0.0, exec_sigma,
                                                    size=size)
            for j in range(size):
                requests.append(Request(spec.name,
                                        float(epoch + jitter[j]),
                                        float(max(execs[j], 1.0))))
    if not requests:
        raise RuntimeError("generated an empty trace; raise total_requests")
    return Trace(name, specs, requests)


def _window_centers(rng: np.random.Generator, n_epochs: int,
                    duration_ms: float,
                    model: ArrivalModel) -> np.ndarray:
    """ON-window centers for a function with ``n_epochs`` burst/steady
    epochs. Episodic demand is what makes keep-alive (and CSS's
    wasted-cold-start hints) meaningful: a function's containers see
    sustained reuse while it is ON.
    """
    if model.bursts_per_window <= 0:
        return np.zeros(0)
    n_windows = max(int(math.ceil(n_epochs / model.bursts_per_window)), 1)
    return rng.uniform(0.0, duration_ms, size=n_windows)


def _epochs_in_windows(rng: np.random.Generator, centers: np.ndarray,
                       n: int, duration_ms: float,
                       model: ArrivalModel) -> np.ndarray:
    """Draw ``n`` epochs uniformly inside the given ON windows (or over
    the whole trace when clustering is disabled)."""
    if n == 0:
        return np.zeros(0)
    if centers.size == 0:
        return rng.uniform(0.0, duration_ms, size=n)
    which = rng.integers(0, centers.size, size=n)
    offsets = rng.uniform(-model.on_window_ms / 2.0,
                          model.on_window_ms / 2.0, size=n)
    return np.clip(centers[which] + offsets, 0.0, duration_ms)


def _mean_burst_size(model: ArrivalModel) -> float:
    geometric_mean = 1.0 / model.burst_size_p
    if model.heavy_tail_pareto_alpha > 1.0:
        tail_mean = (model.heavy_tail_scale
                     * model.heavy_tail_pareto_alpha
                     / (model.heavy_tail_pareto_alpha - 1.0))
    else:  # undefined mean; use a pragmatic proxy
        tail_mean = model.heavy_tail_scale * 10.0
    return ((1.0 - model.heavy_tail_prob) * geometric_mean
            + model.heavy_tail_prob * tail_mean)


def _cv_to_sigma(cv: float) -> float:
    """Lognormal sigma achieving coefficient of variation ``cv``."""
    return math.sqrt(math.log(1.0 + cv * cv))
