"""Packed traces: a :class:`Trace` compiled into flat parallel arrays.

Replaying a 100k-request trace through per-request :class:`Request`
objects built up front costs two things before the simulation even
starts: ~100k object allocations and ~100k heap pushes to schedule every
arrival as its own engine event. A :class:`PackedTrace` compiles the
request list once into four parallel ``array`` columns —

* ``arrival_ms`` (``'d'``) — non-decreasing arrival timestamps,
* ``exec_ms``    (``'d'``) — execution times,
* ``func_idx``   (``'H'``/``'I'``) — index into the interned function
  table (one entry per distinct :class:`FunctionSpec`, in the trace's
  declared function order),
* ``memory_mb``  (``'d'``) — per-request footprint, denormalised from
  the function table so shard slicing (a planned follow-up) never needs
  the table to size a partition.

The orchestrator replays the columns through the engine's arrival
*stream* (:meth:`repro.sim.engine.Simulator.bind_stream`): request
records are materialized lazily — one slotted :class:`Request` per
arrival, at dispatch time — instead of as an up-front object graph, and
same-timestamp bursts dispatch as one batch.

Digest stability: :func:`packed_digest` hashes exactly the bytes that
:func:`repro.experiments.parallel.trace_digest` hashes, so compiling a
trace never changes its content digest and the on-disk sweep cache keys
stay valid across the packed/classic boundary (pinned by
``tests/traces/test_packed.py``).
"""

from __future__ import annotations

import hashlib
from array import array
from typing import List, Optional, Sequence

from repro.sim.function import FunctionSpec
from repro.sim.request import Request


class PackedTrace:
    """Flat-array form of one replayable workload.

    Build via :func:`pack_trace` (or the cached
    :meth:`repro.traces.schema.Trace.packed`). Instances are immutable
    value objects in spirit: the arrays are never mutated after
    construction, and simulations materialize fresh request records per
    run, so one packed trace can back any number of replays.
    """

    #: Duck-type marker the orchestrator dispatches on (avoids a
    #: sim -> traces import cycle).
    is_packed = True

    __slots__ = ("name", "functions", "func_names", "arrival_ms",
                 "exec_ms", "func_idx", "memory_mb", "_digest")

    def __init__(self, name: str, functions: Sequence[FunctionSpec],
                 arrival_ms: array, exec_ms: array, func_idx: array,
                 memory_mb: array, digest: Optional[str] = None):
        n = len(arrival_ms)
        if not (len(exec_ms) == len(func_idx) == len(memory_mb) == n):
            raise ValueError("packed columns must have equal length")
        self.name = name
        self.functions: List[FunctionSpec] = list(functions)
        #: Interned name table: ``func_names[func_idx[i]]`` is request
        #: ``i``'s function. One shared str per function, not per request.
        self.func_names: List[str] = [f.name for f in self.functions]
        self.arrival_ms = arrival_ms
        self.exec_ms = exec_ms
        self.func_idx = func_idx
        self.memory_mb = memory_mb
        self._digest = digest

    # ------------------------------------------------------------------

    @property
    def num_functions(self) -> int:
        return len(self.functions)

    @property
    def num_requests(self) -> int:
        return len(self.arrival_ms)

    @property
    def duration_ms(self) -> float:
        if not len(self.arrival_ms):
            return 0.0
        return self.arrival_ms[-1] - self.arrival_ms[0]

    def digest(self) -> str:
        """Content hash, identical to the source trace's digest."""
        if self._digest is None:
            self._digest = packed_digest(self)
        return self._digest

    # ------------------------------------------------------------------
    # Lazy request materialization

    def materialize(self, i: int) -> Request:
        """Build the slotted request record for arrival ``i``.

        Called by the orchestrator at dispatch time; ``req_id`` is the
        packed row index (identical to the classic path, where
        :class:`~repro.traces.schema.Trace` assigns ids in arrival
        order).
        """
        return Request(self.func_names[self.func_idx[i]],
                       self.arrival_ms[i], self.exec_ms[i], req_id=i)

    def materialize_all(self) -> List[Request]:
        """Fresh request records for one classic (non-stream) replay."""
        names = self.func_names
        idx = self.func_idx
        arrivals = self.arrival_ms
        execs = self.exec_ms
        return [Request(names[idx[i]], arrivals[i], execs[i], req_id=i)
                for i in range(len(arrivals))]

    def slice(self, start: int, stop: int,
              name: str = "") -> "PackedTrace":
        """A contiguous row range as its own packed trace (shard seam).

        The slice keeps the full function table (so ``func_idx`` stays
        valid) and original arrival times; ``req_id``s restart at 0,
        matching what :class:`~repro.traces.schema.Trace` would assign.
        """
        return PackedTrace(name or f"{self.name}[{start}:{stop}]",
                           self.functions,
                           self.arrival_ms[start:stop],
                           self.exec_ms[start:stop],
                           self.func_idx[start:stop],
                           self.memory_mb[start:stop])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<PackedTrace {self.name!r}: {self.num_functions} "
                f"functions, {self.num_requests} requests>")


def pack_trace(trace) -> PackedTrace:
    """Compile a :class:`~repro.traces.schema.Trace` into flat columns.

    The trace's request list is already sorted by arrival with
    ``req_id == index`` (enforced by ``Trace.__post_init__``), so row
    ``i`` of every column corresponds to request id ``i``.
    """
    functions = list(trace.functions)
    index = {f.name: i for i, f in enumerate(functions)}
    typecode = "H" if len(functions) <= 0xFFFF else "I"
    requests = trace.requests
    arrival = array("d", (r.arrival_ms for r in requests))
    execs = array("d", (r.exec_ms for r in requests))
    fidx = array(typecode, (index[r.func] for r in requests))
    mem_of = [f.memory_mb for f in functions]
    memory = array("d", (mem_of[j] for j in fidx))
    for i in range(1, len(arrival)):
        if arrival[i] < arrival[i - 1]:
            raise ValueError("arrivals must be non-decreasing")
    digest = getattr(trace, "_content_digest", None)
    return PackedTrace(trace.name, functions, arrival, execs, fidx,
                       memory, digest=digest)


def packed_digest(packed: PackedTrace) -> str:
    """Content hash over the packed columns.

    Byte-for-byte the same hash stream as
    :func:`repro.experiments.parallel.trace_digest` feeds from the
    object form: sorted function specs, then ``(func, arrival, exec)``
    per request in row order. ``array('d')`` stores IEEE-754 doubles —
    i.e. exactly the ``float`` objects the classic path hashes — so the
    ``repr`` round trip is lossless.
    """
    h = hashlib.sha256()
    for f in sorted(packed.functions, key=lambda f: f.name):
        h.update(repr((f.name, f.memory_mb, f.cold_start_ms, f.runtime,
                       getattr(f, "app", ""))).encode())
    names = packed.func_names
    idx = packed.func_idx
    arrivals = packed.arrival_ms
    execs = packed.exec_ms
    for i in range(len(arrivals)):
        h.update(repr((names[idx[i]], arrivals[i], execs[i])).encode())
    return h.hexdigest()
