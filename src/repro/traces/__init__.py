"""Workload substrate: trace schema, synthetic generators, transforms."""

from repro.traces.alibaba import (fc_arrivals, fc_population,
                                  fc_production_arrivals,
                                  fc_production_trace, fc_trace)
from repro.traces.azure import (azure_arrivals, azure_population,
                                azure_trace)
from repro.traces.azure_dataset import (AzureFunctionRow,
                                        azure_dataset_trace, build_trace,
                                        load_dataset)
from repro.traces.io import load_trace, save_trace
from repro.traces.packed import PackedTrace, pack_trace, packed_digest
from repro.traces.schema import Trace
from repro.traces.stats import (WorkloadStats, cold_to_exec_ratios,
                                concurrency_per_minute, execution_time_cv,
                                fraction_cold_dominated, workload_stats)
from repro.traces.synth import (ArrivalModel, FunctionPopulation,
                                draw_burst_sizes, synth_functions,
                                synth_trace, zipf_shares)
from repro.traces.transforms import (map_requests, scale_cold_start,
                                     scale_exec_time, scale_iat)
from repro.traces.workflows import (WorkflowSpec, WorkflowStage,
                                    generate_job, mapreduce,
                                    video_pipeline, workflow_trace)

__all__ = [
    "ArrivalModel", "AzureFunctionRow", "FunctionPopulation",
    "PackedTrace", "Trace", "pack_trace", "packed_digest",
    "WorkflowSpec", "WorkflowStage", "WorkloadStats",
    "azure_dataset_trace",
    "azure_arrivals", "azure_population", "azure_trace", "build_trace",
    "cold_to_exec_ratios", "concurrency_per_minute", "draw_burst_sizes",
    "execution_time_cv", "fc_arrivals", "fc_population",
    "fc_production_arrivals", "fc_production_trace", "fc_trace",
    "fraction_cold_dominated", "load_dataset", "load_trace",
    "map_requests", "save_trace",
    "generate_job", "mapreduce", "scale_cold_start", "scale_exec_time",
    "scale_iat", "synth_functions", "synth_trace", "video_pipeline",
    "workflow_trace", "workload_stats", "zipf_shares",
]
