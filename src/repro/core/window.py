"""Sliding-window statistics for CSS's hint-based classifier.

CSS (Algorithm 1) keeps four per-function statistics — T_i, T_e, T_d, T_p —
"collected using a 15-minute sliding window, whose size is configurable"
(§3.2). :class:`SlidingWindow` stores timestamped samples, prunes anything
older than the horizon on access, and exposes the estimators the paper's
sensitivity study sweeps (median by default; mean/p25/p75 in Fig. 17;
window sizes of 5/10/15 minutes or unbounded in Fig. 18).
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque
from typing import Deque, Optional, Tuple

MINUTES_MS = 60_000.0


class SlidingWindow:
    """Timestamped samples with a fixed time horizon.

    Parameters
    ----------
    horizon_ms:
        Samples older than ``now - horizon_ms`` are dropped. ``None`` keeps
        all history (the "all" configuration of Fig. 18).
    max_samples:
        Hard cap on retained samples to bound memory for very hot
        functions; the oldest samples are dropped first.
    """

    def __init__(self, horizon_ms: Optional[float] = 15 * MINUTES_MS,
                 max_samples: int = 4096):
        if horizon_ms is not None and horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive or None")
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.horizon_ms = horizon_ms
        self.max_samples = max_samples
        self._samples: Deque[Tuple[float, float]] = deque()
        # The in-window values are mirrored in an incrementally maintained
        # sorted list (bisect insert on add, bisect delete on drop), so the
        # per-arrival percentile calls of the CSS classifier cost a binary
        # search instead of an O(n log n) sort. A sorted list is a pure
        # function of the sample *multiset*, so its contents — and every
        # percentile read off it — are bit-identical to sorting from
        # scratch. The mean keeps a generation-cached sum recomputed in
        # deque order (a running +=/-= sum would drift by ULPs from a
        # fresh recomputation).
        self._sorted_values: list = []
        self._gen = 0
        self._agg_gen = -1
        self._agg_sum = 0.0

    def add(self, now: float, value: float) -> None:
        """Record ``value`` observed at time ``now``."""
        if len(self._samples) >= self.max_samples:  # oldest-first cap
            self._drop_oldest()
        self._samples.append((now, value))
        insort(self._sorted_values, value)
        self._gen += 1

    def _drop_oldest(self) -> None:
        _, value = self._samples.popleft()
        index = bisect_left(self._sorted_values, value)
        del self._sorted_values[index]

    def _prune(self, now: float) -> None:
        if self.horizon_ms is None:
            return
        cutoff = now - self.horizon_ms
        samples = self._samples
        dropped = False
        while samples and samples[0][0] < cutoff:
            self._drop_oldest()
            dropped = True
        if dropped:
            self._gen += 1

    def __len__(self) -> int:
        return len(self._samples)

    def is_empty(self, now: float) -> bool:
        self._prune(now)
        return not self._samples

    def values(self, now: float) -> list:
        self._prune(now)
        return [v for _, v in self._samples]

    def last(self, now: float) -> Optional[float]:
        """Most recent in-window sample, or ``None``."""
        self._prune(now)
        if not self._samples:
            return None
        return self._samples[-1][1]

    def mean(self, now: float) -> Optional[float]:
        self._prune(now)
        if not self._samples:
            return None
        if self._agg_gen != self._gen:
            # Summed in deque order, exactly as an uncached recomputation.
            self._agg_sum = sum(v for _, v in self._samples)
            self._agg_gen = self._gen
        return self._agg_sum / len(self._samples)

    def _sorted(self, now: float) -> list:
        self._prune(now)
        return self._sorted_values

    def percentile(self, now: float, q: float) -> Optional[float]:
        """``q``-th percentile (0-100), linear interpolation."""
        if not 0 <= q <= 100:
            raise ValueError("q must be within [0, 100]")
        values = self._sorted(now)
        if not values:
            return None
        if len(values) == 1:
            return values[0]
        rank = (q / 100.0) * (len(values) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high or values[low] == values[high]:
            return values[low]
        frac = rank - low
        return values[low] + (values[high] - values[low]) * frac

    def median(self, now: float) -> Optional[float]:
        return self.percentile(now, 50.0)

    def estimate(self, now: float, estimator: str = "median"
                 ) -> Optional[float]:
        """Dispatch on the Fig. 17 estimator names.

        ``estimator`` is one of ``"median"``/``"p50"``, ``"mean"``,
        ``"p25"``, ``"p75"`` (any ``"pNN"`` works).
        """
        if estimator == "mean":
            return self.mean(now)
        if estimator == "median":
            return self.median(now)
        if estimator.startswith("p"):
            return self.percentile(now, float(estimator[1:]))
        raise ValueError(f"unknown estimator {estimator!r}")
