"""CIDRE — the paper's concurrency-informed orchestration policy."""

from repro.core.cidre import (BSSOnlyPolicy, CIDREBSSPolicy, CIDREPolicy,
                              CIPOnlyPolicy, CSSOnlyPolicy)
from repro.core.priority import CIPEvictionMixin
from repro.core.scaling import BSSScalingMixin, CSSScalingMixin
from repro.core.window import SlidingWindow

__all__ = [
    "BSSOnlyPolicy", "BSSScalingMixin", "CIDREBSSPolicy", "CIDREPolicy",
    "CIPEvictionMixin", "CIPOnlyPolicy", "CSSOnlyPolicy", "CSSScalingMixin",
    "SlidingWindow",
]
