"""Speculative scaling — BSS and CSS (the paper's §3.2 / Algorithm 1).

**Basic speculative scaling (BSS)** races the two ways of obtaining an
execution slot: the request joins the delayed-warm-start queue *and* a new
container starts provisioning; whichever frees up first serves the request.
BSS therefore guarantees an invocation overhead no worse than a cold start,
without predicting volatile execution times.

**Conditional speculative scaling (CSS)** adds a per-function cost/benefit
gate that can disable the cold-start path when recent history suggests the
speculative container would be wasted, and re-enable it when delayed warm
starts start costing more than a cold start. The gate compares four
sliding-window statistics (15-minute horizon by default):

* ``T_i`` — idle time of the last cold-started container before its first
  reuse (a large ``T_i`` means the last speculative cold start was
  unnecessary);
* ``T_e`` — the function's estimated execution time (median by default;
  the Fig. 17 sensitivity study sweeps mean/p25/p50/p75);
* ``T_d`` — the most recent delayed-warm-start waiting time;
* ``T_p`` — the estimated (median) cold-start latency.

Algorithm 1::

    if BSS enabled:
        if T_i > T_e:  disable BSS; delayed warm start only
        else:          speculate (race both paths)
    else:
        if T_d > T_p:  re-enable BSS; speculate
        else:          delayed warm start only
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.window import MINUTES_MS, SlidingWindow
from repro.policies.base import (OrchestrationPolicy, ScalingDecision)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.request import Request
    from repro.sim.worker import Worker


class BSSScalingMixin(OrchestrationPolicy):
    """Basic speculative scaling: always race cold start vs delayed reuse."""

    def scale(self, request: "Request", worker: "Worker",
              now: float) -> ScalingDecision:
        return ScalingDecision.speculate()


@dataclass
class _LastCreated:
    """Tracks the most recent cold-started container of one function, to
    measure its pre-reuse idling time ``T_i``."""

    container_id: int
    ready_ms: float
    reused: bool = False


class CSSScalingMixin(OrchestrationPolicy):
    """Conditional speculative scaling (Algorithm 1).

    Parameters
    ----------
    window_ms:
        Sliding-window horizon for the historical statistics; ``None``
        keeps all history (Fig. 18 sweeps 5/10/15 minutes and "all").
    exec_estimator:
        Estimator for ``T_e`` — ``"median"`` (default), ``"mean"``,
        ``"p25"``, ``"p75"`` (Fig. 17).
    """

    def __init__(self, *args,
                 window_ms: Optional[float] = 15 * MINUTES_MS,
                 exec_estimator: str = "median",
                 live_delay_signal: bool = True,
                 cover_backlog: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.window_ms = window_ms
        self.exec_estimator = exec_estimator
        #: Fold the live age of the oldest queued request (and the queue
        #: geometry projection) into ``T_d``. Disabling reverts to the
        #: literal last-recorded-sample reading of Algorithm 1 (ablation).
        self.live_delay_signal = live_delay_signal
        #: Provision for the whole queued backlog when the cold path
        #: re-opens, mirroring §4's per-queued-request channel evaluation.
        self.cover_backlog = cover_backlog
        self._bss_enabled: Dict[str, bool] = {}
        self._exec_window: Dict[str, SlidingWindow] = {}
        self._cold_window: Dict[str, SlidingWindow] = {}
        self._delay_window: Dict[str, SlidingWindow] = {}
        self._idle_window: Dict[str, SlidingWindow] = {}
        self._last_created: Dict[str, _LastCreated] = {}

    # ------------------------------------------------------------------
    # Window helpers

    def _window(self, table: Dict[str, SlidingWindow],
                func: str) -> SlidingWindow:
        window = table.get(func)
        if window is None:
            window = table[func] = SlidingWindow(self.window_ms)
        return window

    def estimated_exec_ms(self, func: str, now: float) -> Optional[float]:
        """``T_e``: the function's estimated execution time."""
        return self._window(self._exec_window, func).estimate(
            now, self.exec_estimator)

    def estimated_cold_ms(self, func: str, now: float) -> Optional[float]:
        """``T_p``: median historical cold-start latency."""
        return self._window(self._cold_window, func).median(now)

    def last_delay_ms(self, func: str, now: float) -> Optional[float]:
        """``T_d``: the delayed-warm-start cost signal.

        The paper defines ``T_d`` as "the duration that CIDRE waits to find
        an idle container since the last request arrives". We take the max
        of the most recent *completed* delayed-warm-start wait and the
        *live* age of the oldest still-queued request — without the live
        term a long queue would keep the cold-start path disabled until the
        backlog drains, exactly the thrashing Algorithm 1 line 11 exists to
        stop.
        """
        recorded = self._window(self._delay_window, func).last(now)
        live = None
        if self.ctx is not None and self.live_delay_signal:
            age = self.ctx.oldest_waiter_age_ms(func)
            if age > 0:
                live = age
        if recorded is None:
            return live
        if live is None:
            return recorded
        return max(recorded, live)

    def last_idle_ms(self, func: str, now: float) -> Optional[float]:
        """``T_i``: pre-reuse idling of the last cold-started container.

        If that container is still idle and unused, its idling is *ongoing*
        and measured up to ``now``; once reused (or evicted unused) the
        recorded sample from the idle window is used.
        """
        last = self._last_created.get(func)
        if last is not None and not last.reused:
            return now - last.ready_ms
        return self._window(self._idle_window, func).last(now)

    def bss_enabled(self, func: str) -> bool:
        return self._bss_enabled.get(func, True)

    # ------------------------------------------------------------------
    # Algorithm 1

    def scale(self, request: "Request", worker: "Worker",
              now: float) -> ScalingDecision:
        func = request.func
        t_e = self.estimated_exec_ms(func, now)
        t_p = self.estimated_cold_ms(func, now)
        t_i = self.last_idle_ms(func, now)
        t_d = self.last_delay_ms(func, now)
        observing = self.audit is not None or self.metrics is not None
        extra = {} if self.audit is not None else None

        if self.bss_enabled(func):
            if t_i is not None and t_e is not None and t_i > t_e:
                demand = self._demand_exceeds_pool(request, worker)
                if extra is not None:
                    extra["demand_exceeds_pool"] = demand
                if not demand:
                    # The last speculative cold start sat idle longer than
                    # one execution: it was wasteful. Disable the
                    # cold-start path.
                    self._set_bss(func, False, now, "T_i>T_e", "scale")
                    if observing:
                        self._note_scale(func, request, now, "disable",
                                         "queue", t_i, t_e, t_d, t_p, extra)
                    return ScalingDecision.queue()
            if observing:
                self._note_scale(func, request, now, "speculate",
                                 "speculate", t_i, t_e, t_d, t_p, extra)
            return ScalingDecision.speculate()

        # The queued backlog foreshadows this request's delayed cost: with
        # W waiters ahead over B busy containers, it must wait roughly
        # ceil((W+1)/B) executions. Fold that into T_d so the cold path
        # reopens as soon as the queue outgrows the pool, instead of only
        # after some request has already suffered a full T_p of waiting.
        if t_e is not None and self.live_delay_signal \
                and self.ctx is not None:
            waiting = self.ctx.outstanding_waiters(func)
            busy = max(worker.busy_count(func), 1)
            projected = math.ceil((waiting + 1) / busy) * t_e
            if extra is not None:
                extra["projection"] = {"waiting": waiting, "busy": busy,
                                       "projected_ms": projected}
            t_d = projected if t_d is None else max(t_d, projected)
        if t_d is not None and t_p is not None and t_d > t_p:
            # Delayed warm starts now cost more than a cold start: the
            # function needs more containers. Fall back to BSS and cover
            # the backlog that accumulated while the cold path was off.
            self._set_bss(func, True, now, "T_d>T_p", "scale")
            if observing:
                # Audit the decision before covering the backlog so the
                # eviction records it may trigger follow their cause.
                self._note_scale(func, request, now, "reopen", "speculate",
                                 t_i, t_e, t_d, t_p, extra)
            self._cover_backlog(func)
            return ScalingDecision.speculate()
        if observing:
            self._note_scale(func, request, now, "stay_queued", "queue",
                             t_i, t_e, t_d, t_p, extra)
        return ScalingDecision.queue()

    # ------------------------------------------------------------------
    # Gate transitions and decision audit

    def _set_bss(self, func: str, enabled: bool, now: float, reason: str,
                 trigger: str) -> None:
        """Flip the per-function gate, noting the transition."""
        self._bss_enabled[func] = enabled
        if self.metrics is not None:
            self.metrics.counter(
                "repro_bss_gate_flips_total",
                "CSS gate transitions (Algorithm 1 lines 5 and 11)",
                labelnames=("func", "to"),
            ).labels(func=func, to="on" if enabled else "off").inc()
        if self.audit is not None:
            self.audit.emit({"kind": "gate_flip", "t": now, "func": func,
                             "enabled": enabled, "reason": reason,
                             "trigger": trigger})

    def _note_scale(self, func: str, request: "Request", now: float,
                    branch: str, decision: str, t_i, t_e, t_d, t_p,
                    extra) -> None:
        """One ``css_scale`` record / branch counter per scale() call."""
        if self.metrics is not None:
            self.metrics.counter(
                "repro_css_scale_total",
                "CSS scale() calls by Algorithm 1 branch",
                labelnames=("branch",),
            ).labels(branch=branch).inc()
        if self.audit is None:
            return
        record = {"kind": "css_scale", "t": now, "func": func,
                  "rid": request.req_id, "branch": branch,
                  "decision": decision,
                  "bss_enabled": self.bss_enabled(func)}
        for key, value in (("t_i", t_i), ("t_e", t_e),
                           ("t_d", t_d), ("t_p", t_p)):
            if value is not None:
                record[key] = value
        if extra:
            record.update(extra)
        self.audit.emit(record)

    def _cover_backlog(self, func: str) -> None:
        """Provision speculative containers for queued requests that no
        in-flight provision is going to serve."""
        if self.ctx is None or not self.cover_backlog:
            return
        backlog = self.ctx.outstanding_waiters(func)
        if backlog <= 0:
            return  # in-flight count is irrelevant; skip its worker sum
        in_flight = self.ctx.provisions_in_flight(func)
        for _ in range(backlog - in_flight):
            if not self.ctx.speculate_for(func):
                break

    def _demand_exceeds_pool(self, request: "Request",
                             worker: "Worker") -> bool:
        """Whether queued demand already saturates the busy warm pool.

        The wasted-cold-start hint (``T_i > T_e``) describes the *previous*
        lull; when the current queue is deeper than the number of busy
        containers, every one of those containers must finish at least one
        queued request before this one runs — the opposite of "sufficient
        warm containers", so the cold path must stay on.
        """
        if self.ctx is None:
            return False
        waiting = self.ctx.outstanding_waiters(request.func)
        busy = worker.busy_count(request.func)
        return waiting >= busy

    # ------------------------------------------------------------------
    # Queue re-evaluation (§4's channel-head evaluation)

    #: How often queued requests are re-evaluated against Algorithm 1.
    maintenance_interval_ms: float = 100.0

    def on_maintenance(self, now: float) -> None:
        """Re-run the CSS gate for functions with queued requests.

        The OpenLambda implementation evaluates the outstanding request at
        the head of each function's channel continuously, so a backlog
        that formed while the cold-start path was disabled gets containers
        as soon as ``T_d`` exceeds ``T_p`` — not merely one container per
        *new* arrival. Without this, disabling BSS would strand queued
        requests behind however many busy containers happen to exist.
        """
        super().on_maintenance(now)
        assert self.ctx is not None
        for func in self.ctx.waiting_functions():
            # The T_d/T_p statistics only gate the *disabled* branch, so
            # they are computed lazily: when the gate is already open the
            # window queries (and their pruning) are deferred to the next
            # consumer, which observes the same surviving sample multiset
            # either way — SlidingWindow caps and prunes oldest-first.
            if not self.bss_enabled(func):
                t_d = self.last_delay_ms(func, now)
                t_p = self.estimated_cold_ms(func, now)
                if t_d is None or t_p is None or t_d <= t_p:
                    continue
                self._set_bss(func, True, now, "T_d>T_p", "maintenance")
            # BSS (re-)enabled: cover the backlog with speculative
            # provisions, one per queued request not already matched by an
            # in-flight provision.
            self._cover_backlog(func)

    def maintenance_horizon(self, now: float) -> Optional[float]:
        """Queue re-evaluation is a provable no-op while nothing is queued:
        the maintenance loop iterates waiting functions only."""
        if self.ctx is None or self.ctx.waiting_functions():
            return None
        return math.inf

    # ------------------------------------------------------------------
    # Statistic collection hooks

    def on_request_complete(self, container: "Container",
                            request: "Request", now: float) -> None:
        super().on_request_complete(container, request, now)
        self._window(self._exec_window, request.func).add(
            now, request.exec_ms)

    def on_container_ready(self, container: "Container", now: float) -> None:
        super().on_container_ready(container, now)
        func = container.spec.name
        self._window(self._cold_window, func).add(
            now, now - container.created_ms)
        self._last_created[func] = _LastCreated(container.container_id, now)

    def on_delayed_start(self, container: "Container", request: "Request",
                         now: float) -> None:
        super().on_delayed_start(container, request, now)
        self._window(self._delay_window, request.func).add(
            now, now - request.arrival_ms)
        self._note_reuse(container, now)

    def on_warm_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        super().on_warm_start(container, request, now)
        self._note_reuse(container, now)

    def on_cold_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        super().on_cold_start(container, request, now)
        self._note_reuse(container, now)

    def on_eviction(self, victims, now: float) -> None:
        super().on_eviction(victims, now)
        for victim in victims:
            func = victim.spec.name
            last = self._last_created.get(func)
            if (last is not None and not last.reused
                    and last.container_id == victim.container_id):
                # Evicted without ever being reused: its whole lifetime was
                # wasted idling.
                ready = victim.ready_ms if victim.ready_ms is not None \
                    else victim.created_ms
                self._window(self._idle_window, func).add(now, now - ready)
                last.reused = True

    def _note_reuse(self, container: "Container", now: float) -> None:
        """Finalize ``T_i`` when the tracked container gets its first use."""
        func = container.spec.name
        last = self._last_created.get(func)
        if (last is None or last.reused
                or last.container_id != container.container_id):
            return
        last.reused = True
        ready = container.ready_ms if container.ready_ms is not None \
            else container.created_ms
        self._window(self._idle_window, func).add(now, now - ready)
