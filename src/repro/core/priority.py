"""Concurrency-informed priority (CIP) — the paper's Eq. 3/4.

CIP ranks warm containers by

    Priority(c) = Clock(c) + Freq(F(c)) * Cost(c) / (Size(c) * |F(c)|)

combining fine-grained container statistics (recency ``Clock``, provisioning
``Cost``, footprint ``Size``) with coarse-grained function-level concurrency
statistics:

* ``Freq(F(c)) = n_F / t`` (Eq. 4) — the function's average invocation rate
  per *minute over its whole lifetime*, which decays naturally when a
  function goes quiet (unlike GDSF's monotone reuse counts);
* ``|F(c)|`` — the function's current warm-container count, which makes
  functions hoarding many containers proportionally more evictable and
  yields the balanced evictions of Observation 2.

``Clock`` follows the paper's logical-clock discipline (§3.3): a container
created while the cache is not full starts at 0; a container created via
replacement inherits the largest priority among evicted containers (we keep
a global running maximum, which preserves the required monotonicity); and a
container serving a request — warm or delayed — sets its clock to its own
priority value before the other statistics are refreshed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.core.window import MINUTES_MS
from repro.policies.base import OrchestrationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.request import Request
    from repro.sim.worker import Worker


class CIPEvictionMixin(OrchestrationPolicy):
    """Eviction side of CIDRE. Combine with a scaling mixin."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Logical clock: running max of evicted priorities.
        self.cip_clock = 0.0
        #: Lifetime invocation count per function (n_F of Eq. 4).
        self._invocations: Dict[str, int] = {}
        #: First-arrival timestamp per function (t of Eq. 4).
        self._first_seen: Dict[str, float] = {}
        #: Memo of the last Freq computation per function, keyed by the
        #: inputs it depends on: (now, invocation count) -> freq. Exact —
        #: identical inputs always yield the identical quotient — so the
        #: cache cannot change any priority value. It collapses the many
        #: same-timestamp recomputations a single make_room / serve batch
        #: performs into one division per function.
        self._freq_cache: Dict[str, tuple] = {}

    # -- function-level statistics ----------------------------------------

    def on_request_arrival(self, request: "Request", worker: "Worker",
                           now: float) -> None:
        super().on_request_arrival(request, worker, now)
        self._invocations[request.func] = \
            self._invocations.get(request.func, 0) + 1
        self._first_seen.setdefault(request.func, now)

    def freq_per_minute(self, func: str, now: float) -> float:
        """Eq. 4: lifetime invocations per minute."""
        count = self._invocations.get(func, 0)
        if count == 0:
            return 0.0
        cached = self._freq_cache.get(func)
        if cached is not None and cached[0] == now and cached[1] == count:
            return cached[2]
        elapsed_min = max((now - self._first_seen[func]) / MINUTES_MS,
                          1.0 / MINUTES_MS)  # clamp to >= 1 ms of history
        freq = count / elapsed_min
        self._freq_cache[func] = (now, count, freq)
        return freq

    # -- priority -----------------------------------------------------------

    def priority(self, container: "Container", now: float) -> float:
        spec = container.spec
        freq = self.freq_per_minute(spec.name, now)
        worker = container.worker
        k = max(worker.warm_count(spec.name), 1) if worker is not None else 1
        return (container.clock
                + freq * spec.cold_start_ms / (max(spec.memory_mb, 1e-9) * k))

    def priorities(self, containers, now: float):
        """Batch form: compute each function's ``|F(c)|`` and ``Freq`` once.

        ``Freq`` is function-global (Eq. 4), but ``|F(c)|`` counts warm
        containers *on the container's own worker* — same-function
        containers on different workers see different counts — so the
        count memo is keyed by ``(func, worker)``, exactly matching what
        the scalar :meth:`priority` computes for each container.
        """
        counts = {}
        freqs = {}
        out = []
        for container in containers:
            func = container.spec.name
            worker = container.worker
            key = (func, None if worker is None else worker.worker_id)
            k = counts.get(key)
            if k is None:
                k = counts[key] = max(worker.warm_count(func), 1) \
                    if worker is not None else 1
            freq = freqs.get(func)
            if freq is None:
                freq = freqs[func] = self.freq_per_minute(func, now)
            spec = container.spec
            out.append(container.clock
                       + freq * spec.cold_start_ms
                       / (max(spec.memory_mb, 1e-9) * k))
        return out

    def priority_components(self, container: "Container",
                            now: float) -> Dict:
        """Eq. 3 term decomposition for one container (audit records)."""
        spec = container.spec
        freq = self.freq_per_minute(spec.name, now)
        worker = container.worker
        k = max(worker.warm_count(spec.name), 1) if worker is not None else 1
        return {
            "priority": container.clock
            + freq * spec.cold_start_ms / (max(spec.memory_mb, 1e-9) * k),
            "clock": container.clock,
            "freq_per_min": freq,
            "cost_ms": spec.cold_start_ms,
            "size_mb": spec.memory_mb,
            "warm_count": k,
        }

    # -- clock discipline ----------------------------------------------------

    def _touch(self, container: "Container", now: float) -> None:
        """Serve-time update: Clock(c) <- Priority(c) (pre-update value)."""
        container.clock = self.priority(container, now)

    def on_warm_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        super().on_warm_start(container, request, now)
        self._touch(container, now)

    def on_delayed_start(self, container: "Container", request: "Request",
                         now: float) -> None:
        super().on_delayed_start(container, request, now)
        self._touch(container, now)

    def on_cold_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        super().on_cold_start(container, request, now)
        self._touch(container, now)

    def on_provision_started(self, container: "Container",
                             now: float) -> None:
        super().on_provision_started(container, now)
        # New containers inherit the running max of evicted priorities,
        # guaranteeing monotonically increasing clocks (§3.3).
        container.clock = self.cip_clock

    def on_eviction(self, victims, now: float) -> None:
        super().on_eviction(victims, now)
        for victim in victims:
            self.cip_clock = max(self.cip_clock,
                                 self.priority(victim, now))
