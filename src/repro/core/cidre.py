"""CIDRE policy assemblies (§3.4) and its ablation configurations (§5.3).

CIDRE = CSS speculative scaling + CIP eviction. The paper's ablation study
(Fig. 15) additionally measures each technique alone on top of the
FaasCache (GDSF) substrate:

* :class:`CIDREPolicy`      — CSS + CIP (the full system);
* :class:`CIDREBSSPolicy`   — basic speculative scaling + CIP (the variant
  deployed in Alibaba Cloud FC, §5.2);
* :class:`CIPOnlyPolicy`    — CIP eviction, no busy-container reuse;
* :class:`BSSOnlyPolicy`    — BSS scaling over GDSF eviction;
* :class:`CSSOnlyPolicy`    — CSS scaling over GDSF eviction.
"""

from __future__ import annotations

from typing import Optional

from repro.core.priority import CIPEvictionMixin
from repro.core.scaling import BSSScalingMixin, CSSScalingMixin, MINUTES_MS
from repro.policies.faascache import FaasCachePolicy


class CIDREPolicy(CSSScalingMixin, CIPEvictionMixin):
    """The full CIDRE orchestration policy (CSS + CIP).

    Keyword arguments are forwarded to
    :class:`~repro.core.scaling.CSSScalingMixin` (``window_ms``,
    ``exec_estimator``, ``live_delay_signal``, ``cover_backlog``).
    """

    name = "CIDRE"

    def __init__(self, window_ms: Optional[float] = 15 * MINUTES_MS,
                 exec_estimator: str = "median", **kwargs):
        super().__init__(window_ms=window_ms, exec_estimator=exec_estimator,
                         **kwargs)


class CIDREBSSPolicy(BSSScalingMixin, CIPEvictionMixin):
    """CIDRE with only basic speculative scaling (CIDRE_BSS)."""

    name = "CIDRE_BSS"


class CIPOnlyPolicy(CIPEvictionMixin):
    """Ablation: concurrency-informed eviction without speculative scaling.

    Every request that misses idle capacity pays a cold start (the base
    policy's scaling), but eviction uses CIP instead of GDSF.
    """

    name = "CIP_alone"


class BSSOnlyPolicy(BSSScalingMixin, FaasCachePolicy):
    """Ablation: basic speculative scaling over GDSF (FaasCache) eviction."""

    name = "BSS_alone"


class CSSOnlyPolicy(CSSScalingMixin, FaasCachePolicy):
    """Ablation: conditional speculative scaling over GDSF eviction."""

    name = "CSS_alone"

    def __init__(self, window_ms: Optional[float] = 15 * MINUTES_MS,
                 exec_estimator: str = "median", **kwargs):
        super().__init__(window_ms=window_ms, exec_estimator=exec_estimator,
                         **kwargs)
