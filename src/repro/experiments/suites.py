"""Named policy rosters used across the paper's experiments."""

from __future__ import annotations

from typing import Dict, List

from repro.core.cidre import (BSSOnlyPolicy, CIDREBSSPolicy, CIDREPolicy,
                              CIPOnlyPolicy, CSSOnlyPolicy)
from repro.experiments.runner import PolicyFactory
from repro.policies.codecrunch import CodeCrunchPolicy
from repro.policies.ensure import EnsurePolicy
from repro.policies.faascache import FaasCacheCPolicy, FaasCachePolicy
from repro.policies.flame import FlamePolicy
from repro.policies.hybrid_histogram import HybridHistogramPolicy
from repro.policies.icebreaker import IceBreakerPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.offline import OfflinePolicy
from repro.policies.rainbowcake import RainbowCakePolicy
from repro.policies.ttl import TTLPolicy


def policy_factories() -> Dict[str, PolicyFactory]:
    """All named policies as trace-aware factories.

    The Offline oracle is the only one that actually inspects the trace.
    """
    return {
        "TTL": lambda trace: TTLPolicy(),
        "LRU": lambda trace: LRUPolicy(),
        "FaasCache": lambda trace: FaasCachePolicy(),
        "FaasCache-C": lambda trace: FaasCacheCPolicy(),
        "RainbowCake": lambda trace: RainbowCakePolicy(),
        "IceBreaker": lambda trace: IceBreakerPolicy(),
        "CodeCrunch": lambda trace: CodeCrunchPolicy(),
        "Flame": lambda trace: FlamePolicy(),
        "ENSURE": lambda trace: EnsurePolicy(),
        "HybridHistogram": lambda trace: HybridHistogramPolicy(),
        "CIDRE_BSS": lambda trace: CIDREBSSPolicy(),
        "CIDRE": lambda trace: CIDREPolicy(),
        "Offline": lambda trace: OfflinePolicy(trace.requests),
        "CIP_alone": lambda trace: CIPOnlyPolicy(),
        "BSS_alone": lambda trace: BSSOnlyPolicy(),
        "CSS_alone": lambda trace: CSSOnlyPolicy(),
    }


#: The eleven policies of Fig. 12, in the paper's legend order.
FIG12_POLICIES: List[str] = [
    "TTL", "LRU", "FaasCache", "RainbowCake", "Flame", "ENSURE",
    "IceBreaker", "CodeCrunch", "CIDRE_BSS", "CIDRE", "Offline",
]

#: The Fig. 15 ablation ladder.
ABLATION_POLICIES: List[str] = [
    "FaasCache", "CIP_alone", "BSS_alone", "CSS_alone", "CIDRE",
]


def select(names) -> List[PolicyFactory]:
    """Resolve policy names to factories, preserving order."""
    table = policy_factories()
    missing = [n for n in names if n not in table]
    if missing:
        raise KeyError(f"unknown policies: {missing}")
    return [table[n] for n in names]
