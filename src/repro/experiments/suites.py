"""Named policy rosters used across the paper's experiments."""

from __future__ import annotations

from typing import Dict, List

from repro.core.cidre import (BSSOnlyPolicy, CIDREBSSPolicy, CIDREPolicy,
                              CIPOnlyPolicy, CSSOnlyPolicy)
from repro.experiments.runner import PolicyFactory
from repro.policies.codecrunch import CodeCrunchPolicy
from repro.policies.ensure import EnsurePolicy
from repro.policies.faascache import FaasCacheCPolicy, FaasCachePolicy
from repro.policies.flame import FlamePolicy
from repro.policies.hybrid_histogram import HybridHistogramPolicy
from repro.policies.icebreaker import IceBreakerPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.offline import OfflinePolicy
from repro.policies.rainbowcake import RainbowCakePolicy
from repro.policies.ttl import TTLPolicy

#: Runtime-registered extension policies (see :func:`register_policy`).
_EXTRA_FACTORIES: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory,
                    overwrite: bool = False) -> None:
    """Register a custom policy factory under ``name``.

    Registered names resolve through :func:`policy_factories` /
    :func:`select` and are therefore usable from the experiment CLI and
    the serial runner. The *parallel* runner resolves names inside its
    worker processes, so runtime registrations are only visible there
    under a ``fork`` start method (or with ``jobs=1``); under ``spawn``
    register from a module imported at worker start-up instead.
    """
    if not overwrite and (name in _EXTRA_FACTORIES
                          or name in policy_factories()):
        raise KeyError(f"policy {name!r} is already registered")
    _EXTRA_FACTORIES[name] = factory


def unregister_policy(name: str) -> None:
    """Remove a runtime registration (no-op for built-in policies)."""
    _EXTRA_FACTORIES.pop(name, None)


def policy_factories() -> Dict[str, PolicyFactory]:
    """All named policies as trace-aware factories.

    The Offline oracle is the only one that actually inspects the trace.
    Runtime registrations (:func:`register_policy`) are merged on top of
    the built-in roster.
    """
    table = _builtin_factories()
    table.update(_EXTRA_FACTORIES)
    return table


def _builtin_factories() -> Dict[str, PolicyFactory]:
    return {
        "TTL": lambda trace: TTLPolicy(),
        "LRU": lambda trace: LRUPolicy(),
        "FaasCache": lambda trace: FaasCachePolicy(),
        "FaasCache-C": lambda trace: FaasCacheCPolicy(),
        "RainbowCake": lambda trace: RainbowCakePolicy(),
        "IceBreaker": lambda trace: IceBreakerPolicy(),
        "CodeCrunch": lambda trace: CodeCrunchPolicy(),
        "Flame": lambda trace: FlamePolicy(),
        "ENSURE": lambda trace: EnsurePolicy(),
        "HybridHistogram": lambda trace: HybridHistogramPolicy(),
        "CIDRE_BSS": lambda trace: CIDREBSSPolicy(),
        "CIDRE": lambda trace: CIDREPolicy(),
        "Offline": lambda trace: OfflinePolicy(trace.requests),
        "CIP_alone": lambda trace: CIPOnlyPolicy(),
        "BSS_alone": lambda trace: BSSOnlyPolicy(),
        "CSS_alone": lambda trace: CSSOnlyPolicy(),
    }


#: The eleven policies of Fig. 12, in the paper's legend order.
FIG12_POLICIES: List[str] = [
    "TTL", "LRU", "FaasCache", "RainbowCake", "Flame", "ENSURE",
    "IceBreaker", "CodeCrunch", "CIDRE_BSS", "CIDRE", "Offline",
]

#: The Fig. 15 ablation ladder.
ABLATION_POLICIES: List[str] = [
    "FaasCache", "CIP_alone", "BSS_alone", "CSS_alone", "CIDRE",
]


def select(names) -> List[PolicyFactory]:
    """Resolve policy names to factories, preserving order."""
    table = policy_factories()
    missing = [n for n in names if n not in table]
    if missing:
        raise KeyError(f"unknown policies: {missing}")
    return [table[n] for n in names]
