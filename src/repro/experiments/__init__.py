"""Experiment harness shared by benchmarks and examples."""

from repro.experiments.parallel import (CellTiming, ParallelRunner,
                                        SummarySimulationResult,
                                        SweepReport, cache_key,
                                        trace_digest)
from repro.experiments.runner import (ExperimentResult, capacity_sweep,
                                      grid_cells, run_grid, run_one)
from repro.experiments.suites import (ABLATION_POLICIES, FIG12_POLICIES,
                                      policy_factories, register_policy,
                                      select, unregister_policy)

__all__ = [
    "ABLATION_POLICIES", "CellTiming", "ExperimentResult",
    "FIG12_POLICIES", "ParallelRunner", "SummarySimulationResult",
    "SweepReport", "cache_key", "capacity_sweep", "grid_cells",
    "policy_factories", "register_policy", "run_grid", "run_one",
    "select", "trace_digest", "unregister_policy",
]
