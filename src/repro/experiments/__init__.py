"""Experiment harness shared by benchmarks and examples."""

from repro.experiments.runner import (ExperimentResult, capacity_sweep,
                                      run_grid, run_one)
from repro.experiments.suites import (ABLATION_POLICIES, FIG12_POLICIES,
                                      policy_factories, select)

__all__ = [
    "ABLATION_POLICIES", "ExperimentResult", "FIG12_POLICIES",
    "capacity_sweep", "policy_factories", "run_grid", "run_one", "select",
]
