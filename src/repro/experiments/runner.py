"""Experiment harness: run (policy, trace, config) grids.

This is the layer the benchmarks and examples drive. It owns the two
mechanical details every experiment needs:

* each run replays *fresh copies* of the trace's requests (simulations
  mutate outcome fields);
* the Offline oracle needs the request list at construction time, so
  policies are supplied as zero-argument *factories* receiving the trace
  via closure when needed — :func:`policy_factories` in
  :mod:`repro.experiments.suites` builds the standard roster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.policies.base import OrchestrationPolicy
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.orchestrator import Orchestrator
from repro.traces.schema import Trace

PolicyFactory = Callable[[Trace], OrchestrationPolicy]


@dataclass
class ExperimentResult:
    """One (policy, trace, config) outcome."""

    policy_name: str
    trace_name: str
    config: SimulationConfig
    result: SimulationResult

    def summary(self) -> Dict[str, float]:
        return self.result.summary()


def run_one(trace: Trace, factory: PolicyFactory,
            config: Optional[SimulationConfig] = None,
            event_log=None, recorder=None, audit=None,
            metrics=None, sanitizer=None,
            attribution=None) -> ExperimentResult:
    """Run one policy over one trace.

    ``event_log`` / ``recorder`` / ``audit`` / ``metrics`` /
    ``attribution`` are optional observability attachments
    (:class:`repro.sim.EventLog`,
    :class:`repro.sim.telemetry.TimeSeriesRecorder`,
    :class:`repro.obs.DecisionAudit`, :class:`repro.obs.MetricsRegistry`,
    :class:`repro.obs.CauseTracker`)
    passed through to the orchestrator; they observe the run without
    changing its outcome. ``sanitizer`` is an optional
    :class:`repro.sim.sanitizer.SimSanitizer` installed for the duration
    of the run (write barrier around probe callbacks plus periodic
    consistency sweeps); a sanitized run produces bit-identical results.
    """
    config = config or SimulationConfig()
    policy = factory(trace)
    orchestrator = Orchestrator(trace.functions, policy, config,
                                event_log=event_log, recorder=recorder,
                                audit=audit, metrics=metrics,
                                attribution=attribution)
    # Replay from the compiled (packed) form: the orchestrator streams
    # arrivals off the flat columns and materializes fresh request
    # records lazily — one compile per trace, shared across runs, with
    # outcomes bit-identical to replaying ``trace.fresh_requests()``.
    if sanitizer is not None:
        sanitizer.install(orchestrator)
        try:
            result = orchestrator.run(trace.packed())
            sanitizer.finalize(orchestrator)
        finally:
            sanitizer.uninstall(orchestrator)
    else:
        result = orchestrator.run(trace.packed())
    return ExperimentResult(policy.name, trace.name, config, result)


def grid_cells(factories: Sequence[PolicyFactory],
               configs: Sequence[SimulationConfig]
               ) -> List[tuple]:
    """The documented cell order of :func:`run_grid`.

    Cells are **config-major, policy-minor**: cell ``i`` is
    ``(configs[i // len(factories)], factories[i % len(factories)])``.
    Both the serial and the parallel runner emit results in exactly this
    order, so grid outputs are stable across runner implementations and
    worker counts.
    """
    return [(config, factory)
            for config in configs for factory in factories]


def run_grid(trace: Trace, factories: Sequence[PolicyFactory],
             configs: Sequence[SimulationConfig]
             ) -> List[ExperimentResult]:
    """Cartesian product of policies x configs over one trace.

    Results are returned in the deterministic order defined by
    :func:`grid_cells` (config-major, policy-minor).
    """
    return [run_one(trace, factory, config)
            for config, factory in grid_cells(factories, configs)]


def capacity_sweep(trace: Trace, factories: Sequence[PolicyFactory],
                   capacities_gb: Sequence[float],
                   **config_kwargs) -> List[ExperimentResult]:
    """The Fig. 12 pattern: every policy at every cache size.

    Result order follows :func:`run_grid`: capacity-major in the order
    given, policy-minor in the order given.
    """
    configs = [SimulationConfig(capacity_gb=gb, **config_kwargs)
               for gb in capacities_gb]
    return run_grid(trace, factories, configs)
