"""Process-parallel experiment execution with deterministic replay.

The paper's evaluation is a wide Cartesian grid — eleven baselines, five
cache capacities, two traces (Figs. 12-21) — and every cell is an
independent discrete-event replay. :class:`ParallelRunner` fans those
cells out over a ``multiprocessing`` pool while keeping the serial
harness the single source of truth:

* **Job specs are picklable.** A cell is ``(index, policy name,
  SimulationConfig)``; policy factories are resolved *by name* inside
  each worker through the registry in :mod:`repro.experiments.suites`,
  so the runner is safe under the ``spawn`` start method (no lambdas or
  closures cross the process boundary). The trace is shipped once per
  worker via the pool initializer, not once per cell.
* **Results are bit-identical to the serial path.** Each worker runs the
  very same :func:`repro.experiments.runner.run_one`, and cells are
  emitted in the documented serial order (config-major, policy-minor —
  see :func:`repro.experiments.runner.grid_cells`), so
  ``ParallelRunner(jobs=N).run_grid(...)`` equals
  ``run_grid(...)`` summary-for-summary for every ``N``.
* **Deterministic per-cell seeding.** An optional base ``seed`` is
  threaded through :class:`~repro.sim.config.SimulationConfig` as
  ``base + cell_index``, independent of worker count and scheduling
  order.
* **Bounded memory.** Results stream back through ``imap`` one cell at
  a time; with ``collect="summary"`` workers return only the summary
  payload (a dozen floats per cell) instead of per-request records, so
  million-cell sweeps hold O(cells) scalars, not O(requests) objects.
* **On-disk caching.** With ``cache_dir`` set, each finished cell is
  persisted under a key derived from (trace digest, policy name,
  config); re-running a sweep replays only the missing cells.
* **Timing report.** Every run records per-cell wall-clock and cache
  hits into :class:`SweepReport` (``runner.last_report``), which the CLI
  surfaces as the sweep's progress/speedup summary.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.experiments.runner import ExperimentResult, run_one
from repro.experiments.suites import policy_factories
from repro.sim.config import SimulationConfig
from repro.traces.schema import Trace

#: Bump when the cached payload layout or simulator semantics change.
#: v2: ``avg_memory_mb`` became a true time-weighted (trapezoidal)
#: average, so v1 summaries are no longer comparable.
#: v3: ``summary()`` gained the fault-layer keys (worker_crashes,
#: orphaned/reassigned/failed_requests); v2 payloads lack them.
#: v4: ``SimulationConfig`` gained ``fast_forward`` (part of the cache
#: key via ``asdict``), so v3 keys no longer resolve. Results are
#: bit-identical across the flag either way.
#: v5: ``SimulationConfig`` gained ``contention`` (the CPU-contention
#: model), and straggler exec/cold multipliers now integrate across
#: window edges instead of being sampled once at dispatch — cached
#: fault-plan cells from v4 may carry the sampled-once timings.
CACHE_VERSION = 5

ProgressFn = Callable[[int, int, "CellTiming"], None]


# ======================================================================
# Job specs and slim results


@dataclass(frozen=True)
class JobSpec:
    """One picklable sweep cell: resolved inside the worker process."""

    index: int
    policy_name: str
    config: SimulationConfig


class SummarySimulationResult:
    """A bounded-memory stand-in for :class:`SimulationResult`.

    Carries the headline ``summary()`` dict plus the run counters, but
    no per-request records. Returned for cache hits and when the runner
    collects ``"summary"`` payloads; exposes the attributes the
    reporting layer reads so it can substitute for the full object in
    tables.
    """

    def __init__(self, summary: Dict[str, float],
                 counters: Dict[str, float]):
        self._summary = dict(summary)
        self.cold_starts_begun = int(counters.get("cold_starts_begun", 0))
        self.wasted_cold_starts = int(
            counters.get("wasted_cold_starts", 0))
        self.evictions = int(counters.get("evictions", 0))
        self.prewarm_starts = int(counters.get("prewarm_starts", 0))
        self.restores = int(counters.get("restores", 0))
        self.provisioned_mb = float(counters.get("provisioned_mb", 0.0))
        self.peak_memory_mb = float(counters.get("peak_memory_mb", 0.0))

    def summary(self) -> Dict[str, float]:
        return dict(self._summary)

    @property
    def total(self) -> int:
        return int(self._summary["requests"])

    @property
    def cold_start_ratio(self) -> float:
        return self._summary["cold_ratio"]

    @property
    def warm_start_ratio(self) -> float:
        return self._summary["warm_ratio"]

    @property
    def delayed_start_ratio(self) -> float:
        return self._summary["delayed_ratio"]

    @property
    def avg_overhead_ratio(self) -> float:
        return self._summary["avg_overhead_ratio"]

    @property
    def avg_wait_ms(self) -> float:
        return self._summary["avg_wait_ms"]

    @property
    def avg_memory_mb(self) -> float:
        return self._summary["avg_memory_mb"]

    def counters(self) -> Dict[str, float]:
        return {
            "cold_starts_begun": self.cold_starts_begun,
            "wasted_cold_starts": self.wasted_cold_starts,
            "evictions": self.evictions,
            "prewarm_starts": self.prewarm_starts,
            "restores": self.restores,
            "provisioned_mb": self.provisioned_mb,
            "peak_memory_mb": self.peak_memory_mb,
        }


def _counters_of(result) -> Dict[str, float]:
    return {
        "cold_starts_begun": result.cold_starts_begun,
        "wasted_cold_starts": result.wasted_cold_starts,
        "evictions": result.evictions,
        "prewarm_starts": result.prewarm_starts,
        "restores": result.restores,
        "provisioned_mb": result.provisioned_mb,
        "peak_memory_mb": result.peak_memory_mb,
    }


# ======================================================================
# Cache keys


def trace_digest(trace: Trace) -> str:
    """A content hash of the trace (functions + requests, not the name).

    Cached on the trace object: traces are value objects, so mutation
    after digesting is a caller error, not a supported flow. Accepts a
    :class:`repro.traces.packed.PackedTrace` too — the packed form
    hashes the same byte stream, so compiling a trace never invalidates
    sweep cache keys (pinned by ``tests/traces/test_packed.py``).
    """
    if getattr(trace, "is_packed", False):
        return trace.digest()
    cached = getattr(trace, "_content_digest", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for f in sorted(trace.functions, key=lambda f: f.name):
        h.update(repr((f.name, f.memory_mb, f.cold_start_ms, f.runtime,
                       getattr(f, "app", ""))).encode())
    for r in trace.requests:
        h.update(repr((r.func, r.arrival_ms, r.exec_ms)).encode())
    digest = h.hexdigest()
    object.__setattr__(trace, "_content_digest", digest)
    return digest


def cache_key(digest: str, policy_name: str,
              config: SimulationConfig) -> str:
    """Key one sweep cell: sha256 over (version, trace digest, policy,
    every config field in sorted order)."""
    payload = {
        "version": CACHE_VERSION,
        "trace": digest,
        "policy": policy_name,
        "config": dataclasses.asdict(config),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


# ======================================================================
# Per-cell telemetry sinks


def cell_events_path(events_dir: Union[str, Path], job: JobSpec) -> Path:
    """Where one sweep cell streams its JSONL event log.

    The name encodes the serial cell index plus the (policy, capacity)
    coordinates, so a sweep's files sort in grid order and stay stable
    across runs and worker counts."""
    return Path(events_dir) / (f"cell{job.index:04d}_{job.policy_name}"
                               f"_cap{job.config.capacity_gb:g}.jsonl")


def _cell_event_log(events_dir, job: JobSpec):
    """A sink-only event log streaming to the cell's JSONL file."""
    if events_dir is None:
        return None
    from repro.sim.eventlog import EventLog
    from repro.sim.telemetry import JsonlSink
    return EventLog(capacity=0,
                    sinks=(JsonlSink(cell_events_path(events_dir, job)),))


def cell_metrics_path(metrics_dir: Union[str, Path],
                      job: JobSpec) -> Path:
    """Where one sweep cell writes its metrics-registry JSON snapshot.

    Same naming scheme as :func:`cell_events_path`, ``.metrics.json``
    suffix."""
    return Path(metrics_dir) / (f"cell{job.index:04d}_{job.policy_name}"
                                f"_cap{job.config.capacity_gb:g}"
                                ".metrics.json")


def _cell_metrics(metrics_dir):
    """A fresh per-cell registry when metrics capture is on."""
    if metrics_dir is None:
        return None
    from repro.obs import MetricsRegistry
    return MetricsRegistry()


# ======================================================================
# Worker-side plumbing (module-level so it pickles under spawn)

_WORKER_TRACE: Optional[Trace] = None
_WORKER_COLLECT: str = "full"
_WORKER_EVENTS_DIR: Optional[str] = None
_WORKER_METRICS_DIR: Optional[str] = None


def _init_worker(trace: Trace, collect: str,
                 events_dir: Optional[str] = None,
                 metrics_dir: Optional[str] = None) -> None:
    global _WORKER_TRACE, _WORKER_COLLECT, _WORKER_EVENTS_DIR, \
        _WORKER_METRICS_DIR
    _WORKER_TRACE = trace
    _WORKER_COLLECT = collect
    _WORKER_EVENTS_DIR = events_dir
    _WORKER_METRICS_DIR = metrics_dir


def _run_cell(job: JobSpec) -> Tuple[int, str, object, float]:
    """Run one cell in a worker. Returns (index, kind, payload, secs)."""
    start = time.perf_counter()
    factory = policy_factories()[job.policy_name]
    event_log = _cell_event_log(_WORKER_EVENTS_DIR, job)
    metrics = _cell_metrics(_WORKER_METRICS_DIR)
    experiment = run_one(_WORKER_TRACE, factory, job.config,
                         event_log=event_log, metrics=metrics)
    if event_log is not None:
        event_log.close()
    if metrics is not None:
        metrics.save_json(cell_metrics_path(_WORKER_METRICS_DIR, job))
    elapsed = time.perf_counter() - start
    if _WORKER_COLLECT == "summary":
        payload = (experiment.result.summary(),
                   _counters_of(experiment.result))
        return job.index, "summary", payload, elapsed
    return job.index, "full", experiment, elapsed


# ======================================================================
# Timing report


@dataclass
class CellTiming:
    """Wall-clock record for one sweep cell."""

    policy_name: str
    capacity_gb: float
    wall_s: float
    cached: bool = False


@dataclass
class SweepReport:
    """Progress / timing summary of one parallel sweep."""

    jobs: int
    wall_s: float = 0.0
    cells: List[CellTiming] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def cell_seconds(self) -> float:
        """Aggregate simulation time of the executed (non-cached) cells —
        an estimate of the serial wall-clock."""
        return sum(c.wall_s for c in self.cells if not c.cached)

    @property
    def speedup(self) -> float:
        """Estimated serial-time / observed-wall-clock ratio."""
        if self.wall_s <= 0:
            return 1.0
        return self.cell_seconds / self.wall_s

    def rows(self) -> List[List[object]]:
        return [[c.policy_name, c.capacity_gb,
                 "hit" if c.cached else f"{c.wall_s:.2f}s"]
                for c in self.cells]

    def render(self) -> str:
        executed = len(self.cells) - self.cache_hits
        return (f"{len(self.cells)} cells ({executed} run, "
                f"{self.cache_hits} cached) in {self.wall_s:.2f}s "
                f"wall with {self.jobs} job(s); "
                f"aggregate cell time {self.cell_seconds:.2f}s "
                f"(~{self.speedup:.1f}x vs serial)")


class ProgressHeartbeat:
    """A progress callback printing cells done/total, per-cell wall time
    and an ETA as each cell lands (the sweep ``--progress`` flag).

    The ETA is the naive linear extrapolation ``elapsed / done *
    remaining`` — good enough for a homogeneous grid, refreshed on every
    landed cell either way.
    """

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self._start = time.perf_counter()

    def __call__(self, done: int, total: int, cell: CellTiming) -> None:
        elapsed = time.perf_counter() - self._start
        eta = elapsed / done * (total - done) if done else 0.0
        status = "cache hit" if cell.cached else f"{cell.wall_s:.2f}s"
        print(f"[{done}/{total}] {cell.policy_name} @ "
              f"{cell.capacity_gb:g} GB ({status}) | "
              f"elapsed {elapsed:.1f}s, eta {eta:.1f}s",
              file=self.stream, flush=True)


# ======================================================================
# The runner


class ParallelRunner:
    """Fan a (policy, config) grid over a process pool.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (or a single-cell grid) runs everything
        in-process through the serial path — no pool, no pickling.
        Defaults to ``os.cpu_count()``.
    mp_context:
        ``multiprocessing`` start method. Defaults to ``"fork"`` where
        available (cheap on Linux) and ``"spawn"`` otherwise; the runner
        is spawn-safe by construction, so either produces identical
        results.
    cache_dir:
        Optional directory of per-cell JSON payloads keyed by
        :func:`cache_key`. Hits skip simulation and come back as
        :class:`SummarySimulationResult`.
    collect:
        ``"full"`` returns complete :class:`SimulationResult` objects;
        ``"summary"`` bounds memory by keeping only summary payloads.
    progress:
        Optional callback ``(done, total, CellTiming)`` invoked in the
        parent as each cell lands.
    events_dir:
        Optional directory for per-cell telemetry: every *executed* cell
        streams its full control-plane event log to
        ``cell_events_path(events_dir, job)`` as JSON Lines (O(1) extra
        memory per worker). Cache hits skip simulation and therefore
        write no event file — clear ``cache_dir`` to trace everything.
    metrics_dir:
        Optional directory for per-cell metrics: every *executed* cell
        attaches a fresh :class:`repro.obs.MetricsRegistry` and writes
        its JSON snapshot to ``cell_metrics_path(metrics_dir, job)``.
        Same cache-hit caveat as ``events_dir``.
    """

    def __init__(self, jobs: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 collect: str = "full",
                 progress: Optional[ProgressFn] = None,
                 events_dir: Optional[Union[str, Path]] = None,
                 metrics_dir: Optional[Union[str, Path]] = None):
        if collect not in ("full", "summary"):
            raise ValueError(f"unknown collect mode {collect!r}")
        self.jobs = max(int(jobs if jobs is not None
                            else (os.cpu_count() or 1)), 1)
        if mp_context is None:
            available = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in available else "spawn"
        self.mp_context = mp_context
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.collect = collect
        self.progress = progress
        self.events_dir = Path(events_dir) if events_dir else None
        self.metrics_dir = Path(metrics_dir) if metrics_dir else None
        #: Timing/caching record of the most recent sweep.
        self.last_report: Optional[SweepReport] = None

    # ------------------------------------------------------------------

    def run_grid(self, trace: Trace, policy_names: Sequence[str],
                 configs: Sequence[SimulationConfig],
                 seed: Optional[int] = None) -> List[ExperimentResult]:
        """Parallel twin of :func:`repro.experiments.runner.run_grid`.

        Policies are given *by name* (resolved through
        :func:`repro.experiments.suites.policy_factories` inside each
        worker). Results come back in the serial grid order:
        config-major, policy-minor. With ``seed`` set, cell ``i`` runs
        under ``config.seed = seed + i``.
        """
        table = policy_factories()
        unknown = [n for n in policy_names if n not in table]
        if unknown:
            raise KeyError(f"unknown policies: {unknown}")

        jobs_list = self._build_jobs(policy_names, configs, seed)
        total = len(jobs_list)
        results: List[Optional[ExperimentResult]] = [None] * total
        timings: List[Optional[CellTiming]] = [None] * total
        report = SweepReport(jobs=self.jobs)
        started = time.perf_counter()
        done = 0

        to_run: List[JobSpec] = []
        digest = trace_digest(trace) if self.cache_dir else ""
        for job in jobs_list:
            hit = self._cache_load(trace, digest, job)
            if hit is not None:
                results[job.index] = hit
                timing = CellTiming(job.policy_name,
                                    job.config.capacity_gb, 0.0,
                                    cached=True)
                timings[job.index] = timing
                done += 1
                if self.progress:
                    self.progress(done, total, timing)
            else:
                to_run.append(job)

        for index, kind, payload, elapsed in self._execute(trace, to_run):
            job = jobs_list[index]
            results[index] = self._materialize(trace, job, kind, payload)
            timing = CellTiming(job.policy_name, job.config.capacity_gb,
                                elapsed)
            timings[index] = timing
            self._cache_store(digest, job, results[index])
            done += 1
            if self.progress:
                self.progress(done, total, timing)

        report.cells = [t for t in timings if t is not None]
        report.wall_s = time.perf_counter() - started
        self.last_report = report
        return [r for r in results if r is not None]

    def capacity_sweep(self, trace: Trace, policy_names: Sequence[str],
                       capacities_gb: Sequence[float],
                       seed: Optional[int] = None,
                       **config_kwargs) -> List[ExperimentResult]:
        """Parallel twin of :func:`repro.experiments.runner.capacity_sweep`
        (capacity-major, policy-minor result order)."""
        configs = [SimulationConfig(capacity_gb=gb, **config_kwargs)
                   for gb in capacities_gb]
        return self.run_grid(trace, policy_names, configs, seed=seed)

    # ------------------------------------------------------------------

    @staticmethod
    def _build_jobs(policy_names: Sequence[str],
                    configs: Sequence[SimulationConfig],
                    seed: Optional[int]) -> List[JobSpec]:
        jobs = []
        index = 0
        for config in configs:
            for name in policy_names:
                cell_config = config if seed is None else \
                    dataclasses.replace(config, seed=seed + index)
                jobs.append(JobSpec(index, name, cell_config))
                index += 1
        return jobs

    def _execute(self, trace: Trace, to_run: List[JobSpec]):
        """Yield (index, kind, payload, elapsed) for every cell to run."""
        if not to_run:
            return
        if self.events_dir is not None:
            self.events_dir.mkdir(parents=True, exist_ok=True)
        if self.metrics_dir is not None:
            self.metrics_dir.mkdir(parents=True, exist_ok=True)
        if self.jobs == 1 or len(to_run) == 1:
            # Serial fallback: same code path the workers run, in-process.
            table = policy_factories()
            for job in to_run:
                start = time.perf_counter()
                event_log = _cell_event_log(self.events_dir, job)
                metrics = _cell_metrics(self.metrics_dir)
                experiment = run_one(trace, table[job.policy_name],
                                     job.config, event_log=event_log,
                                     metrics=metrics)
                if event_log is not None:
                    event_log.close()
                if metrics is not None:
                    metrics.save_json(
                        cell_metrics_path(self.metrics_dir, job))
                elapsed = time.perf_counter() - start
                if self.collect == "summary":
                    payload = (experiment.result.summary(),
                               _counters_of(experiment.result))
                    yield job.index, "summary", payload, elapsed
                else:
                    yield job.index, "full", experiment, elapsed
            return
        ctx = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, len(to_run))
        events_dir = (str(self.events_dir)
                      if self.events_dir is not None else None)
        metrics_dir = (str(self.metrics_dir)
                       if self.metrics_dir is not None else None)
        with ctx.Pool(processes=workers, initializer=_init_worker,
                      initargs=(trace, self.collect, events_dir,
                                metrics_dir)) as pool:
            # Ordered, streaming collection: one in-flight result object
            # per finished cell, never the whole grid at once.
            for item in pool.imap(_run_cell, to_run, chunksize=1):
                yield item

    def _materialize(self, trace: Trace, job: JobSpec, kind: str,
                     payload) -> ExperimentResult:
        if kind == "full":
            return payload
        summary, counters = payload
        return ExperimentResult(
            job.policy_name, trace.name, job.config,
            SummarySimulationResult(summary, counters))

    # ------------------------------------------------------------------
    # On-disk cache

    def _cache_path(self, digest: str, job: JobSpec) -> Path:
        key = cache_key(digest, job.policy_name, job.config)
        return self.cache_dir / f"{key}.json"

    def _cache_load(self, trace: Trace, digest: str,
                    job: JobSpec) -> Optional[ExperimentResult]:
        if self.cache_dir is None:
            return None
        path = self._cache_path(digest, job)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if payload.get("version") != CACHE_VERSION:
            return None
        return ExperimentResult(
            job.policy_name, trace.name, job.config,
            SummarySimulationResult(payload["summary"],
                                    payload.get("counters", {})))

    def _cache_store(self, digest: str, job: JobSpec,
                     experiment: ExperimentResult) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        result = experiment.result
        counters = (result.counters()
                    if isinstance(result, SummarySimulationResult)
                    else _counters_of(result))
        payload = {
            "version": CACHE_VERSION,
            "policy": job.policy_name,
            "config": dataclasses.asdict(job.config),
            "summary": result.summary(),
            "counters": counters,
        }
        path = self._cache_path(digest, job)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
