"""Single-run replay throughput benchmarks (events/sec, wall-clock).

The replay hot path (state indexes, lazy eviction ranking, O(1) engine
liveness) is a performance feature, so it gets a performance harness: a
small suite of named scenarios replayed single-run, timed with
``time.perf_counter`` and reported as events/sec and requests/sec next to
the headline simulation outputs (cold ratio, evictions) that prove the
run exercised the intended regime.

Scenarios
---------
``ci-smoke``
    A few seconds of memory-pressured replay; cheap enough to run on
    every CI pass (see ``scripts/ci_check.sh``).
``pressure-20k`` / ``pressure-100k``
    Synthetic memory-pressure traces (Azure-like generator at small cache
    sizes). ``pressure-100k`` is the acceptance scenario of the indexing
    work: ~100k requests over an hour at 8 GB, ~46k evictions under
    CIDRE.
``azure-preset``
    The unpressured Azure preset — guards the common no-eviction regime
    against regressions hiding behind eviction-path wins.
``resilience``
    A 2-worker replay under a seeded chaos plan (``repro.sim.faults``):
    worker crashes with orphan reassignment, straggler slowdowns, and a
    heterogeneous worker class — times the fault layer's teardown paths.
``contention``
    A memory-pressured replay under a 4-core ``ContentionModel``
    (``repro.sim.contention``) — times the progress-based completion
    path: per-concurrency-transition retiming and the engine reschedules
    it issues.

Use
---
Programmatic: :func:`run_suite` returns a JSON-ready payload;
:func:`check_regression` compares two payloads and reports scenarios
whose events/sec fell below ``baseline / factor``. Command line:
``cidre-sim bench-throughput`` or ``benchmarks/bench_replay_throughput.py``.
The committed ``BENCH_throughput.json`` at the repo root is the reference
trajectory point CI compares against.

Timing notes: trace generation is excluded from the timed region; each
policy replays fresh copies of the requests. ``reference=True`` replays
every scenario a second time with ``SimulationConfig(reference_impl=True)``
(the pre-index scan-and-sort implementations), giving a side-by-side
speedup column — results are bit-identical by construction, and
:func:`run_suite` asserts the summaries match.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.orchestrator import Orchestrator
from repro.traces.schema import Trace

#: v2: records gained ``fast_forward``; the payload gained a ``history``
#: trajectory (one entry per saved run: commit + per-cell events/sec).
#: v1 payloads still load — they simply lack both.
SCHEMA = "repro/bench-throughput/v2"
ACCEPTED_SCHEMAS = ("repro/bench-throughput/v1", SCHEMA)

#: Cap on retained history entries in a saved payload.
HISTORY_LIMIT = 50

THIRTY_MINUTES_MS = 30 * 60 * 1000.0
ONE_HOUR_MS = 60 * 60 * 1000.0


@dataclass(frozen=True)
class BenchScenario:
    """One named (trace, capacity, policy roster) benchmark cell."""

    name: str
    description: str
    preset: str = "azure"
    seed: int = 1
    total_requests: int = 20_000
    duration_ms: Optional[float] = None
    capacity_gb: float = 8.0
    policies: Tuple[str, ...] = ("CIDRE",)
    workers: int = 1
    #: When set, the cell replays under a seeded random fault plan
    #: (worker crashes, stragglers, heterogeneity) — the crash-teardown
    #: and orphan-retry paths get a timed regime of their own.
    chaos_seed: Optional[int] = None
    #: Replay with the analytic idle fast-forward enabled
    #: (``SimulationConfig.fast_forward``); bit-identical outcomes, so
    #: paired plain/ff scenarios time the mechanism itself.
    fast_forward: bool = False
    #: When set, the cell replays under a ``ContentionModel`` with this
    #: many cores per worker (default fair-share curve) — times the
    #: progress-based completion path: per-transition retiming and the
    #: reschedule machinery it leans on.
    contention_cores: Optional[int] = None

    def build_trace(self) -> Trace:
        if self.preset == "azure":
            from repro.traces.azure import azure_trace as build
        elif self.preset == "fc":
            from repro.traces.alibaba import fc_trace as build
        else:  # pragma: no cover - config error
            raise ValueError(f"unknown preset {self.preset!r}")
        kwargs = {"seed": self.seed, "total_requests": self.total_requests}
        if self.duration_ms is not None:
            kwargs["duration_ms"] = self.duration_ms
        return build(**kwargs)

    def config(self, reference_impl: bool = False) -> SimulationConfig:
        faults = None
        if self.chaos_seed is not None:
            from repro.sim.faults import random_plan
            horizon = self.duration_ms or THIRTY_MINUTES_MS
            faults = random_plan(self.chaos_seed, workers=self.workers,
                                 horizon_ms=horizon)
        contention = None
        if self.contention_cores is not None:
            from repro.sim.contention import ContentionModel
            contention = ContentionModel(cores=self.contention_cores)
        return SimulationConfig(capacity_gb=self.capacity_gb,
                                workers=self.workers,
                                reference_impl=reference_impl,
                                faults=faults,
                                contention=contention,
                                fast_forward=(self.fast_forward
                                              and not reference_impl))


#: The standard suite, in run order.
SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario(
        name="ci-smoke",
        description="small memory-pressure replay for per-PR CI smoke",
        seed=3, total_requests=6_000, capacity_gb=2.0,
        policies=("CIDRE",)),
    BenchScenario(
        name="pressure-20k",
        description="20k-request synthetic memory-pressure trace at 4 GB",
        seed=7, total_requests=20_000, capacity_gb=4.0,
        policies=("TTL", "FaasCache", "CIDRE")),
    BenchScenario(
        name="pressure-100k",
        description="100k-request, 1-hour memory-pressure trace at 8 GB "
                    "(acceptance scenario of the state-index work)",
        seed=11, total_requests=100_000, duration_ms=ONE_HOUR_MS,
        capacity_gb=8.0, policies=("CIDRE",)),
    BenchScenario(
        name="azure-preset",
        description="unpressured Azure preset (no-eviction regime guard)",
        seed=1, total_requests=20_000, capacity_gb=100.0,
        policies=("TTL", "FaasCache", "CIDRE")),
    BenchScenario(
        name="azure-preset-ff",
        description="azure-preset with the idle fast-forward enabled "
                    "(dense arrivals: measures the mechanism's overhead "
                    "when there is little idle time to skip)",
        seed=1, total_requests=20_000, capacity_gb=100.0,
        policies=("TTL", "FaasCache", "CIDRE"), fast_forward=True),
    BenchScenario(
        name="sparse-8h",
        description="azure arrivals stretched over 8 hours (idle-gap "
                    "regime: periodic ticks dominate the event count)",
        seed=1, total_requests=20_000,
        duration_ms=8 * ONE_HOUR_MS, capacity_gb=100.0,
        policies=("TTL", "CIDRE")),
    BenchScenario(
        name="sparse-8h-ff",
        description="sparse-8h with the idle fast-forward enabled "
                    "(the mechanism's target regime)",
        seed=1, total_requests=20_000,
        duration_ms=8 * ONE_HOUR_MS, capacity_gb=100.0,
        policies=("TTL", "CIDRE"), fast_forward=True),
    BenchScenario(
        name="contention",
        description="memory-pressured replay under a 4-core contention "
                    "model: times the progress-based completion path "
                    "(per-transition retiming, engine reschedules)",
        seed=7, total_requests=20_000, capacity_gb=4.0,
        policies=("TTL", "CIDRE"), contention_cores=4),
    BenchScenario(
        name="resilience",
        description="2-worker replay under a seeded chaos plan (crashes, "
                    "stragglers, heterogeneity): times the fault layer's "
                    "crash-teardown and orphan-retry paths",
        seed=3, total_requests=20_000, capacity_gb=4.0, workers=2,
        chaos_seed=7, policies=("CIDRE",)),
)


def scenario_by_name(name: str) -> BenchScenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}; choose from: "
                   f"{', '.join(s.name for s in SCENARIOS)}")


@dataclass
class BenchRecord:
    """One timed replay."""

    scenario: str
    policy: str
    reference_impl: bool
    wall_s: float
    events: int
    events_per_sec: float
    requests: int
    requests_per_sec: float
    cold_ratio: float
    evictions: float
    fast_forward: bool = False

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)

    @property
    def impl(self) -> str:
        if self.reference_impl:
            return "reference"
        return "indexed+ff" if self.fast_forward else "indexed"

    def row(self) -> List[object]:
        return [self.scenario, self.policy, self.impl,
                f"{self.wall_s:.2f}", f"{self.events_per_sec:,.0f}",
                f"{self.requests_per_sec:,.0f}",
                f"{self.cold_ratio:.3f}", f"{self.evictions:.0f}"]


def measure(trace: Trace, policy_name: str, config: SimulationConfig,
            scenario_name: str = "") -> BenchRecord:
    """Time one single-run replay of ``policy_name`` over ``trace``.

    The indexed path replays from the packed (compiled) trace — the
    compile itself is excluded from the timed region, like trace
    generation. The reference path replays a fresh request list through
    the classic schedule-everything-up-front loop, as it always did.
    """
    from repro.experiments.suites import policy_factories

    policy = policy_factories()[policy_name](trace)
    orchestrator = Orchestrator(trace.functions, policy, config)
    if config.reference_impl:
        workload = trace.fresh_requests()
    else:
        workload = trace.packed()
    start = perf_counter()
    result = orchestrator.run(workload)
    wall_s = perf_counter() - start
    events = orchestrator.sim.processed
    summary = result.summary()
    return BenchRecord(
        scenario=scenario_name, policy=policy_name,
        reference_impl=config.reference_impl,
        wall_s=wall_s, events=events,
        events_per_sec=events / wall_s if wall_s > 0 else 0.0,
        requests=trace.num_requests,
        requests_per_sec=trace.num_requests / wall_s if wall_s > 0 else 0.0,
        cold_ratio=summary["cold_ratio"],
        evictions=summary["evictions"],
        fast_forward=config.fast_forward)


def run_scenario(scenario: BenchScenario,
                 reference: bool = False) -> List[BenchRecord]:
    """Run every policy of ``scenario``; optionally also the reference.

    With ``reference=True`` each policy is replayed twice — indexed then
    ``reference_impl=True`` — and their simulation outputs are asserted
    equal (the bit-identity contract; see tests/sim/test_differential_golden
    for the exhaustive version).
    """
    trace = scenario.build_trace()
    records: List[BenchRecord] = []
    for policy_name in scenario.policies:
        fast = measure(trace, policy_name, scenario.config(),
                       scenario_name=scenario.name)
        records.append(fast)
        if reference:
            slow = measure(trace, policy_name,
                           scenario.config(reference_impl=True),
                           scenario_name=scenario.name)
            records.append(slow)
            if (fast.cold_ratio, fast.evictions) != (slow.cold_ratio,
                                                     slow.evictions):
                raise AssertionError(
                    f"indexed vs reference diverged on "
                    f"{scenario.name}/{policy_name}: "
                    f"cold {fast.cold_ratio} vs {slow.cold_ratio}, "
                    f"evictions {fast.evictions} vs {slow.evictions}")
    return records


def run_suite(names: Optional[Sequence[str]] = None,
              reference: bool = False,
              fast_forward: Optional[bool] = None,
              progress=None) -> Dict[str, object]:
    """Run the named scenarios (default: all) into a JSON-ready payload.

    ``fast_forward=True`` forces the idle fast-forward on for every
    scenario (``False`` forces it off); ``None`` leaves each scenario's
    own setting in place.
    """
    scenarios = (SCENARIOS if names is None
                 else [scenario_by_name(n) for n in names])
    if fast_forward is not None:
        scenarios = [replace(s, fast_forward=fast_forward)
                     for s in scenarios]
    payload: Dict[str, object] = {"schema": SCHEMA, "scenarios": {}}
    for scenario in scenarios:
        records = run_scenario(scenario, reference=reference)
        payload["scenarios"][scenario.name] = {
            "description": scenario.description,
            "capacity_gb": scenario.capacity_gb,
            "results": [r.to_dict() for r in records],
        }
        if progress is not None:
            for record in records:
                progress(record)
    return payload


def current_commit() -> Optional[str]:
    """Short git commit hash of the working tree, or ``None``."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def append_history(payload: Dict[str, object],
                   previous: Optional[Dict[str, object]] = None,
                   commit: Optional[str] = None) -> Dict[str, object]:
    """Attach the per-run throughput trajectory to ``payload``.

    Carries ``previous``'s history forward (capped at
    ``HISTORY_LIMIT``) and appends one entry for this run: the commit
    hash and every indexed cell's events/sec. Saved baselines therefore
    record how replay throughput moved across commits, not just the
    latest point.
    """
    history: List[Dict[str, object]] = []
    if previous:
        history = list(previous.get("history", ()))
    entry = {
        "commit": commit if commit is not None else current_commit(),
        "events_per_sec": {
            f"{scenario}/{policy}": round(rec["events_per_sec"], 1)
            for (scenario, policy), rec
            in sorted(_indexed_results(payload).items())},
    }
    history.append(entry)
    payload["history"] = history[-HISTORY_LIMIT:]
    return payload


def _indexed_results(payload: Dict[str, object]
                     ) -> Dict[Tuple[str, str], Dict[str, object]]:
    out = {}
    for name, cell in payload.get("scenarios", {}).items():
        for record in cell.get("results", ()):
            if not record.get("reference_impl"):
                out[(name, record["policy"])] = record
    return out


def check_regression(current: Dict[str, object],
                     baseline: Dict[str, object],
                     factor: float = 2.0,
                     two_sided: bool = False) -> List[str]:
    """Compare two payloads; report cells outside the allowed band.

    A cell fails when its events/sec fall below ``baseline / factor``
    — and, with ``two_sided=True``, also when they exceed
    ``baseline * factor``: a large unexplained speedup means the
    committed baseline is stale (or the cell's workload silently
    shrank) and should be regenerated, otherwise it stops guarding
    anything.

    Only (scenario, policy) cells present in *both* payloads are
    compared, so a smoke run of one scenario can be checked against the
    committed full-suite baseline. Returns a list of human-readable
    failure strings (empty = pass).
    """
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    failures: List[str] = []
    base = _indexed_results(baseline)
    for key, record in sorted(_indexed_results(current).items()):
        ref = base.get(key)
        if ref is None:
            continue
        floor = ref["events_per_sec"] / factor
        ceiling = ref["events_per_sec"] * factor
        eps = record["events_per_sec"]
        if eps < floor:
            failures.append(
                f"{key[0]}/{key[1]}: {eps:,.0f} events/s < baseline "
                f"{ref['events_per_sec']:,.0f} / {factor:g} = "
                f"{floor:,.0f}")
        elif two_sided and eps > ceiling:
            failures.append(
                f"{key[0]}/{key[1]}: {eps:,.0f} events/s > baseline "
                f"{ref['events_per_sec']:,.0f} * {factor:g} = "
                f"{ceiling:,.0f} — stale baseline? regenerate it")
    return failures


def compare_payloads(current: Dict[str, object],
                     baseline: Dict[str, object]) -> List[List[object]]:
    """Per-cell delta table between two payloads (indexed cells only).

    Rows are ``[scenario, policy, baseline events/s, current events/s,
    delta %]`` sorted by cell; cells missing from the baseline show
    ``-`` (new cell), cells missing from the current run are omitted.
    """
    rows: List[List[object]] = []
    base = _indexed_results(baseline)
    for key, record in sorted(_indexed_results(current).items()):
        ref = base.get(key)
        eps = record["events_per_sec"]
        if ref is None:
            rows.append([key[0], key[1], "-", f"{eps:,.0f}", "new"])
            continue
        ref_eps = ref["events_per_sec"]
        delta = (eps - ref_eps) / ref_eps * 100.0 if ref_eps else 0.0
        rows.append([key[0], key[1], f"{ref_eps:,.0f}", f"{eps:,.0f}",
                     f"{delta:+.1f}%"])
    return rows


def load_payload(path: str) -> Dict[str, object]:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") not in ACCEPTED_SCHEMAS:
        raise ValueError(
            f"{path}: unexpected schema {payload.get('schema')!r} "
            f"(want one of {', '.join(map(repr, ACCEPTED_SCHEMAS))})")
    return payload


def save_payload(payload: Dict[str, object], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
