"""Single-run replay throughput benchmarks (events/sec, wall-clock).

The replay hot path (state indexes, lazy eviction ranking, O(1) engine
liveness) is a performance feature, so it gets a performance harness: a
small suite of named scenarios replayed single-run, timed with
``time.perf_counter`` and reported as events/sec and requests/sec next to
the headline simulation outputs (cold ratio, evictions) that prove the
run exercised the intended regime.

Scenarios
---------
``ci-smoke``
    A few seconds of memory-pressured replay; cheap enough to run on
    every CI pass (see ``scripts/ci_check.sh``).
``pressure-20k`` / ``pressure-100k``
    Synthetic memory-pressure traces (Azure-like generator at small cache
    sizes). ``pressure-100k`` is the acceptance scenario of the indexing
    work: ~100k requests over an hour at 8 GB, ~46k evictions under
    CIDRE.
``azure-preset``
    The unpressured Azure preset — guards the common no-eviction regime
    against regressions hiding behind eviction-path wins.
``resilience``
    A 2-worker replay under a seeded chaos plan (``repro.sim.faults``):
    worker crashes with orphan reassignment, straggler slowdowns, and a
    heterogeneous worker class — times the fault layer's teardown paths.

Use
---
Programmatic: :func:`run_suite` returns a JSON-ready payload;
:func:`check_regression` compares two payloads and reports scenarios
whose events/sec fell below ``baseline / factor``. Command line:
``cidre-sim bench-throughput`` or ``benchmarks/bench_replay_throughput.py``.
The committed ``BENCH_throughput.json`` at the repo root is the reference
trajectory point CI compares against.

Timing notes: trace generation is excluded from the timed region; each
policy replays fresh copies of the requests. ``reference=True`` replays
every scenario a second time with ``SimulationConfig(reference_impl=True)``
(the pre-index scan-and-sort implementations), giving a side-by-side
speedup column — results are bit-identical by construction, and
:func:`run_suite` asserts the summaries match.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.orchestrator import Orchestrator
from repro.traces.schema import Trace

SCHEMA = "repro/bench-throughput/v1"

THIRTY_MINUTES_MS = 30 * 60 * 1000.0
ONE_HOUR_MS = 60 * 60 * 1000.0


@dataclass(frozen=True)
class BenchScenario:
    """One named (trace, capacity, policy roster) benchmark cell."""

    name: str
    description: str
    preset: str = "azure"
    seed: int = 1
    total_requests: int = 20_000
    duration_ms: Optional[float] = None
    capacity_gb: float = 8.0
    policies: Tuple[str, ...] = ("CIDRE",)
    workers: int = 1
    #: When set, the cell replays under a seeded random fault plan
    #: (worker crashes, stragglers, heterogeneity) — the crash-teardown
    #: and orphan-retry paths get a timed regime of their own.
    chaos_seed: Optional[int] = None

    def build_trace(self) -> Trace:
        if self.preset == "azure":
            from repro.traces.azure import azure_trace as build
        elif self.preset == "fc":
            from repro.traces.alibaba import fc_trace as build
        else:  # pragma: no cover - config error
            raise ValueError(f"unknown preset {self.preset!r}")
        kwargs = {"seed": self.seed, "total_requests": self.total_requests}
        if self.duration_ms is not None:
            kwargs["duration_ms"] = self.duration_ms
        return build(**kwargs)

    def config(self, reference_impl: bool = False) -> SimulationConfig:
        faults = None
        if self.chaos_seed is not None:
            from repro.sim.faults import random_plan
            horizon = self.duration_ms or THIRTY_MINUTES_MS
            faults = random_plan(self.chaos_seed, workers=self.workers,
                                 horizon_ms=horizon)
        return SimulationConfig(capacity_gb=self.capacity_gb,
                                workers=self.workers,
                                reference_impl=reference_impl,
                                faults=faults)


#: The standard suite, in run order.
SCENARIOS: Tuple[BenchScenario, ...] = (
    BenchScenario(
        name="ci-smoke",
        description="small memory-pressure replay for per-PR CI smoke",
        seed=3, total_requests=6_000, capacity_gb=2.0,
        policies=("CIDRE",)),
    BenchScenario(
        name="pressure-20k",
        description="20k-request synthetic memory-pressure trace at 4 GB",
        seed=7, total_requests=20_000, capacity_gb=4.0,
        policies=("TTL", "FaasCache", "CIDRE")),
    BenchScenario(
        name="pressure-100k",
        description="100k-request, 1-hour memory-pressure trace at 8 GB "
                    "(acceptance scenario of the state-index work)",
        seed=11, total_requests=100_000, duration_ms=ONE_HOUR_MS,
        capacity_gb=8.0, policies=("CIDRE",)),
    BenchScenario(
        name="azure-preset",
        description="unpressured Azure preset (no-eviction regime guard)",
        seed=1, total_requests=20_000, capacity_gb=100.0,
        policies=("TTL", "FaasCache", "CIDRE")),
    BenchScenario(
        name="resilience",
        description="2-worker replay under a seeded chaos plan (crashes, "
                    "stragglers, heterogeneity): times the fault layer's "
                    "crash-teardown and orphan-retry paths",
        seed=3, total_requests=20_000, capacity_gb=4.0, workers=2,
        chaos_seed=7, policies=("CIDRE",)),
)


def scenario_by_name(name: str) -> BenchScenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario {name!r}; choose from: "
                   f"{', '.join(s.name for s in SCENARIOS)}")


@dataclass
class BenchRecord:
    """One timed replay."""

    scenario: str
    policy: str
    reference_impl: bool
    wall_s: float
    events: int
    events_per_sec: float
    requests: int
    requests_per_sec: float
    cold_ratio: float
    evictions: float

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)

    def row(self) -> List[object]:
        impl = "reference" if self.reference_impl else "indexed"
        return [self.scenario, self.policy, impl,
                f"{self.wall_s:.2f}", f"{self.events_per_sec:,.0f}",
                f"{self.requests_per_sec:,.0f}",
                f"{self.cold_ratio:.3f}", f"{self.evictions:.0f}"]


def measure(trace: Trace, policy_name: str, config: SimulationConfig,
            scenario_name: str = "") -> BenchRecord:
    """Time one single-run replay of ``policy_name`` over ``trace``."""
    from repro.experiments.suites import policy_factories

    policy = policy_factories()[policy_name](trace)
    orchestrator = Orchestrator(trace.functions, policy, config)
    requests = trace.fresh_requests()
    start = perf_counter()
    result = orchestrator.run(requests)
    wall_s = perf_counter() - start
    events = orchestrator.sim.processed
    summary = result.summary()
    return BenchRecord(
        scenario=scenario_name, policy=policy_name,
        reference_impl=config.reference_impl,
        wall_s=wall_s, events=events,
        events_per_sec=events / wall_s if wall_s > 0 else 0.0,
        requests=trace.num_requests,
        requests_per_sec=trace.num_requests / wall_s if wall_s > 0 else 0.0,
        cold_ratio=summary["cold_ratio"],
        evictions=summary["evictions"])


def run_scenario(scenario: BenchScenario,
                 reference: bool = False) -> List[BenchRecord]:
    """Run every policy of ``scenario``; optionally also the reference.

    With ``reference=True`` each policy is replayed twice — indexed then
    ``reference_impl=True`` — and their simulation outputs are asserted
    equal (the bit-identity contract; see tests/sim/test_differential_golden
    for the exhaustive version).
    """
    trace = scenario.build_trace()
    records: List[BenchRecord] = []
    for policy_name in scenario.policies:
        fast = measure(trace, policy_name, scenario.config(),
                       scenario_name=scenario.name)
        records.append(fast)
        if reference:
            slow = measure(trace, policy_name,
                           scenario.config(reference_impl=True),
                           scenario_name=scenario.name)
            records.append(slow)
            if (fast.cold_ratio, fast.evictions) != (slow.cold_ratio,
                                                     slow.evictions):
                raise AssertionError(
                    f"indexed vs reference diverged on "
                    f"{scenario.name}/{policy_name}: "
                    f"cold {fast.cold_ratio} vs {slow.cold_ratio}, "
                    f"evictions {fast.evictions} vs {slow.evictions}")
    return records


def run_suite(names: Optional[Sequence[str]] = None,
              reference: bool = False,
              progress=None) -> Dict[str, object]:
    """Run the named scenarios (default: all) into a JSON-ready payload."""
    scenarios = (SCENARIOS if names is None
                 else [scenario_by_name(n) for n in names])
    payload: Dict[str, object] = {"schema": SCHEMA, "scenarios": {}}
    for scenario in scenarios:
        records = run_scenario(scenario, reference=reference)
        payload["scenarios"][scenario.name] = {
            "description": scenario.description,
            "capacity_gb": scenario.capacity_gb,
            "results": [r.to_dict() for r in records],
        }
        if progress is not None:
            for record in records:
                progress(record)
    return payload


def _indexed_results(payload: Dict[str, object]
                     ) -> Dict[Tuple[str, str], Dict[str, object]]:
    out = {}
    for name, cell in payload.get("scenarios", {}).items():
        for record in cell.get("results", ()):
            if not record.get("reference_impl"):
                out[(name, record["policy"])] = record
    return out


def check_regression(current: Dict[str, object],
                     baseline: Dict[str, object],
                     factor: float = 2.0) -> List[str]:
    """Compare two payloads; report cells slower than baseline/factor.

    Only (scenario, policy) cells present in *both* payloads are
    compared, so a smoke run of one scenario can be checked against the
    committed full-suite baseline. Returns a list of human-readable
    failure strings (empty = pass).
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    failures: List[str] = []
    base = _indexed_results(baseline)
    for key, record in _indexed_results(current).items():
        ref = base.get(key)
        if ref is None:
            continue
        floor = ref["events_per_sec"] / factor
        if record["events_per_sec"] < floor:
            failures.append(
                f"{key[0]}/{key[1]}: {record['events_per_sec']:,.0f} "
                f"events/s < baseline {ref['events_per_sec']:,.0f} / "
                f"{factor:g} = {floor:,.0f}")
    return failures


def load_payload(path: str) -> Dict[str, object]:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"{path}: unexpected schema "
                         f"{payload.get('schema')!r} (want {SCHEMA!r})")
    return payload


def save_payload(payload: Dict[str, object], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
