"""Deterministic CPU-contention model (the paper's motivating interaction).

The source paper's premise is that concurrency changes performance:
co-located busy containers contend for CPU and inflate execution time,
which is why orchestration must be "concurrency-informed". A
:class:`ContentionModel` makes that interaction part of the simulation
input: each worker has a core budget, and every running execution is
slowed by a factor derived from the number of co-located in-flight
executions on its worker.

Slowdown curves
---------------
With ``busy`` in-flight executions sharing a worker of ``cores`` cores,
the default curve is::

    slowdown(busy) = max(1, busy / cores) ** alpha

``alpha = 1`` is proportional-share scheduling (perfect fair-share CPU
division once the cores are oversubscribed); ``alpha = 0`` is provably
inert (every slowdown is exactly 1.0); intermediate/overshooting alphas
model sub-linear cache pressure or super-linear thrashing. A per-function
``table`` overrides the curve: function ``f`` at concurrency ``k`` uses
``table[f][k - 1]`` (clamped to the last entry), which is how measured
interference profiles plug in.

Execution model
---------------
Orchestrator executions become *progress-based* when a model is attached
(see ``Orchestrator``): each running execution tracks remaining work, and
every concurrency transition on the worker (an execution starting or
finishing, a crash, a straggler-window boundary) settles accrued progress
at the old rate and reschedules the completion event. Straggler
``exec_multiplier`` windows (:mod:`repro.sim.faults`) multiply into the
same rate, so a mid-execution window edge changes the remaining wall time
exactly instead of being ignored.

Determinism contract
--------------------
``SimulationConfig(contention=None)`` is *inert*: the orchestrator takes
byte-identical decisions and emits a byte-identical event stream to a
build without this module. A fixed model replays bit-identically,
including under ``reference_impl=True``, the sanitizer, and the
packed/fast-forward replay (pinned by ``tests/sim/test_contention.py``).

Like :class:`~repro.sim.faults.FaultPlan`, the model is a frozen
dataclass over tuples: hashable, picklable, and JSON round-trippable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Tuple

#: Schema tag written by :meth:`ContentionModel.to_dict`.
MODEL_SCHEMA = "repro/contention-model/v1"


@dataclass(frozen=True)
class ContentionModel:
    """Per-worker CPU-contention slowdown model.

    Parameters
    ----------
    cores:
        Core budget of each worker. Up to ``cores`` concurrent
        executions run at full speed; beyond that the curve kicks in.
    alpha:
        Exponent of the default curve ``max(1, busy/cores) ** alpha``.
        ``0`` makes the model inert, ``1`` is proportional share.
    table:
        Optional per-function overrides as ``((func, (s1, s2, ...)),
        ...)``: function ``func`` at concurrency ``k`` is slowed by the
        ``k``-th factor (1-based, clamped to the last entry), replacing
        the curve entirely for that function.
    """

    cores: int = 4
    alpha: float = 1.0
    table: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "table", tuple(
            (name, tuple(factors)) for name, factors in self.table))
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.alpha < 0:
            raise ValueError("alpha must be >= 0")
        seen: Dict[str, bool] = {}
        for name, factors in self.table:
            if not name:
                raise ValueError("table entries need a function name")
            if name in seen:
                raise ValueError(f"duplicate table entry for {name!r}")
            seen[name] = True
            if not factors:
                raise ValueError(f"table entry {name!r} lists no factors")
            if any(f <= 0 for f in factors):
                raise ValueError(
                    f"table entry {name!r}: factors must be > 0")
        # Lookup cache (not a field: equality/hash/pickle use the tuple).
        object.__setattr__(self, "_lookup", dict(self.table))

    # ------------------------------------------------------------------
    # The query the orchestrator consults on every concurrency transition

    def slowdown(self, busy: int, func: str) -> float:
        """Execution-time factor for ``func`` with ``busy`` in-flight
        executions sharing the worker (``busy`` includes the execution
        being priced; always >= 1)."""
        factors = self._lookup.get(func)
        if factors is not None:
            index = busy - 1
            if index >= len(factors):
                index = len(factors) - 1
            return factors[index]
        if busy <= self.cores:
            return 1.0
        return (busy / self.cores) ** self.alpha

    # ------------------------------------------------------------------
    # JSON round trip (mirrors FaultPlan)

    def to_dict(self) -> dict:
        return {
            "schema": MODEL_SCHEMA,
            "cores": self.cores,
            "alpha": self.alpha,
            "table": {name: list(factors) for name, factors in self.table},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ContentionModel":
        schema = payload.get("schema", MODEL_SCHEMA)
        if schema != MODEL_SCHEMA:
            raise ValueError(f"unknown contention-model schema {schema!r}")
        table = payload.get("table", {})
        return cls(cores=payload.get("cores", 4),
                   alpha=payload.get("alpha", 1.0),
                   table=tuple((name, tuple(table[name]))
                               for name in sorted(table)))

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "ContentionModel":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
