"""Container state machine.

A container moves through the lifecycle::

    PROVISIONING --ready--> IDLE <--> BUSY --evict--> (gone)
                                  \\--compress--> COMPRESSED --evict--> (gone)
                                                       \\--decompress (pays
                                                         restore latency)

* ``PROVISIONING`` — a cold start in flight; memory is already reserved.
* ``IDLE`` — warm, kept alive, immediately reusable (a warm start).
* ``BUSY`` — executing one or more requests (up to ``threads``).
* ``COMPRESSED`` — CodeCrunch-style compressed state: footprint shrunk,
  reusable after paying a decompression latency.

Containers also carry the per-container bookkeeping used by priority-based
keep-alive policies (GDSF's ``clock``/``freq``, CIDRE's CIP clock).

Every transition that changes the state or the slot occupancy notifies the
hosting :class:`~repro.sim.worker.Worker` (when attached) so the worker's
per-function state indexes stay incrementally consistent — transitions are
the *only* place container state may legally change once a container is
hosted.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.function import FunctionSpec
    from repro.sim.request import Request

_container_ids = itertools.count()


def reserve_container_id() -> int:
    """Consume and return one id from the process-global counter.

    Counterfactual replays (:mod:`repro.analysis.attribution`) use this
    to learn where the next run's ids will start: the replay's first
    container gets the returned value plus one, which lets factual
    victim ids be rebased onto counterfactual ids before the run exists.
    """
    return next(_container_ids)


class ContainerState(enum.Enum):
    PROVISIONING = "provisioning"
    IDLE = "idle"
    BUSY = "busy"
    COMPRESSED = "compressed"
    EVICTED = "evicted"


class Container:
    """A warm (or warming) function container on one worker."""

    __slots__ = (
        "container_id", "spec", "state", "threads",
        "created_ms", "ready_ms", "last_used_ms", "last_idle_ms",
        "active", "clock", "reuse_count", "priority",
        "compressed_mem_fraction", "worker", "speculative", "served_any",
    )

    def __init__(self, spec: "FunctionSpec", now: float, threads: int = 1,
                 speculative: bool = False):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.container_id: int = next(_container_ids)
        self.spec = spec
        self.state = ContainerState.PROVISIONING
        self.threads = threads
        self.created_ms = now          # provisioning began
        self.ready_ms: Optional[float] = None   # provisioning finished
        self.last_used_ms = now        # recency for LRU/TTL
        self.last_idle_ms = now        # when it last became idle
        self.active: List["Request"] = []
        # Priority-policy bookkeeping (GDSF / CIP).
        self.clock = 0.0
        self.reuse_count = 0           # invocations served by this container
        self.priority = 0.0
        self.compressed_mem_fraction = 1.0
        self.worker = None             # backref set by Worker.add()
        # Whether this container was provisioned speculatively (BSS path)
        # rather than bound to a specific request; used for waste accounting.
        self.speculative = speculative
        self.served_any = False

    # ------------------------------------------------------------------
    # State predicates

    @property
    def is_provisioning(self) -> bool:
        return self.state is ContainerState.PROVISIONING

    @property
    def is_idle(self) -> bool:
        return self.state is ContainerState.IDLE

    @property
    def is_busy(self) -> bool:
        return self.state is ContainerState.BUSY

    @property
    def is_compressed(self) -> bool:
        return self.state is ContainerState.COMPRESSED

    @property
    def is_evictable(self) -> bool:
        """Only idle or compressed containers may be reclaimed."""
        return self.state in (ContainerState.IDLE, ContainerState.COMPRESSED)

    @property
    def free_slots(self) -> int:
        """Execution slots available (``threads`` minus active requests)."""
        if self.state in (ContainerState.IDLE, ContainerState.BUSY):
            return self.threads - len(self.active)
        return 0

    @property
    def memory_mb(self) -> float:
        """Current footprint (shrinks in the COMPRESSED state)."""
        return self.spec.memory_mb * self.compressed_mem_fraction

    # ------------------------------------------------------------------
    # Index notification

    def _reindex(self, old_state: ContainerState, old_mb: float) -> None:
        """Tell the hosting worker this container changed state/occupancy."""
        if self.worker is not None:
            self.worker._on_container_event(self, old_state, old_mb)

    # ------------------------------------------------------------------
    # Transitions (invoked by the orchestrator; they flip local state and
    # notify the hosting worker's indexes)

    def mark_ready(self, now: float) -> None:
        if self.state is not ContainerState.PROVISIONING:
            raise RuntimeError(f"mark_ready in state {self.state}")
        old = self.state
        self.state = ContainerState.IDLE
        self.ready_ms = now
        self.last_idle_ms = now
        self._reindex(old, self.memory_mb)

    def start_request(self, request: "Request", now: float) -> None:
        if self.free_slots <= 0:
            raise RuntimeError("no free execution slot")
        old = self.state
        self.active.append(request)
        self.state = ContainerState.BUSY
        self.last_used_ms = now
        self.reuse_count += 1
        self.served_any = True
        self._reindex(old, self.memory_mb)

    def finish_request(self, request: "Request", now: float) -> None:
        old = self.state
        self.active.remove(request)
        self.last_used_ms = now
        if not self.active:
            self.state = ContainerState.IDLE
            self.last_idle_ms = now
        self._reindex(old, self.memory_mb)

    def compress(self, mem_fraction: float) -> None:
        if self.state is not ContainerState.IDLE:
            raise RuntimeError(f"compress in state {self.state}")
        if not 0 < mem_fraction <= 1:
            raise ValueError("mem_fraction must be in (0, 1]")
        old, old_mb = self.state, self.memory_mb
        self.state = ContainerState.COMPRESSED
        self.compressed_mem_fraction = mem_fraction
        self._reindex(old, old_mb)

    def decompress(self) -> None:
        if self.state is not ContainerState.COMPRESSED:
            raise RuntimeError(f"decompress in state {self.state}")
        old, old_mb = self.state, self.memory_mb
        self.state = ContainerState.IDLE
        self.compressed_mem_fraction = 1.0
        self._reindex(old, old_mb)

    def begin_restore(self, now: float) -> None:
        """Start restoring a compressed container (CodeCrunch reuse path).

        The container re-enters PROVISIONING at full footprint; the caller
        is responsible for memory recharging and for scheduling the
        ready event after the decompression latency.
        """
        if self.state is not ContainerState.COMPRESSED:
            raise RuntimeError(f"begin_restore in state {self.state}")
        old, old_mb = self.state, self.memory_mb
        self.state = ContainerState.PROVISIONING
        self.compressed_mem_fraction = 1.0
        self.created_ms = now
        self.ready_ms = None
        self._reindex(old, old_mb)

    def abort_restore(self, mem_fraction: float) -> None:
        """Undo :meth:`begin_restore` when memory could not be freed.

        Returns the container to COMPRESSED at its previous footprint
        fraction, keeping the worker indexes consistent (the restore path
        must not mutate ``state`` directly).
        """
        if self.state is not ContainerState.PROVISIONING:
            raise RuntimeError(f"abort_restore in state {self.state}")
        old, old_mb = self.state, self.memory_mb
        self.state = ContainerState.COMPRESSED
        self.compressed_mem_fraction = mem_fraction
        self._reindex(old, old_mb)

    def mark_evicted(self) -> None:
        if self.state is ContainerState.BUSY:
            raise RuntimeError("cannot evict a busy container")
        old, old_mb = self.state, self.memory_mb
        self.state = ContainerState.EVICTED
        self._reindex(old, old_mb)

    def destroy(self) -> List["Request"]:
        """Fault-injection teardown: force EVICTED from *any* state.

        Unlike :meth:`mark_evicted` this is legal while BUSY or
        PROVISIONING — a worker crash kills executions in flight. Returns
        the requests that were active so the caller can orphan them. The
        caller must have detached ``worker`` already (a crash clears the
        worker's indexes wholesale rather than unfiling one by one).
        """
        old, old_mb = self.state, self.memory_mb
        orphans = list(self.active)
        self.active.clear()
        self.state = ContainerState.EVICTED
        self._reindex(old, old_mb)  # no-op once detached
        return orphans

    # ------------------------------------------------------------------

    @property
    def idle_ms(self) -> float:
        """Timestamp bookkeeping helper: when the container last went idle."""
        return self.last_idle_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Container #{self.container_id} {self.spec.name} "
                f"{self.state.value} active={len(self.active)}>")
