"""Simulation configuration.

One :class:`SimulationConfig` object captures every knob the paper's
evaluation turns: cache capacity (Fig. 12), intra-container threads
(Fig. 21), worker count (the §5.2 production setup), and bookkeeping
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.contention import ContentionModel
from repro.sim.faults import FaultPlan

MB_PER_GB = 1024.0


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for one simulation run.

    Parameters
    ----------
    capacity_gb:
        Total function-cache memory across all workers. The paper sweeps
        80-160 GB (Fig. 12) with 100 GB as the default (§5.5).
    workers:
        Number of servers sharing the capacity evenly. The paper's testbed
        has 3 servers; a single worker models the aggregate cache, which is
        how the paper's simulator-based analyses (§2.4) treat it.
    threads_per_container:
        Execution slots per container (Fig. 21); default 1.
    memory_sample_interval_ms:
        Period of the memory-usage sampler (Fig. 16's GB series).
    dispatch:
        ``"single"`` (one logical cache) or ``"hash"`` (requests of one
        function stick to one worker) or ``"least-loaded"``.
    seed:
        Seed for the orchestrator's :class:`random.Random` instance,
        available to stochastic policies via ``ctx.rng``. The core
        simulator never draws from it, so replays stay deterministic
        either way; ``None`` behaves like ``0``. The parallel experiment
        runner derives a distinct per-cell seed from its base ``--seed``
        so a sweep is reproducible cell-by-cell regardless of worker
        count or scheduling order.
    reference_impl:
        Run with the naive scanning reference implementations (full-heap
        liveness scans, per-call container list rebuilding, sort-based
        eviction ranking) instead of the incrementally maintained indexes.
        Results are bit-identical either way — the flag exists for the
        differential tests and for benchmarking the index speedup.
    faults:
        Optional :class:`~repro.sim.faults.FaultPlan`: scheduled worker
        crashes/restarts, straggler windows and heterogeneous worker
        classes. ``None`` (the default) keeps the fault layer provably
        inert — the event stream is bit-identical to a faults-free build.
    fast_forward:
        Skip idle gaps analytically on the packed-trace replay path: when
        nothing but periodic ticks (memory sampling, policy maintenance)
        precedes the next arrival and the policy proves its maintenance
        inert over the gap (:meth:`~repro.policies.base.
        OrchestrationPolicy.maintenance_horizon`), the ticks are replayed
        in closed form instead of through the event loop. Results are
        bit-identical either way (pinned by the differential tests); the
        flag only trades replay fidelity mechanisms for speed on sparse
        traces. Ignored under ``reference_impl`` and whenever a
        time-series recorder is attached.
    contention:
        Optional :class:`~repro.sim.contention.ContentionModel`: each
        worker gets a CPU core budget and co-located in-flight
        executions slow each other down, with completions tracked as
        remaining work rescheduled on every concurrency transition
        (progress-based execution). ``None`` (the default) keeps the
        contention layer provably inert — the event stream is
        bit-identical to a contention-free build.
    """

    capacity_gb: float = 100.0
    workers: int = 1
    threads_per_container: int = 1
    memory_sample_interval_ms: float = 1_000.0
    dispatch: str = "hash"
    seed: Optional[int] = None
    reference_impl: bool = False
    faults: Optional[FaultPlan] = None
    fast_forward: bool = False
    contention: Optional[ContentionModel] = None

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0:
            raise ValueError("capacity_gb must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.threads_per_container < 1:
            raise ValueError("threads_per_container must be >= 1")
        if self.dispatch not in ("single", "hash", "least-loaded"):
            raise ValueError(f"unknown dispatch policy {self.dispatch!r}")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError("seed must be an int or None")
        if self.faults is not None:
            self.faults.validate(self.workers)
        if (self.contention is not None
                and not isinstance(self.contention, ContentionModel)):
            raise ValueError("contention must be a ContentionModel or None")

    @property
    def capacity_mb(self) -> float:
        return self.capacity_gb * MB_PER_GB

    @property
    def per_worker_mb(self) -> float:
        return self.capacity_mb / self.workers
