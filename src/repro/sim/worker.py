"""Worker (server) model: memory accounting and container registry.

A worker hosts function containers inside a fixed memory capacity — the
"function cache" of the paper. Containers occupy memory from the moment
provisioning starts until they are evicted. Policies may additionally hold
named reservations (e.g. RainbowCake's shared warm layers) that count
against the same capacity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.sim.container import Container, ContainerState


class Worker:
    """One server in the cluster, holding warm containers in memory."""

    def __init__(self, worker_id: int, capacity_mb: float):
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        self.worker_id = worker_id
        self.capacity_mb = float(capacity_mb)
        self._used_mb = 0.0
        self.containers: Dict[int, Container] = {}
        self._by_func: Dict[str, Set[int]] = {}
        self._reservations: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Memory accounting

    @property
    def used_mb(self) -> float:
        """Memory currently committed (containers + reservations)."""
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self._used_mb

    def reserve(self, tag: str, mb: float) -> None:
        """Hold ``mb`` of memory under ``tag`` (replaces a previous hold).

        Used by layer-aware policies to account for shared warm layers that
        are not whole containers. Raises if the new total would exceed
        capacity.
        """
        if mb < 0:
            raise ValueError("reservation must be >= 0")
        delta = mb - self._reservations.get(tag, 0.0)
        if delta > self.free_mb + 1e-9:
            raise MemoryError(
                f"worker {self.worker_id}: reservation {tag} needs "
                f"{delta:.1f} MB but only {self.free_mb:.1f} free")
        self._reservations[tag] = mb
        self._used_mb += delta
        if not self._reservations[tag]:
            del self._reservations[tag]

    def reservation(self, tag: str) -> float:
        return self._reservations.get(tag, 0.0)

    # ------------------------------------------------------------------
    # Container registry

    def add(self, container: Container) -> None:
        """Admit a (provisioning) container, charging its memory."""
        need = container.memory_mb
        if need > self.free_mb + 1e-9:
            raise MemoryError(
                f"worker {self.worker_id}: container needs {need:.1f} MB "
                f"but only {self.free_mb:.1f} MB free")
        self.containers[container.container_id] = container
        self._by_func.setdefault(container.spec.name, set()).add(
            container.container_id)
        self._used_mb += need
        container.worker = self

    def remove(self, container: Container) -> None:
        """Evict a container, releasing its memory."""
        if container.container_id not in self.containers:
            raise KeyError(f"container {container.container_id} not hosted")
        del self.containers[container.container_id]
        ids = self._by_func[container.spec.name]
        ids.discard(container.container_id)
        if not ids:
            del self._by_func[container.spec.name]
        self._used_mb -= container.memory_mb
        container.mark_evicted()
        container.worker = None

    def recharge(self, container: Container, old_mb: float) -> None:
        """Adjust accounting after a container's footprint changed
        (compression / decompression)."""
        self._used_mb += container.memory_mb - old_mb

    # ------------------------------------------------------------------
    # Queries

    def of_func(self, func: str) -> List[Container]:
        """All containers (any state) of ``func`` on this worker."""
        return [self.containers[i] for i in self._by_func.get(func, ())]

    def idle_of(self, func: str) -> List[Container]:
        return [c for c in self.of_func(func) if c.is_idle]

    def busy_of(self, func: str) -> List[Container]:
        return [c for c in self.of_func(func) if c.is_busy]

    def provisioning_of(self, func: str) -> List[Container]:
        return [c for c in self.of_func(func) if c.is_provisioning]

    def compressed_of(self, func: str) -> List[Container]:
        return [c for c in self.of_func(func) if c.is_compressed]

    def warm_count(self, func: str) -> int:
        """Number of warm (idle or busy) containers of ``func`` — the
        ``|F(c)|`` term of the CIP priority (Eq. 3)."""
        return sum(1 for c in self.of_func(func)
                   if c.state in (ContainerState.IDLE, ContainerState.BUSY))

    def slot_available(self, func: str) -> Optional[Container]:
        """An idle container (or, with multi-thread containers, a busy one
        with a free slot) that can take a request *now* as a warm start.

        Prefers the most recently used candidate so that older containers
        age out, matching keep-alive practice.
        """
        best: Optional[Container] = None
        for c in self.of_func(func):
            if c.state in (ContainerState.IDLE, ContainerState.BUSY) \
                    and c.free_slots > 0:
                if best is None or c.last_used_ms > best.last_used_ms:
                    best = c
        return best

    def evictable(self) -> List[Container]:
        """All containers that may be reclaimed right now."""
        return [c for c in self.containers.values() if c.is_evictable]

    def evictable_mb(self) -> float:
        return sum(c.memory_mb for c in self.evictable())

    def all_funcs(self) -> Iterable[str]:
        return self._by_func.keys()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Worker {self.worker_id} used={self._used_mb:.0f}/"
                f"{self.capacity_mb:.0f} MB, "
                f"{len(self.containers)} containers>")
