"""Worker (server) model: memory accounting and container registry.

A worker hosts function containers inside a fixed memory capacity — the
"function cache" of the paper. Containers occupy memory from the moment
provisioning starts until they are evicted. Policies may additionally hold
named reservations (e.g. RainbowCake's shared warm layers) that count
against the same capacity.

State queries are served from **incrementally maintained indexes**: each
function keeps per-state container dicts (idle/busy/provisioning/compressed)
plus a "slotted" dict of warm containers with a free execution slot, and the
worker keeps a running evictable set, evictable-memory total and per-state
memory totals. Indexes are updated by the container state transitions in
:mod:`repro.sim.container` (which notify ``_on_container_event``), so the
hot-path queries — ``slot_available``, ``warm_count``, ``evictable_mb``,
the ``*_count`` helpers — are O(1) or O(warm-of-function) instead of
rebuilding lists by scanning every container on every call.

Ordering contract: ``containers`` (and each per-function registry) iterates
in **ascending container id** — container ids are globally monotone and a
container is admitted exactly once, right after creation. All list-returning
queries preserve that order, so priority ties in ``make_room`` break by
ascending container id in both the indexed and the naive reference path.

The pre-index scanning implementations are retained behind ``naive=True``
for differential testing; index maintenance always runs, so the two modes
answer every query identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.sim.container import Container, ContainerState

#: States a warm-start candidate may be in.
_WARM_STATES = (ContainerState.IDLE, ContainerState.BUSY)


class _FuncIndex:
    """Per-function container registry plus per-state sub-indexes."""

    __slots__ = ("members", "idle", "busy", "provisioning", "compressed",
                 "slotted")

    def __init__(self) -> None:
        #: All hosted containers of the function, ascending container id.
        self.members: Dict[int, Container] = {}
        self.idle: Dict[int, Container] = {}
        self.busy: Dict[int, Container] = {}
        self.provisioning: Dict[int, Container] = {}
        self.compressed: Dict[int, Container] = {}
        #: Warm containers with at least one free execution slot.
        self.slotted: Dict[int, Container] = {}

    def state_dict(self, state: ContainerState
                   ) -> Optional[Dict[int, Container]]:
        if state is ContainerState.IDLE:
            return self.idle
        if state is ContainerState.BUSY:
            return self.busy
        if state is ContainerState.PROVISIONING:
            return self.provisioning
        if state is ContainerState.COMPRESSED:
            return self.compressed
        return None  # EVICTED is tracked nowhere


def _in_id_order(index: Dict[int, Container]) -> List[Container]:
    """Materialize a per-state dict in ascending container-id order."""
    return [index[cid] for cid in sorted(index)]


class Worker:
    """One server in the cluster, holding warm containers in memory.

    ``usage`` is an optional shared change signal (any object with a
    ``dirty`` attribute) raised whenever this worker's ``used_mb`` changes,
    letting the orchestrator cache the cluster-wide committed-memory sum
    between changes. ``naive=True`` switches queries to the scanning
    reference implementations.
    """

    def __init__(self, worker_id: int, capacity_mb: float,
                 naive: bool = False, usage=None):
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        self.worker_id = worker_id
        self.capacity_mb = float(capacity_mb)
        self.naive = naive
        self._usage = usage
        #: False while crashed (fault injection); offline workers host
        #: nothing and receive no dispatches.
        self.online = True
        #: Worker-class name when a FaultPlan declares heterogeneity.
        self.wclass: Optional[str] = None
        self._used_mb = 0.0
        self.containers: Dict[int, Container] = {}
        self._by_func: Dict[str, _FuncIndex] = {}
        self._reservations: Dict[str, float] = {}
        #: All evictable (idle or compressed) containers, any function.
        self._evictable: Dict[int, Container] = {}
        # Generation-cached evictable-memory total. A running +=/-= float
        # would drift by ULPs from the reference's fresh ascending-id sum
        # and flip exact-boundary infeasibility checks in make_room, so the
        # total is instead *recomputed in the reference's exact summation
        # order* on the first query after a mutation and served O(1) from
        # the cache until the evictable set changes again.
        self._evictable_gen = 0
        self._evictable_mb_gen = -1
        self._evictable_mb_cache = 0.0
        self._oldest_evictable_gen = -1
        self._oldest_evictable_cache: Optional[float] = None
        #: Running memory total per container state.
        self._state_mb: Dict[ContainerState, float] = {
            state: 0.0 for state in ContainerState}

    # ------------------------------------------------------------------
    # Memory accounting

    @property
    def used_mb(self) -> float:
        """Memory currently committed (containers + reservations)."""
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self._used_mb

    def _charge(self, delta_mb: float) -> None:
        self._used_mb += delta_mb
        if self._usage is not None:
            # shard: cross-worker sets the cluster-memory dirty flag shared with the orchestrator's usage sampler
            self._usage.dirty = True

    def reserve(self, tag: str, mb: float) -> None:
        """Hold ``mb`` of memory under ``tag`` (replaces a previous hold).

        Used by layer-aware policies to account for shared warm layers that
        are not whole containers. Raises if the new total would exceed
        capacity.
        """
        if mb < 0:
            raise ValueError("reservation must be >= 0")
        delta = mb - self._reservations.get(tag, 0.0)
        if delta > self.free_mb + 1e-9:
            raise MemoryError(
                f"worker {self.worker_id}: reservation {tag} needs "
                f"{delta:.1f} MB but only {self.free_mb:.1f} free")
        self._reservations[tag] = mb
        self._charge(delta)
        if not self._reservations[tag]:
            del self._reservations[tag]

    def reservation(self, tag: str) -> float:
        return self._reservations.get(tag, 0.0)

    # ------------------------------------------------------------------
    # Container registry

    def add(self, container: Container) -> None:
        """Admit a (provisioning) container, charging its memory."""
        need = container.memory_mb
        if need > self.free_mb + 1e-9:
            raise MemoryError(
                f"worker {self.worker_id}: container needs {need:.1f} MB "
                f"but only {self.free_mb:.1f} MB free")
        cid = container.container_id
        self.containers[cid] = container
        index = self._by_func.get(container.spec.name)
        if index is None:
            index = self._by_func[container.spec.name] = _FuncIndex()
        index.members[cid] = container
        self._charge(need)
        container.worker = self
        self._file(index, container, container.state, need)

    def remove(self, container: Container) -> None:
        """Evict a container, releasing its memory."""
        cid = container.container_id
        if cid not in self.containers:
            raise KeyError(f"container {cid} not hosted")
        if container.state is ContainerState.BUSY:
            raise RuntimeError("cannot evict a busy container")
        del self.containers[cid]
        index = self._by_func[container.spec.name]
        index.members.pop(cid, None)
        self._unfile(index, container, container.state, container.memory_mb)
        if not index.members:
            del self._by_func[container.spec.name]
        self._charge(-container.memory_mb)
        # Detach before the EVICTED transition so it does not re-notify.
        container.worker = None
        container.mark_evicted()

    def recharge(self, container: Container, old_mb: float) -> None:
        """Adjust accounting after a container's footprint changed
        (compression / decompression)."""
        self._charge(container.memory_mb - old_mb)

    # ------------------------------------------------------------------
    # Fault injection

    def crash(self) -> List[Container]:
        """Destroy every hosted container and drop offline.

        Returns the victims in ascending container-id order, detached but
        *not yet* state-flipped — the caller (orchestrator) runs
        :meth:`Container.destroy` on each so it can collect the orphaned
        in-flight requests and notify the policy. Reservations are
        released too: a crashed machine keeps nothing warm.
        """
        victims = [self.containers[cid] for cid in sorted(self.containers)]
        for container in victims:
            container.worker = None     # detach: indexes die wholesale
        self.containers.clear()
        self._by_func.clear()
        self._evictable.clear()
        self._evictable_gen += 1
        self._reservations.clear()
        self._charge(-self._used_mb)
        for state in ContainerState:
            self._state_mb[state] = 0.0
        self.online = False
        return victims

    def restart(self) -> None:
        """Rejoin the cluster with an empty cache."""
        if self.online:
            raise RuntimeError(
                f"worker {self.worker_id} restarted while online")
        self.online = True

    # ------------------------------------------------------------------
    # Index maintenance

    def _file(self, index: _FuncIndex, container: Container,
              state: ContainerState, mb: float) -> None:
        """Insert ``container`` into the per-state indexes for ``state``."""
        cid = container.container_id
        bucket = index.state_dict(state)
        if bucket is not None:
            bucket[cid] = container
        if state in _WARM_STATES \
                and len(container.active) < container.threads:
            index.slotted[cid] = container
        if state in (ContainerState.IDLE, ContainerState.COMPRESSED):
            self._evictable[cid] = container
            self._evictable_gen += 1
        self._state_mb[state] += mb

    def _unfile(self, index: _FuncIndex, container: Container,
                state: ContainerState, mb: float) -> None:
        """Remove ``container`` from the per-state indexes for ``state``."""
        cid = container.container_id
        bucket = index.state_dict(state)
        if bucket is not None:
            bucket.pop(cid, None)
        index.slotted.pop(cid, None)
        if cid in self._evictable:
            del self._evictable[cid]
            self._evictable_gen += 1
        self._state_mb[state] -= mb

    def _on_container_event(self, container: Container,
                            old_state: ContainerState,
                            old_mb: float) -> None:
        """Refile a hosted container after a state/occupancy transition.

        Called from the transition methods in
        :class:`~repro.sim.container.Container`; ``old_mb`` is the footprint
        *before* the transition (compression changes it).
        """
        index = self._by_func.get(container.spec.name)
        if index is None or container.container_id not in index.members:
            return  # not registered (transition raced a removal)
        self._unfile(index, container, old_state, old_mb)
        self._file(index, container, container.state, container.memory_mb)

    def check_integrity(self) -> bool:
        """Cross-check every index against a full scan (test/debug hook).

        Raises ``AssertionError`` on the first inconsistency; returns True
        when everything matches the scanning ground truth.
        """
        evictable_ids = set()
        evictable_mb = 0.0
        state_mb = {state: 0.0 for state in ContainerState}
        seen = 0
        for func, index in self._by_func.items():
            assert index.members, f"{func}: empty index kept alive"
            expect = {
                ContainerState.IDLE: index.idle,
                ContainerState.BUSY: index.busy,
                ContainerState.PROVISIONING: index.provisioning,
                ContainerState.COMPRESSED: index.compressed,
            }
            for state, bucket in expect.items():
                truth = {c.container_id for c in index.members.values()
                         if c.state is state}
                assert set(bucket) == truth, (
                    f"{func}/{state.value}: index {sorted(bucket)} "
                    f"!= scan {sorted(truth)}")
            slotted_truth = {
                c.container_id for c in index.members.values()
                if c.state in _WARM_STATES and c.free_slots > 0}
            assert set(index.slotted) == slotted_truth, (
                f"{func}/slotted: {sorted(index.slotted)} "
                f"!= {sorted(slotted_truth)}")
            for c in index.members.values():
                assert self.containers.get(c.container_id) is c
                state_mb[c.state] += c.memory_mb
                if c.is_evictable:
                    evictable_ids.add(c.container_id)
                    evictable_mb += c.memory_mb
                seen += 1
        assert seen == len(self.containers), (
            f"registry {len(self.containers)} vs per-func {seen}")
        assert set(self._evictable) == evictable_ids
        assert self.evictable_mb() == sum(
            self.containers[cid].memory_mb
            for cid in sorted(evictable_ids)), "evictable_mb cache stale"
        for state in ContainerState:
            assert abs(self._state_mb[state] - state_mb[state]) < 1e-6, (
                f"state_mb[{state.value}] {self._state_mb[state]} "
                f"!= {state_mb[state]}")
        # Reference summation order: ascending container id, then
        # reservations in sorted-tag order (FPX discipline — the cached
        # total this checks against must be reproducible bit-for-bit).
        expect_used = (sum(self.containers[cid].memory_mb
                           for cid in sorted(self.containers))
                       + sum(mb for _, mb in
                             sorted(self._reservations.items())))
        assert abs(self._used_mb - expect_used) < 1e-6, (
            f"used_mb {self._used_mb} != containers+reservations "
            f"{expect_used}")
        return True

    # ------------------------------------------------------------------
    # Queries

    def of_func(self, func: str) -> List[Container]:
        """All containers (any state) of ``func`` on this worker."""
        index = self._by_func.get(func)
        if index is None:
            return []
        return list(index.members.values())

    def idle_of(self, func: str) -> List[Container]:
        if self.naive:
            return [c for c in self.of_func(func) if c.is_idle]
        index = self._by_func.get(func)
        return _in_id_order(index.idle) if index else []

    def busy_of(self, func: str) -> List[Container]:
        if self.naive:
            return [c for c in self.of_func(func) if c.is_busy]
        index = self._by_func.get(func)
        return _in_id_order(index.busy) if index else []

    def provisioning_of(self, func: str) -> List[Container]:
        if self.naive:
            return [c for c in self.of_func(func) if c.is_provisioning]
        index = self._by_func.get(func)
        return _in_id_order(index.provisioning) if index else []

    def compressed_of(self, func: str) -> List[Container]:
        if self.naive:
            return [c for c in self.of_func(func) if c.is_compressed]
        index = self._by_func.get(func)
        return _in_id_order(index.compressed) if index else []

    # O(1) count accessors for hot paths that only need cardinality.

    def func_count(self, func: str) -> int:
        index = self._by_func.get(func)
        return len(index.members) if index else 0

    def idle_count(self, func: str) -> int:
        index = self._by_func.get(func)
        return len(index.idle) if index else 0

    def busy_count(self, func: str) -> int:
        index = self._by_func.get(func)
        return len(index.busy) if index else 0

    def provisioning_count(self, func: str) -> int:
        index = self._by_func.get(func)
        return len(index.provisioning) if index else 0

    def compressed_count(self, func: str) -> int:
        index = self._by_func.get(func)
        return len(index.compressed) if index else 0

    def warm_count(self, func: str) -> int:
        """Number of warm (idle or busy) containers of ``func`` — the
        ``|F(c)|`` term of the CIP priority (Eq. 3). O(1)."""
        if self.naive:
            return sum(1 for c in self.of_func(func)
                       if c.state in _WARM_STATES)
        index = self._by_func.get(func)
        if index is None:
            return 0
        return len(index.idle) + len(index.busy)

    def slot_available(self, func: str) -> Optional[Container]:
        """An idle container (or, with multi-thread containers, a busy one
        with a free slot) that can take a request *now* as a warm start.

        Prefers the most recently used candidate so that older containers
        age out, matching keep-alive practice; recency ties break toward
        the oldest (lowest-id) container in both implementations.
        """
        if self.naive:
            best: Optional[Container] = None
            for c in self.of_func(func):
                if c.state in _WARM_STATES and c.free_slots > 0:
                    if best is None or c.last_used_ms > best.last_used_ms:
                        best = c
            return best
        index = self._by_func.get(func)
        if index is None or not index.slotted:
            return None
        best = None
        best_key = None
        for c in index.slotted.values():
            key = (c.last_used_ms, -c.container_id)
            if best_key is None or key > best_key:
                best, best_key = c, key
        return best

    def evictable(self) -> List[Container]:
        """All containers that may be reclaimed right now (ascending id)."""
        if self.naive:
            return [c for c in self.containers.values() if c.is_evictable]
        return _in_id_order(self._evictable)

    def evictable_items(self) -> Iterable[Container]:
        """Unordered evictable containers — for rankers whose selection
        keys on (priority, container id) and is order-independent."""
        if self.naive:
            return [c for c in self.containers.values() if c.is_evictable]
        return self._evictable.values()

    def evictable_mb(self) -> float:
        """Total reclaimable memory.

        O(1) between evictable-set changes; recomputed (ascending container
        id, matching the reference's summation order bit-for-bit) on the
        first call after a change.
        """
        if self.naive:
            return sum(c.memory_mb for c in self.evictable())
        if self._evictable_mb_gen != self._evictable_gen:
            self._evictable_mb_cache = sum(
                self._evictable[cid].memory_mb
                for cid in sorted(self._evictable))
            self._evictable_mb_gen = self._evictable_gen
        return self._evictable_mb_cache

    def oldest_evictable_ms(self) -> Optional[float]:
        """Smallest ``last_used_ms`` among evictable containers, or ``None``
        when nothing is evictable.

        O(1) between evictable-set changes: an evictable container's
        recency can only move by leaving the set (idle -> busy refiles it
        and bumps the generation), so the cached minimum stays exact
        until the generation does.
        """
        if self.naive:
            values = [c.last_used_ms for c in self.containers.values()
                      if c.is_evictable]
            return min(values) if values else None
        if self._oldest_evictable_gen != self._evictable_gen:
            self._oldest_evictable_cache = min(
                (c.last_used_ms for c in self._evictable.values()),
                default=None)
            self._oldest_evictable_gen = self._evictable_gen
        return self._oldest_evictable_cache

    def state_mb(self, state: ContainerState) -> float:
        """Running committed-memory total of containers in ``state``."""
        return self._state_mb[state]

    def all_funcs(self) -> Iterable[str]:
        return self._by_func.keys()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Worker {self.worker_id} used={self._used_mb:.0f}/"
                f"{self.capacity_mb:.0f} MB, "
                f"{len(self.containers)} containers>")
