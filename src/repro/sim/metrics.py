"""Metric collection and aggregate results.

The orchestrator records every completed request plus periodic memory-usage
samples into a :class:`MetricsCollector`; :class:`SimulationResult` wraps the
raw records with the aggregate statistics reported in the paper:

* cold / warm / delayed start ratios (Fig. 12(b,d), Table 2),
* average overhead ratio (Fig. 12(a,c), Figs 15, 17, 18, 21),
* invocation-overhead and E2E-service-time distributions (Fig. 13, 14, 19),
* average memory usage (Fig. 16),
* wasted speculative cold starts (§3.2's CSS motivation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.sim.request import Request, StartType


@dataclass
class MemorySample:
    time_ms: float
    used_mb: float


class MetricsCollector:
    """Accumulates per-request and per-sample records during a run."""

    def __init__(self) -> None:
        self.requests: List[Request] = []
        self.memory_samples: List[MemorySample] = []
        self.cold_starts_begun = 0
        self.wasted_cold_starts = 0   # speculative containers never reused
        self.evictions = 0
        self.prewarm_starts = 0
        self.restores = 0   # compressed-container restores (CodeCrunch)
        #: Total memory of all containers provisioned over the run (the
        #: Fig. 16 "memory usage" metric — it can exceed the cache size).
        self.provisioned_mb = 0.0
        # Fault-injection accounting (all stay 0 without a FaultPlan).
        self.worker_crashes = 0
        self.crash_destroyed = 0      # containers destroyed by crashes
        self.orphaned_requests = 0    # in-flight executions lost to crashes
        self.reassigned_requests = 0  # re-dispatches (retries + re-routes)
        self.failed_requests: List[Request] = []

    def record_request(self, request: Request) -> None:
        self.requests.append(request)

    def record_failed(self, request: Request) -> None:
        self.failed_requests.append(request)

    def record_memory(self, time_ms: float, used_mb: float) -> None:
        self.memory_samples.append(MemorySample(time_ms, used_mb))

    def result(self) -> "SimulationResult":
        return SimulationResult(
            requests=self.requests,
            memory_samples=self.memory_samples,
            cold_starts_begun=self.cold_starts_begun,
            wasted_cold_starts=self.wasted_cold_starts,
            evictions=self.evictions,
            prewarm_starts=self.prewarm_starts,
            restores=self.restores,
            provisioned_mb=self.provisioned_mb,
            worker_crashes=self.worker_crashes,
            crash_destroyed=self.crash_destroyed,
            orphaned_requests=self.orphaned_requests,
            reassigned_requests=self.reassigned_requests,
            failed_requests=self.failed_requests,
        )


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run."""

    requests: List[Request]
    memory_samples: List[MemorySample] = field(default_factory=list)
    cold_starts_begun: int = 0
    wasted_cold_starts: int = 0
    evictions: int = 0
    prewarm_starts: int = 0
    restores: int = 0
    provisioned_mb: float = 0.0
    # Fault-injection outcomes. ``requests`` holds only *completed*
    # requests; under a FaultPlan the arrivals partition into
    # ``requests`` + ``failed_requests`` (no silent loss).
    worker_crashes: int = 0
    crash_destroyed: int = 0
    orphaned_requests: int = 0
    reassigned_requests: int = 0
    failed_requests: List[Request] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Counts

    def count(self, start_type: StartType) -> int:
        return sum(1 for r in self.requests if r.start_type is start_type)

    @property
    def total(self) -> int:
        return len(self.requests)

    def ratio(self, start_type: StartType) -> float:
        """Fraction of requests served with ``start_type`` starts."""
        if not self.requests:
            return 0.0
        return self.count(start_type) / self.total

    @property
    def cold_start_ratio(self) -> float:
        return self.ratio(StartType.COLD)

    @property
    def warm_start_ratio(self) -> float:
        return self.ratio(StartType.WARM)

    @property
    def delayed_start_ratio(self) -> float:
        return self.ratio(StartType.DELAYED)

    # ------------------------------------------------------------------
    # Latency metrics

    def waits_ms(self) -> np.ndarray:
        """Invocation overhead (ms) for every request."""
        return np.array([r.wait_ms for r in self.requests])

    def service_times_ms(self) -> np.ndarray:
        """End-to-end service time (ms) for every request."""
        return np.array([r.service_ms for r in self.requests])

    def overhead_ratios(self) -> np.ndarray:
        return np.array([r.overhead_ratio for r in self.requests])

    @property
    def avg_overhead_ratio(self) -> float:
        """The paper's headline metric: mean of per-request
        ``wait / (wait + exec)`` (§2.4)."""
        if not self.requests:
            return 0.0
        return float(self.overhead_ratios().mean())

    @property
    def avg_wait_ms(self) -> float:
        if not self.requests:
            return 0.0
        return float(self.waits_ms().mean())

    def wait_percentile(self, q: float) -> float:
        """``q``-th percentile (0-100) of invocation overhead.

        Returns 0.0 on an empty run, like every sibling accessor."""
        if not self.requests:
            return 0.0
        return float(np.percentile(self.waits_ms(), q))

    def service_percentile(self, q: float) -> float:
        if not self.requests:
            return 0.0
        return float(np.percentile(self.service_times_ms(), q))

    # ------------------------------------------------------------------
    # Memory

    @property
    def avg_memory_mb(self) -> float:
        """Time-average of the sampled committed memory (Fig. 16).

        Trapezoidal integration over the sample timestamps, so the value
        is weighted by how long each level was held — an unweighted
        sample mean over-counts whatever level happens to be sampled
        more densely (the sampler's cadence is irregular near run end).
        Degenerate inputs (one sample, or all samples at one instant)
        fall back to the plain mean.
        """
        if not self.memory_samples:
            return 0.0
        values = [s.used_mb for s in self.memory_samples]
        if len(values) == 1:
            return float(values[0])
        times = [s.time_ms for s in self.memory_samples]
        span = times[-1] - times[0]
        if span <= 0:
            return float(np.mean(values))
        return float(np.trapezoid(values, times) / span)

    @property
    def peak_memory_mb(self) -> float:
        if not self.memory_samples:
            return 0.0
        return float(max(s.used_mb for s in self.memory_samples))

    # ------------------------------------------------------------------

    def per_function(self) -> Dict[str, "SimulationResult"]:
        """Split the result by function (keeps only request records)."""
        split: Dict[str, List[Request]] = {}
        for r in self.requests:
            split.setdefault(r.func, []).append(r)
        return {f: SimulationResult(reqs) for f, reqs in split.items()}

    def summary(self) -> Dict[str, float]:
        """A flat dict of headline numbers, handy for tables."""
        return {
            "requests": float(self.total),
            "cold_ratio": self.cold_start_ratio,
            "warm_ratio": self.warm_start_ratio,
            "delayed_ratio": self.delayed_start_ratio,
            "avg_overhead_ratio": self.avg_overhead_ratio,
            "avg_wait_ms": self.avg_wait_ms,
            "p50_wait_ms": self.wait_percentile(50),
            "p99_wait_ms": self.wait_percentile(99),
            "avg_memory_mb": self.avg_memory_mb,
            "wasted_cold_starts": float(self.wasted_cold_starts),
            "evictions": float(self.evictions),
            "worker_crashes": float(self.worker_crashes),
            "orphaned_requests": float(self.orphaned_requests),
            "reassigned_requests": float(self.reassigned_requests),
            "failed_requests": float(len(self.failed_requests)),
        }
