"""Function deployment metadata.

A :class:`FunctionSpec` describes a deployed serverless function: the memory
footprint of one of its containers, the latency of provisioning a container
from scratch (the cold-start cost), and layer metadata used by the
RainbowCake baseline's layer-wise sharing model.

Execution times are *not* part of the spec — they vary per invocation (the
paper assumes volatile execution times, §2.6) and are carried on each
:class:`repro.sim.request.Request` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LayerStack:
    """RainbowCake-style layer decomposition of a container image.

    A container is built from three stacked layers (RainbowCake §3):

    * ``bare`` — the base OS image, shareable across *all* functions;
    * ``lang`` — the language runtime, shareable across functions with the
      same ``runtime`` tag;
    * ``user`` — function code and dependencies, private to the function.

    ``*_fraction`` values split the whole-container cold-start cost and
    memory footprint across the layers; they must sum to 1.
    """

    bare_cost_fraction: float = 0.15
    lang_cost_fraction: float = 0.30
    user_cost_fraction: float = 0.55
    bare_mem_fraction: float = 0.20
    lang_mem_fraction: float = 0.35
    user_mem_fraction: float = 0.45

    def __post_init__(self) -> None:
        cost = (self.bare_cost_fraction + self.lang_cost_fraction
                + self.user_cost_fraction)
        mem = (self.bare_mem_fraction + self.lang_mem_fraction
               + self.user_mem_fraction)
        if abs(cost - 1.0) > 1e-9 or abs(mem - 1.0) > 1e-9:
            raise ValueError("layer fractions must each sum to 1.0")


DEFAULT_LAYERS = LayerStack()


@dataclass(frozen=True)
class FunctionSpec:
    """A deployed serverless function.

    Parameters
    ----------
    name:
        Unique function identifier (e.g. ``"fn-0042"``).
    memory_mb:
        Memory footprint of one warm container of this function.
    cold_start_ms:
        Latency to provision a fresh container: image pull, runtime
        initialization, code load (§2.2's definition of a cold start).
    runtime:
        Language runtime tag; RainbowCake shares ``lang`` layers between
        functions with equal tags.
    app:
        Optional application grouping (functions of one app often share
        dependencies); informational.
    layers:
        Layer decomposition for layer-aware policies.
    """

    name: str
    memory_mb: float
    cold_start_ms: float
    runtime: str = "python3.8"
    app: str = ""
    layers: LayerStack = field(default=DEFAULT_LAYERS)

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(f"{self.name}: memory_mb must be positive")
        if self.cold_start_ms < 0:
            raise ValueError(f"{self.name}: cold_start_ms must be >= 0")

    # Layer-level accessors used by RainbowCake -------------------------

    def layer_cost_ms(self, layer: str) -> float:
        """Cold-start cost attributable to ``layer`` (bare|lang|user)."""
        fraction = getattr(self.layers, f"{layer}_cost_fraction")
        return self.cold_start_ms * fraction

    def layer_mem_mb(self, layer: str) -> float:
        """Memory footprint attributable to ``layer`` (bare|lang|user)."""
        fraction = getattr(self.layers, f"{layer}_mem_fraction")
        return self.memory_mb * fraction
