"""Invocation requests and their lifecycle records.

A :class:`Request` enters the simulator at ``arrival_ms``, possibly waits
(for a cold start to finish provisioning, for a busy warm container to free
up, or for memory pressure to resolve), executes for ``exec_ms``, and
completes. The simulator fills in the outcome fields (``start_ms``,
``end_ms``, ``start_type``), from which all of the paper's metrics derive:

* invocation overhead  = ``start_ms - arrival_ms`` (wait before execution);
* overhead ratio       = ``wait / (wait + exec)`` (§2.4);
* end-to-end service time = ``end_ms - arrival_ms`` (Fig. 13).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class StartType(enum.Enum):
    """How a request's execution slot was obtained (§2.3).

    * ``WARM`` — a true warm start: dispatched immediately to an idle warm
      container (a cache *hit*).
    * ``DELAYED`` — a delayed warm start: served by a previously busy warm
      container after a queuing delay (the paper's new intermediate state).
    * ``COLD`` — served by a newly provisioned container (a cache *miss*).
    """

    WARM = "warm"
    DELAYED = "delayed"
    COLD = "cold"


@dataclass(slots=True)
class Request:
    """One function invocation.

    The first three fields come from the workload trace; the rest are
    outcome fields populated by the simulator. The class is slotted:
    request records are materialized per arrival on the packed-trace
    replay path, so per-instance dict overhead would be paid once per
    trace row per run.
    """

    func: str
    arrival_ms: float
    exec_ms: float
    req_id: int = -1

    start_ms: Optional[float] = field(default=None, compare=False)
    end_ms: Optional[float] = field(default=None, compare=False)
    start_type: Optional[StartType] = field(default=None, compare=False)
    container_id: Optional[int] = field(default=None, compare=False)
    #: Times this request was re-dispatched after a worker crash orphaned
    #: its in-flight execution (fault injection only; always 0 otherwise).
    retries: int = field(default=0, compare=False)
    #: True when the request was dropped with its retry budget exhausted
    #: (or no worker will ever come back online) — accounted, not lost.
    failed: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.exec_ms < 0:
            raise ValueError("exec_ms must be >= 0")

    # Derived metrics ----------------------------------------------------

    @property
    def completed(self) -> bool:
        """Whether the request finished executing."""
        return self.end_ms is not None

    @property
    def wait_ms(self) -> float:
        """Invocation overhead: time between arrival and execution start."""
        if self.start_ms is None:
            raise ValueError(f"request {self.req_id} never started")
        return self.start_ms - self.arrival_ms

    @property
    def service_ms(self) -> float:
        """End-to-end service time (arrival to completion, Fig. 13)."""
        if self.end_ms is None:
            raise ValueError(f"request {self.req_id} never completed")
        return self.end_ms - self.arrival_ms

    @property
    def overhead_ratio(self) -> float:
        """``wait / (wait + exec)`` — the paper's §2.4 overhead ratio.

        Zero-duration requests with zero wait have ratio 0 by convention.
        """
        wait = self.wait_ms
        denom = wait + self.exec_ms
        if denom == 0:
            return 0.0
        return wait / denom
