"""Discrete-event FaaS cluster simulation substrate."""

from repro.sim.config import SimulationConfig
from repro.sim.container import Container, ContainerState
from repro.sim.contention import ContentionModel
from repro.sim.engine import Simulator
from repro.sim.eventlog import Event, EventKind, EventLog
from repro.sim.faults import (CrashSpec, FaultPlan, RetryPolicy,
                              StragglerSpec, WorkerClassSpec, random_plan)
from repro.sim.function import FunctionSpec, LayerStack
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.sim.orchestrator import Orchestrator, simulate
from repro.sim.request import Request, StartType
from repro.sim.telemetry import (EventSink, JsonlSink, RequestSpan,
                                 RingSink, SpanBuilder,
                                 TimeSeriesRecorder, build_spans,
                                 chrome_trace, read_events_jsonl,
                                 write_chrome_trace)
from repro.sim.worker import Worker

__all__ = [
    "Container", "ContainerState", "ContentionModel", "CrashSpec",
    "Event", "EventKind",
    "EventLog", "EventSink", "FaultPlan", "FunctionSpec", "JsonlSink",
    "LayerStack", "MetricsCollector", "Orchestrator", "Request",
    "RequestSpan", "RetryPolicy", "RingSink", "SimulationConfig",
    "SimulationResult", "Simulator", "SpanBuilder", "StartType",
    "StragglerSpec", "TimeSeriesRecorder", "Worker", "WorkerClassSpec",
    "build_spans", "chrome_trace", "random_plan", "read_events_jsonl",
    "simulate", "write_chrome_trace",
]
