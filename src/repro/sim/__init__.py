"""Discrete-event FaaS cluster simulation substrate."""

from repro.sim.config import SimulationConfig
from repro.sim.container import Container, ContainerState
from repro.sim.engine import Simulator
from repro.sim.eventlog import Event, EventKind, EventLog
from repro.sim.function import FunctionSpec, LayerStack
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.sim.orchestrator import Orchestrator, simulate
from repro.sim.request import Request, StartType
from repro.sim.worker import Worker

__all__ = [
    "Container", "ContainerState", "Event", "EventKind", "EventLog",
    "FunctionSpec", "LayerStack",
    "MetricsCollector", "Orchestrator", "Request", "SimulationConfig",
    "SimulationResult", "Simulator", "StartType", "Worker", "simulate",
]
