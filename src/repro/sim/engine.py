"""Discrete-event simulation engine.

A minimal, deterministic event loop built on a binary heap. All components of
the FaaS simulator (:mod:`repro.sim.orchestrator`, policies with periodic
maintenance, metric samplers) schedule work through a single
:class:`Simulator` instance, which owns the virtual clock.

Time is measured in **milliseconds** of virtual time throughout the library.

Determinism: events that fire at the same timestamp are executed in the order
they were scheduled (a monotonically increasing sequence number breaks ties),
so a simulation with the same inputs always produces the same outputs.

Liveness bookkeeping: the simulator keeps live counters of queued events —
total non-cancelled (:meth:`Simulator.pending`) and non-cancelled
*non-periodic* ones (``_has_real_events``) — updated on push, cancel and pop.
Both queries are therefore O(1) instead of O(heap); without the counters a
periodic tick (memory sampling, policy maintenance) over a trace whose
arrivals are all scheduled up front degrades to a quadratic scan. The
counter-free scanning implementations are retained behind ``naive=True`` for
differential testing.

Arrival stream (the packed-trace fast path): instead of scheduling every
trace arrival as its own heap event up front, :meth:`Simulator.bind_stream`
attaches a sorted timestamp column replayed *outside* the heap. The run
loop merges the stream against the heap top with two documented rules that
make the merged order bit-identical to the classic all-events-up-front
schedule:

* a stream arrival fires **before** any heap event carrying the same
  timestamp — in classic mode arrivals are scheduled first and therefore
  hold the smallest sequence numbers, winning every same-time tie;
* consecutive stream entries with an identical timestamp dispatch as
  **one batch** (a single dispatch callback per distinct timestamp), in
  row order — exactly the (time, seq) order the classic schedule yields.

The heap then only ever holds the *dynamic* events (completions, readies,
retries, crashes, periodic ticks) — typically a few hundred entries
instead of one per trace row — so every push/pop is cheaper and the
up-front O(n) scheduling pass disappears. Remaining stream rows count as
real events for liveness, keeping periodic-tick self-termination
identical. :meth:`Simulator.advance_periodic` additionally lets the
orchestrator's idle fast-forward replay runs of periodic ticks
analytically (see ``SimulationConfig.fast_forward``) while burning
sequence numbers and heap order exactly as if each tick had fired.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created via :meth:`Simulator.schedule` / :meth:`Simulator.at`
    and may be cancelled before they fire. Cancelled events stay in the heap
    but are skipped when popped (lazy deletion), which keeps cancellation
    O(1). :meth:`Simulator.reschedule` moves a queued event the same way:
    the old heap entry stays behind as a *stale* entry (its stored sequence
    number no longer matches ``event.seq``) and is skipped on pop.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "real",
                 "_sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Non-periodic ("real") — cached at creation so the pop path
        #: avoids an isinstance check per event.
        self.real = True
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call multiple times."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} {name}{state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    ``naive=True`` switches :meth:`pending` and ``_has_real_events`` back to
    full-heap scans (the pre-index reference behaviour) while the counters
    keep being maintained, so the two implementations can be compared.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, fired.append, "a")
    >>> _ = sim.schedule(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10.0
    """

    def __init__(self, start_time: float = 0.0, naive: bool = False):
        self._now = float(start_time)
        # Heap entries are (time, seq, Event) tuples: ordering is
        # resolved by C-level tuple comparison (seq is unique, so the
        # Event itself is never compared), which keeps the per-event
        # heap cost free of Python-level __lt__ calls.
        self._heap: list = []
        self._seq = itertools.count()
        self._running = False
        self.naive = naive
        #: Non-cancelled events still queued (heap only; the arrival
        #: stream is accounted separately so heap-scan cross-checks stay
        #: valid).
        self._live = 0
        #: Non-cancelled, non-periodic ("real") events still queued.
        self._real = 0
        #: Events executed so far (throughput accounting; stream
        #: arrivals and analytically advanced periodic ticks count one
        #: each, exactly as their classic heap-event counterparts).
        self.processed = 0
        #: Optional arrival stream (see :meth:`bind_stream`).
        self._stream_times = None
        self._stream_dispatch = None
        self._stream_pos = 0
        self._stream_len = 0
        #: Optional idle fast-forward hook, called with the next stream
        #: arrival time when only periodic ticks precede it; returns the
        #: number of ticks it advanced analytically (0 = run normally).
        self.fast_forward_hook: Optional[Callable[[float], int]] = None

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any],
           *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now={self._now}")
        event = Event(time, next(self._seq), callback, args)
        event._sim = self
        heapq.heappush(self._heap, (time, event.seq, event))
        self._live += 1
        if isinstance(callback, _Periodic):
            event.real = False
        else:
            self._real += 1
        return event

    def every(self, interval: float, callback: Callable[..., Any],
              *args: Any,
              start_delay: Optional[float] = None) -> "_PeriodicHandle":
        """Schedule ``callback`` to run every ``interval`` ms.

        The callback keeps rescheduling itself for as long as other (non
        periodic) events remain pending, so periodic maintenance never keeps
        a simulation alive on its own. Returns a handle whose ``cancel()``
        stops the whole chain.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        handle = _PeriodicHandle(self, interval, callback, args)
        first_delay = interval if start_delay is None else start_delay
        handle.event = self.schedule(first_delay, handle)
        return handle

    def bind_stream(self, times, dispatch: Callable[[int, int], Any],
                    start: int = 0) -> None:
        """Attach a sorted arrival stream replayed outside the heap.

        ``times`` is an indexable column of non-decreasing timestamps
        (typically a packed trace's ``arrival_ms`` array);
        ``dispatch(lo, hi)`` is invoked with the clock already advanced
        to ``times[lo]`` and must process rows ``[lo, hi)`` — a maximal
        run of identical timestamps — in row order. Stream rows count as
        real events for liveness and ``processed``. See the module
        docstring for the merge rules that keep the replay bit-identical
        to scheduling every arrival up front.
        """
        if self._running:
            raise RuntimeError("cannot bind a stream while running")
        n = len(times)
        for i in range(max(start, 1), n):
            if times[i] < times[i - 1]:
                raise ValueError("stream timestamps must be non-decreasing")
        if n > start and times[start] < self._now:
            raise ValueError("stream starts in the past")
        self._stream_times = times
        self._stream_dispatch = dispatch
        self._stream_pos = start
        self._stream_len = n

    def reschedule(self, event: Event, time: float) -> None:
        """Move a queued (uncancelled, unfired) event to absolute ``time``.

        The rate-varying execution model (contention, straggler windows)
        uses this to push a completion event around as its rate changes.
        Heap entries are immutable ``(time, seq, Event)`` tuples, so the
        event cannot be moved in place: a fresh entry is pushed with a
        fresh sequence number — burning one seq, exactly like a
        fired-and-rescheduled tick — and the old entry becomes *stale*
        (its stored seq no longer equals ``event.seq``), to be skipped on
        pop like a cancelled entry. The liveness counters are untouched:
        logically the event was queued before and is queued after.
        """
        if event.cancelled:
            raise ValueError("cannot reschedule a cancelled event")
        if event._sim is not self:
            raise ValueError("event is not queued on this simulator")
        if time < self._now:
            raise ValueError(
                f"cannot reschedule at {time} before now={self._now}")
        event.time = time
        event.seq = next(self._seq)
        heapq.heappush(self._heap, (time, event.seq, event))

    def _stream_remaining(self) -> int:
        return self._stream_len - self._stream_pos

    def pending(self) -> int:
        """Number of (non-cancelled) events still queued. O(1).

        Includes undispatched arrival-stream rows: each is one future
        event, exactly as if it had been scheduled up front.
        """
        if self.naive:
            return (sum(1 for _, s, e in self._heap
                        if not e.cancelled and s == e.seq)
                    + self._stream_remaining())
        return self._live + self._stream_remaining()

    def _on_cancel(self, event: Event) -> None:
        """Counter bookkeeping for a freshly cancelled queued event."""
        self._live -= 1
        if event.real:
            self._real -= 1

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queues drain or virtual time passes ``until``.

        Only "real" events count toward liveness: periodic events scheduled
        via :meth:`every` stop rescheduling once they are the only thing
        left, so ``run()`` terminates.

        When an arrival stream is bound (:meth:`bind_stream`) the loop
        merges it against the heap: a stream row wins every same-timestamp
        tie, and equal-timestamp rows dispatch as one batch in row order
        (see the module docstring for why this is bit-identical to the
        classic all-events-up-front schedule).
        """
        self._running = True
        heap = self._heap
        try:
            while True:
                si = self._stream_pos
                if si < self._stream_len:
                    times = self._stream_times
                    t_arr = times[si]
                    if not heap or t_arr <= heap[0][0]:
                        # Stream arrival(s) fire next.
                        if until is not None and t_arr > until:
                            self._now = until
                            return
                        n = self._stream_len
                        j = si + 1
                        while j < n and times[j] == t_arr:
                            j += 1
                        self._stream_pos = j
                        self._now = t_arr
                        self.processed += j - si
                        self._stream_dispatch(si, j)
                        continue
                    # Heap events strictly precede the next arrival. If
                    # they are all periodic ticks, offer the gap to the
                    # fast-forward hook; a zero return means the hook
                    # declined and the ticks run normally below.
                    if (self.fast_forward_hook is not None
                            and until is None and self._real == 0
                            and self.fast_forward_hook(t_arr)):
                        continue
                if not heap:
                    break
                entry = heapq.heappop(heap)
                event = entry[2]
                if event.cancelled:
                    # Counters were adjusted when cancel() ran.
                    continue
                if entry[1] != event.seq:
                    # Stale entry left behind by reschedule(): the event
                    # lives on under its newer (time, seq) entry.
                    continue
                if until is not None and event.time > until:
                    # Put it back: the caller may resume later. The event
                    # stays queued, so the counters are untouched.
                    heapq.heappush(heap, entry)
                    self._now = until
                    return
                if event.time < self._now:  # pragma: no cover - invariant
                    raise RuntimeError("event time went backwards")
                self._live -= 1
                if event.real:
                    self._real -= 1
                # Detach so a late cancel() of an already-fired event (e.g.
                # a periodic handle cancelled after its last tick) cannot
                # decrement the counters a second time.
                event._sim = None
                self._now = event.time
                self.processed += 1
                event.callback(*event.args)
        finally:
            self._running = False

    def advance_periodic(self, boundary: float, replay: dict) -> int:
        """Replay periodic ticks strictly before ``boundary`` analytically.

        The caller (the orchestrator's idle fast-forward hook) guarantees
        that every live heap event before ``boundary`` is a periodic tick
        whose :class:`_PeriodicHandle` is a key of ``replay``. Each mapped
        value is either ``None`` — the tick is provably a no-op over the
        gap — or a cheap callable invoked in its place (it must not
        schedule events). Per tick the clock, ``processed`` counter and
        one sequence number are advanced exactly as if the tick had fired
        through :meth:`run`, and the handle's next tick is rescheduled at
        ``time + interval`` by reusing the popped entry — so heap contents
        and every future (time, seq) tie-break stay bit-identical to the
        classic run. A tick scheduled exactly at ``boundary`` is left to
        fire normally. Encountering an event whose callback is not in
        ``replay`` aborts the skip; the run loop then proceeds normally.

        Returns the number of ticks advanced.
        """
        heap = self._heap
        advanced = 0
        while heap and heap[0][0] < boundary:
            time0, seq0, event = heap[0]
            if event.cancelled or seq0 != event.seq:
                # Cancelled or stale-after-reschedule: lazy-deleted here
                # exactly as the run loop would.
                heapq.heappop(heap)
                continue
            handle = event.callback
            if handle not in replay:
                break
            heapq.heappop(heap)
            self._now = time0
            self.processed += 1
            advanced += 1
            if handle.stopped:
                # Mirrors the classic pop of a stopped-but-uncancelled
                # tick: it fires as a no-op and does not reschedule.
                self._live -= 1
                event._sim = None
                continue
            fn = replay[handle]
            if fn is not None:
                fn()
            # Reschedule by reusing the popped entry: net counter change
            # is zero (one pop, one push), matching the classic tick.
            event.time = time0 + handle.interval
            event.seq = next(self._seq)
            heapq.heappush(heap, (event.time, event.seq, event))
            handle.event = event
        return advanced

    def _has_real_events(self) -> bool:
        # Undispatched stream rows are future real events: periodic
        # self-termination must not kick in while arrivals remain.
        if self._stream_pos < self._stream_len:
            return True
        if self.naive:
            return any(not e.cancelled and s == e.seq
                       and not isinstance(e.callback, _Periodic)
                       for _, s, e in self._heap)
        return self._real > 0

    def _scan_counts(self) -> tuple:
        """(live, real) recomputed by scanning — test/debug cross-check.

        Stale entries left behind by :meth:`reschedule` are excluded:
        like cancelled entries they occupy heap slots but no longer
        represent a queued event.
        """
        live = sum(1 for _, s, e in self._heap
                   if not e.cancelled and s == e.seq)
        real = sum(1 for _, s, e in self._heap
                   if not e.cancelled and s == e.seq
                   and not isinstance(e.callback, _Periodic))
        return live, real


class _Periodic:
    """Marker type for periodic callbacks (see Simulator._has_real_events)."""


class _PeriodicHandle(_Periodic):
    """Self-rescheduling wrapper created by :meth:`Simulator.every`."""

    __slots__ = ("sim", "interval", "callback", "args", "event", "stopped")

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[..., Any], args: tuple):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.event: Optional[Event] = None
        self.stopped = False

    @property
    def __name__(self) -> str:  # pragma: no cover - debug aid
        return f"periodic:{getattr(self.callback, '__name__', '?')}"

    def cancel(self) -> None:
        """Stop the periodic chain; pending firings are dropped."""
        self.stopped = True
        if self.event is not None:
            self.event.cancel()

    def __call__(self) -> None:
        if self.stopped:
            return
        # Run (and reschedule) only while non-periodic work remains;
        # otherwise a periodic task would keep the simulation alive forever
        # and tick past the end of the workload.
        if not self.sim._has_real_events():
            return
        self.callback(*self.args)
        self.event = self.sim.schedule(self.interval, self)
