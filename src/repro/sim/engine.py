"""Discrete-event simulation engine.

A minimal, deterministic event loop built on a binary heap. All components of
the FaaS simulator (:mod:`repro.sim.orchestrator`, policies with periodic
maintenance, metric samplers) schedule work through a single
:class:`Simulator` instance, which owns the virtual clock.

Time is measured in **milliseconds** of virtual time throughout the library.

Determinism: events that fire at the same timestamp are executed in the order
they were scheduled (a monotonically increasing sequence number breaks ties),
so a simulation with the same inputs always produces the same outputs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created via :meth:`Simulator.schedule` / :meth:`Simulator.at`
    and may be cancelled before they fire. Cancelled events stay in the heap
    but are skipped when popped (lazy deletion), which keeps cancellation
    O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call multiple times."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} {name}{state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, fired.append, "a")
    >>> _ = sim.schedule(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10.0
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any],
           *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now={self._now}")
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def every(self, interval: float, callback: Callable[..., Any],
              *args: Any,
              start_delay: Optional[float] = None) -> "_PeriodicHandle":
        """Schedule ``callback`` to run every ``interval`` ms.

        The callback keeps rescheduling itself for as long as other (non
        periodic) events remain pending, so periodic maintenance never keeps
        a simulation alive on its own. Returns a handle whose ``cancel()``
        stops the whole chain.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        handle = _PeriodicHandle(self, interval, callback, args)
        first_delay = interval if start_delay is None else start_delay
        handle.event = self.schedule(first_delay, handle)
        return handle

    def pending(self) -> int:
        """Number of (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap drains or virtual time passes ``until``.

        Only "real" events count toward liveness: periodic events scheduled
        via :meth:`every` stop rescheduling once they are the only thing
        left, so ``run()`` terminates.
        """
        self._running = True
        try:
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if until is not None and event.time > until:
                    # Put it back: the caller may resume later.
                    heapq.heappush(self._heap, event)
                    self._now = until
                    return
                if event.time < self._now:  # pragma: no cover - invariant
                    raise RuntimeError("event time went backwards")
                self._now = event.time
                event.callback(*event.args)
        finally:
            self._running = False

    def _has_real_events(self) -> bool:
        return any(not e.cancelled and not isinstance(e.callback, _Periodic)
                   for e in self._heap)


class _Periodic:
    """Marker type for periodic callbacks (see Simulator._has_real_events)."""


class _PeriodicHandle(_Periodic):
    """Self-rescheduling wrapper created by :meth:`Simulator.every`."""

    __slots__ = ("sim", "interval", "callback", "args", "event", "stopped")

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[..., Any], args: tuple):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.event: Optional[Event] = None
        self.stopped = False

    @property
    def __name__(self) -> str:  # pragma: no cover - debug aid
        return f"periodic:{getattr(self.callback, '__name__', '?')}"

    def cancel(self) -> None:
        """Stop the periodic chain; pending firings are dropped."""
        self.stopped = True
        if self.event is not None:
            self.event.cancel()

    def __call__(self) -> None:
        if self.stopped:
            return
        # Run (and reschedule) only while non-periodic work remains;
        # otherwise a periodic task would keep the simulation alive forever
        # and tick past the end of the workload.
        if not self.sim._has_real_events():
            return
        self.callback(*self.args)
        self.event = self.sim.schedule(self.interval, self)
