"""Discrete-event simulation engine.

A minimal, deterministic event loop built on a binary heap. All components of
the FaaS simulator (:mod:`repro.sim.orchestrator`, policies with periodic
maintenance, metric samplers) schedule work through a single
:class:`Simulator` instance, which owns the virtual clock.

Time is measured in **milliseconds** of virtual time throughout the library.

Determinism: events that fire at the same timestamp are executed in the order
they were scheduled (a monotonically increasing sequence number breaks ties),
so a simulation with the same inputs always produces the same outputs.

Liveness bookkeeping: the simulator keeps live counters of queued events —
total non-cancelled (:meth:`Simulator.pending`) and non-cancelled
*non-periodic* ones (``_has_real_events``) — updated on push, cancel and pop.
Both queries are therefore O(1) instead of O(heap); without the counters a
periodic tick (memory sampling, policy maintenance) over a trace whose
arrivals are all scheduled up front degrades to a quadratic scan. The
counter-free scanning implementations are retained behind ``naive=True`` for
differential testing.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created via :meth:`Simulator.schedule` / :meth:`Simulator.at`
    and may be cancelled before they fire. Cancelled events stay in the heap
    but are skipped when popped (lazy deletion), which keeps cancellation
    O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing. Safe to call multiple times."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} {name}{state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    ``naive=True`` switches :meth:`pending` and ``_has_real_events`` back to
    full-heap scans (the pre-index reference behaviour) while the counters
    keep being maintained, so the two implementations can be compared.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, fired.append, "a")
    >>> _ = sim.schedule(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10.0
    """

    def __init__(self, start_time: float = 0.0, naive: bool = False):
        self._now = float(start_time)
        # Heap entries are (time, seq, Event) tuples: ordering is
        # resolved by C-level tuple comparison (seq is unique, so the
        # Event itself is never compared), which keeps the per-event
        # heap cost free of Python-level __lt__ calls.
        self._heap: list = []
        self._seq = itertools.count()
        self._running = False
        self.naive = naive
        #: Non-cancelled events still queued.
        self._live = 0
        #: Non-cancelled, non-periodic ("real") events still queued.
        self._real = 0
        #: Events executed so far (throughput accounting).
        self.processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any],
           *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now={self._now}")
        event = Event(time, next(self._seq), callback, args)
        event._sim = self
        heapq.heappush(self._heap, (time, event.seq, event))
        self._live += 1
        if not isinstance(callback, _Periodic):
            self._real += 1
        return event

    def every(self, interval: float, callback: Callable[..., Any],
              *args: Any,
              start_delay: Optional[float] = None) -> "_PeriodicHandle":
        """Schedule ``callback`` to run every ``interval`` ms.

        The callback keeps rescheduling itself for as long as other (non
        periodic) events remain pending, so periodic maintenance never keeps
        a simulation alive on its own. Returns a handle whose ``cancel()``
        stops the whole chain.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        handle = _PeriodicHandle(self, interval, callback, args)
        first_delay = interval if start_delay is None else start_delay
        handle.event = self.schedule(first_delay, handle)
        return handle

    def pending(self) -> int:
        """Number of (non-cancelled) events still queued. O(1)."""
        if self.naive:
            return sum(1 for _, _, e in self._heap if not e.cancelled)
        return self._live

    def _on_cancel(self, event: Event) -> None:
        """Counter bookkeeping for a freshly cancelled queued event."""
        self._live -= 1
        if not isinstance(event.callback, _Periodic):
            self._real -= 1

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap drains or virtual time passes ``until``.

        Only "real" events count toward liveness: periodic events scheduled
        via :meth:`every` stop rescheduling once they are the only thing
        left, so ``run()`` terminates.
        """
        self._running = True
        try:
            while self._heap:
                entry = heapq.heappop(self._heap)
                event = entry[2]
                if event.cancelled:
                    # Counters were adjusted when cancel() ran.
                    continue
                if until is not None and event.time > until:
                    # Put it back: the caller may resume later. The event
                    # stays queued, so the counters are untouched.
                    heapq.heappush(self._heap, entry)
                    self._now = until
                    return
                if event.time < self._now:  # pragma: no cover - invariant
                    raise RuntimeError("event time went backwards")
                self._live -= 1
                if not isinstance(event.callback, _Periodic):
                    self._real -= 1
                # Detach so a late cancel() of an already-fired event (e.g.
                # a periodic handle cancelled after its last tick) cannot
                # decrement the counters a second time.
                event._sim = None
                self._now = event.time
                self.processed += 1
                event.callback(*event.args)
        finally:
            self._running = False

    def _has_real_events(self) -> bool:
        if self.naive:
            return any(not e.cancelled
                       and not isinstance(e.callback, _Periodic)
                       for _, _, e in self._heap)
        return self._real > 0

    def _scan_counts(self) -> tuple:
        """(live, real) recomputed by scanning — test/debug cross-check."""
        live = sum(1 for _, _, e in self._heap if not e.cancelled)
        real = sum(1 for _, _, e in self._heap
                   if not e.cancelled
                   and not isinstance(e.callback, _Periodic))
        return live, real


class _Periodic:
    """Marker type for periodic callbacks (see Simulator._has_real_events)."""


class _PeriodicHandle(_Periodic):
    """Self-rescheduling wrapper created by :meth:`Simulator.every`."""

    __slots__ = ("sim", "interval", "callback", "args", "event", "stopped")

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[..., Any], args: tuple):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.event: Optional[Event] = None
        self.stopped = False

    @property
    def __name__(self) -> str:  # pragma: no cover - debug aid
        return f"periodic:{getattr(self.callback, '__name__', '?')}"

    def cancel(self) -> None:
        """Stop the periodic chain; pending firings are dropped."""
        self.stopped = True
        if self.event is not None:
            self.event.cancel()

    def __call__(self) -> None:
        if self.stopped:
            return
        # Run (and reschedule) only while non-periodic work remains;
        # otherwise a periodic task would keep the simulation alive forever
        # and tick past the end of the workload.
        if not self.sim._has_real_events():
            return
        self.callback(*self.args)
        self.event = self.sim.schedule(self.interval, self)
