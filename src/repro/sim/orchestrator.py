"""The FaaS control plane: request routing, speculative scaling, eviction.

:class:`Orchestrator` wires together the event engine, the worker pool, a
pluggable :class:`~repro.policies.base.OrchestrationPolicy`, and the metric
collector. It implements the mechanism of the paper's Figure 11:

* arrivals are first matched against idle warm containers (true warm starts,
  Step 1a);
* requests that find none are routed by the policy's scaling decision
  (Step 1b): a bound cold start, the delayed-warm-start queue, or both
  simultaneously (speculative scaling);
* a per-function FIFO of *waiters* is drained work-conservingly by whichever
  execution slot becomes available first — a finishing busy container
  (Step 2a, a delayed warm start) or a completed provision (Step 2b, a cold
  start);
* provisioning claims memory up front; when the cache is full the policy's
  ``make_room`` evicts lowest-priority idle containers (Step 2c, the
  ``REPLACE`` subroutine), and provisions that still cannot fit wait in a
  pending queue retried whenever capacity may have freed.

The orchestrator is deliberately policy-agnostic: CIDRE, FaasCache, TTL and
every other baseline differ only in the policy object plugged in.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.container import Container, ContainerState
from repro.sim.engine import Simulator
from repro.sim.eventlog import EventKind, EventLog
from repro.sim.faults import CrashSpec
from repro.sim.function import FunctionSpec
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.sim.request import Request, StartType
from repro.sim.worker import Worker
from repro.policies.base import (OrchestrationPolicy, ScalingAction,
                                 ScalingDecision)


@dataclass
class _Waiter:
    """A queued request waiting for an execution slot."""

    request: Request
    may_use_busy: bool
    #: Busy container this waiter committed to (bounded-queue what-if).
    committed: Optional[Container] = None
    #: Provisioning container dedicated to this waiter (vanilla cold start).
    bound: Optional[Container] = None
    served: bool = False


class _ClusterUsage:
    """Change signal for cluster-wide committed memory.

    Each :class:`~repro.sim.worker.Worker` raises ``dirty`` whenever its
    ``used_mb`` changes; the periodic memory sampler then re-sums the
    workers only on ticks where something actually moved and serves a
    cached total otherwise. The cache holds the *same* worker-order sum as
    the naive per-tick recomputation (never a delta-accumulated float), so
    sampled values are bit-identical between the two modes.
    """

    __slots__ = ("dirty",)

    def __init__(self) -> None:
        self.dirty = True


@dataclass
class _PendingProvision:
    """A provision that could not claim memory yet."""

    spec: FunctionSpec
    worker: Worker
    waiter: Optional[_Waiter]
    speculative: bool
    prewarm: bool = False
    abandoned: bool = False


class _ExecProgress:
    """Progress ledger for one running execution (progress mode).

    ``remaining_ms`` is the work left in trace-time units as of
    ``settled_ms``; the completion event sits at ``settled_ms +
    remaining_ms * slowdown`` and is rescheduled whenever the rate
    changes. Settlement is deferred while the rate is constant — progress
    accrues linearly, so settling only at rate changes is exact and
    keeps single-rate executions free of float re-derivations.
    """

    __slots__ = ("request", "container", "event", "remaining_ms",
                 "slowdown", "settled_ms", "slowed")

    def __init__(self, request: Request, container: Container, event,
                 remaining_ms: float, slowdown: float,
                 settled_ms: float) -> None:
        self.request = request
        self.container = container
        self.event = event
        self.remaining_ms = remaining_ms
        self.slowdown = slowdown
        self.settled_ms = settled_ms
        #: Whether any rate other than exactly 1.0 ever applied — gates
        #: the EXEC_END slowdown annotation so inert models stay
        #: byte-identical to contention-free runs.
        self.slowed = slowdown != 1.0


class Orchestrator:
    """Simulates a FaaS cluster under one orchestration policy.

    Parameters
    ----------
    functions:
        The deployed functions (must cover every function in the trace).
    policy:
        The orchestration policy under test.
    config:
        Cluster shape and knobs.
    """

    def __init__(self, functions: Iterable[FunctionSpec],
                 policy: OrchestrationPolicy,
                 config: Optional[SimulationConfig] = None,
                 event_log: Optional["EventLog"] = None,
                 recorder=None, audit=None, metrics=None,
                 attribution=None):
        self.config = config or SimulationConfig()
        self.policy = policy
        #: Seeded RNG for stochastic policies (``ctx.rng``). The core
        #: mechanism never draws from it, so runs are deterministic
        #: functions of (trace, policy, config) with or without a seed.
        self.rng = random.Random(
            0 if self.config.seed is None else self.config.seed)
        #: Reference (scanning) implementations everywhere when True.
        self._naive = self.config.reference_impl
        self.sim = Simulator(naive=self._naive)
        self.metrics = MetricsCollector()
        self.event_log = event_log
        #: Optional :class:`repro.sim.telemetry.TimeSeriesRecorder` (any
        #: object with ``interval_ms``/``note_start``/``sample``/
        #: ``finish``). Strictly read-only observation: attaching one
        #: never changes simulation outcomes.
        self.recorder = recorder
        #: Optional :class:`repro.obs.DecisionAudit` /
        #: :class:`repro.obs.MetricsRegistry`. Like the recorder, strictly
        #: read-only: attaching either never changes simulation outcomes
        #: (pinned by ``tests/obs/test_audit_differential.py``).
        self.audit = audit
        self.metrics_registry = metrics
        #: Optional :class:`repro.obs.attribution.CauseTracker`. Stamps
        #: every PROVISION_START detail with its proximate cause
        #: (``first-invocation`` / ``eviction:<id>`` / ...). Read-only
        #: beyond that one detail suffix: attribution-off runs are
        #: byte-identical to a build without the tracker (pinned by
        #: ``tests/obs/test_attribution_differential.py``).
        self.attribution = attribution
        self._m_requests = self._m_starts = self._m_decisions = None
        self._m_evictions = self._m_provisions = self._m_blocked = None
        self._m_wait = self._m_used = None
        self._m_crashes = self._m_orphaned = None
        self._m_reassigned = self._m_failed = None
        self._m_slowdown = None
        if metrics is not None:
            self._instrument(metrics)
        self.specs: Dict[str, FunctionSpec] = {f.name: f for f in functions}
        self._usage = _ClusterUsage()
        self._used_mb_cache = 0.0
        #: The fault schedule, or None. Every fault-layer code path below
        #: is gated on this being set, keeping faults-off runs
        #: bit-identical to a build without the fault layer.
        self._faults = self.config.faults
        if self._faults is None:
            capacities = [self.config.per_worker_mb] * self.config.workers
        else:
            capacities = [
                self._faults.worker_capacity_mb(i, self.config.per_worker_mb)
                for i in range(self.config.workers)]
        self._workers: List[Worker] = [
            Worker(i, capacities[i], naive=self._naive, usage=self._usage)
            for i in range(self.config.workers)
        ]
        if self._faults is not None:
            # shard: cross-worker init-time worker-class assignment, before any shard runs
            for worker in self._workers:
                cls = self._faults.class_of(worker.worker_id)
                if cls is not None:
                    worker.wclass = cls.name
        # Every function must fit every worker: crashes and dispatch
        # filtering mean any function can land on any (online) worker.
        floor_mb = min(capacities)
        for spec in self.specs.values():
            if spec.memory_mb > floor_mb:
                raise ValueError(
                    f"{spec.name} needs {spec.memory_mb} MB but each worker "
                    f"has only {floor_mb} MB")
        #: The CPU-contention model, or None. Gated exactly like
        #: ``_faults``: contention-off runs take byte-identical code
        #: paths to a build without the contention layer.
        self._contention = self.config.contention
        #: Progress-based completions are needed whenever execution
        #: rates can change mid-flight: under a contention model, or
        #: under straggler windows that scale execution time (whose
        #: mid-window edges the sampled-once model silently ignored).
        self._progress = (self._contention is not None
                          or (self._faults is not None
                              and self._faults.has_exec_stragglers()))
        #: req_id -> live progress ledger (progress mode only).
        self._execs: Dict[int, _ExecProgress] = {}
        #: worker_id -> {req_id -> ledger} of co-located executions, in
        #: start order (dict insertion order is the deterministic
        #: iteration order for retiming).
        self._worker_execs: Dict[int, Dict[int, _ExecProgress]] = {}
        #: worker_id -> armed straggler-window boundary event.
        self._rate_events: Dict[int, object] = {}
        #: req_id -> in-flight execution event (fault layer only; lets a
        #: crash cancel the completions of destroyed containers in O(1)).
        self._exec_events: Dict[int, object] = {}
        #: container_id -> (ready event, bound waiter) for provisions and
        #: restores in flight (fault layer only).
        self._provision_events: Dict[int, tuple] = {}
        #: Pending restart times of currently-offline workers.
        self._restart_times: List[float] = []
        self._waiters: Dict[str, Deque[_Waiter]] = {}
        self._unserved: Dict[str, int] = {}
        self._committed: Dict[int, Deque[_Waiter]] = {}
        self._pending: List[_PendingProvision] = []
        self._pending_by_func: Dict[str, int] = {}
        self._retry_scheduled = False
        #: Packed-trace replay state (set by :meth:`run`).
        self._packed = None
        self._materialized: List[Request] = []
        #: Idle fast-forward state (set by :meth:`run` when enabled).
        self._ff_replay: Dict = {}
        self._ff_maintenance = None
        if audit is not None:
            policy.audit = audit
        if metrics is not None:
            policy.metrics = metrics
        policy.bind(self)

    def _instrument(self, metrics) -> None:
        """Pre-register the orchestrator's instruments (hot-path handles)."""
        self._m_requests = metrics.counter(
            "repro_requests_total", "Requests replayed")
        self._m_starts = metrics.counter(
            "repro_starts_total", "Execution starts by start type",
            labelnames=("type",))
        self._m_decisions = metrics.counter(
            "repro_scale_decisions_total",
            "Validated scaling decisions (excludes the warm-start and "
            "compressed-restore fast paths)", labelnames=("action",))
        self._m_evictions = metrics.counter(
            "repro_evictions_total", "Evictions by function",
            labelnames=("func",))
        self._m_provisions = metrics.counter(
            "repro_provision_starts_total",
            "Provisions begun, by kind", labelnames=("kind",))
        self._m_blocked = metrics.counter(
            "repro_blocked_provisions_total",
            "Provisions deferred because make_room could not free memory")
        self._m_wait = metrics.histogram(
            "repro_request_wait_ms",
            "Per-request wait between arrival and execution start")
        self._m_used = metrics.gauge(
            "repro_used_mb", "Cluster committed memory at the last sample")
        self._m_crashes = metrics.counter(
            "repro_worker_crashes_total",
            "Injected worker crashes (fault layer)")
        self._m_orphaned = metrics.counter(
            "repro_requests_orphaned_total",
            "In-flight requests orphaned by worker crashes")
        self._m_reassigned = metrics.counter(
            "repro_requests_reassigned_total",
            "Requests re-dispatched after losing their worker")
        self._m_failed = metrics.counter(
            "repro_requests_failed_total",
            "Requests dropped with the crash-retry budget exhausted")
        self._m_slowdown = metrics.histogram(
            "repro_contention_slowdown",
            "Realized execution slowdown (wall time over trace exec_ms) "
            "under the CPU-contention model",
            buckets=(1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0))

    # ==================================================================
    # PolicyContext facade

    @property
    def now(self) -> float:
        return self.sim.now

    def workers(self) -> List[Worker]:
        # shard: cross-worker pool accessor: policies enumerate all workers in maintenance
        return self._workers

    def spec_of(self, func: str) -> FunctionSpec:
        return self.specs[func]

    def outstanding_waiters(self, func: str) -> int:
        return self._unserved.get(func, 0)

    def waiting_functions(self) -> List[str]:
        """Functions with at least one unserved queued request."""
        return [func for func, count in self._unserved.items() if count]

    def provisions_in_flight(self, func: str) -> int:
        """Containers of ``func`` being provisioned *or* waiting for memory
        to start provisioning. The scaling policies use this to avoid
        re-provisioning for a backlog that is already covered."""
        if self._naive:
            started = sum(len(w.provisioning_of(func))
                          # shard: cross-worker provision count aggregated across the whole pool
                          for w in self._workers)
        else:
            started = sum(w.provisioning_count(func)
                          # shard: cross-worker provision count aggregated across the whole pool
                          for w in self._workers)
        return started + self._pending_by_func.get(func, 0)

    def speculate_for(self, func: str) -> bool:
        """Provision one unbound speculative container for ``func``.

        Used by CSS's queue re-evaluation (§4: the policy evaluates the
        outstanding request at the head of the channel and may decide to
        start a container for it after all). Returns False when the
        provision had to be deferred for memory.
        """
        if self._faults is not None and not self._any_online():
            return False
        worker = self._dispatch(func)
        container = self._provision(self.specs[func], worker, waiter=None,
                                    speculative=True)
        return container is not None

    def oldest_waiter_age_ms(self, func: str) -> float:
        queue = self._waiters.get(func)
        if not queue:
            return 0.0
        while queue and queue[0].served:
            queue.popleft()
        for waiter in queue:
            if not waiter.served:
                return self.sim.now - waiter.request.arrival_ms
        return 0.0

    def evict(self, container: Container,
              decision_id: Optional[int] = None) -> None:
        """Reclaim an evictable container (policy-triggered or REPLACE).

        ``decision_id`` carries the audited REPLACE decision the eviction
        belongs to (``make_room`` passes it through). Policy-direct
        evictions — TTL expiry, keep-alive decay, prewarm reclaim — come
        in without one; when an audit is attached the orchestrator mints
        a ``scale_down`` record so attribution can blame them too.
        """
        worker = container.worker
        if worker is None:
            return
        cause_kind = "eviction" if decision_id is not None else "scale-down"
        if decision_id is None and self.audit is not None:
            decision_id = self.audit.emit({
                "kind": "scale_down",
                "t": self.sim.now,
                "wid": worker.worker_id,
                "cid": container.container_id,
                "func": container.spec.name,
                "mem_mb": container.memory_mb,
                "idle_ms": self.sim.now - container.last_idle_ms,
            })
        if container.speculative and not container.served_any:
            self.metrics.wasted_cold_starts += 1
        worker.remove(container)
        # Drop any bounded-queue commitments against the dead container —
        # the waiters themselves stay in their function FIFO.
        self._committed.pop(container.container_id, None)
        self.metrics.evictions += 1
        if self._m_evictions is not None:
            self._m_evictions.labels(func=container.spec.name).inc()
        if self.attribution is not None:
            self.attribution.note_removal(container.spec.name, cause_kind,
                                          decision_id)
        self._log(EventKind.EVICTION, container.spec.name,
                  container_id=container.container_id,
                  worker_id=worker.worker_id)
        self.policy.on_eviction([container], self.sim.now)

    def compress(self, container: Container, mem_fraction: float) -> None:
        """CodeCrunch-style: shrink an idle container instead of evicting."""
        worker = container.worker
        old_mb = container.memory_mb
        container.compress(mem_fraction)
        worker.recharge(container, old_mb)
        self._log(EventKind.COMPRESSION, container.spec.name,
                  container_id=container.container_id,
                  worker_id=worker.worker_id if worker else None)

    def prewarm(self, spec: FunctionSpec, worker: Worker) -> bool:
        """Provision a container ahead of demand (IceBreaker / ENSURE)."""
        if self._faults is not None and not worker.online:
            return False
        if not self.policy.make_room(worker, spec.memory_mb, self.sim.now,
                                     for_func=spec.name):
            return False
        self._begin_provision(spec, worker, waiter=None, speculative=False,
                              prewarm=True)
        return True

    # ==================================================================
    # Public driver

    def run(self, requests) -> SimulationResult:
        """Replay a workload and return the result.

        ``requests`` is either a sequence of :class:`Request` objects or a
        :class:`~repro.traces.packed.PackedTrace`. A packed trace streams
        its arrivals straight off the flat columns (one heap event per
        *dynamic* event only) and materializes request records lazily at
        dispatch; under ``reference_impl`` it is materialized up front and
        replayed through the classic all-events-scheduled path instead.
        Both paths are bit-identical (pinned by the differential tests).
        """
        packed = requests if getattr(requests, "is_packed", False) else None
        if packed is not None and not self._naive:
            for name in packed.func_names:
                if name not in self.specs:
                    raise KeyError(
                        f"request targets unknown function {name}")
            self._packed = packed
            # Filled in arrival order by _dispatch_batch; rows share
            # req_id == row index, so this ends up identical to the
            # classic path's ``ordered`` list.
            ordered = self._materialized = []
            self.sim.bind_stream(packed.arrival_ms, self._dispatch_batch)
        else:
            if packed is not None:
                requests = packed.materialize_all()
            ordered = sorted(requests, key=lambda r: (r.arrival_ms, r.req_id))
            for i, req in enumerate(ordered):
                if req.req_id < 0:
                    req.req_id = i
                if req.func not in self.specs:
                    raise KeyError(
                        f"request targets unknown function {req.func}")
                self.sim.at(req.arrival_ms, self._on_arrival, req)
        if self._faults is not None:
            for crash in self._faults.crashes_sorted():
                self.sim.at(crash.at_ms, self._on_worker_crash, crash)
        sampler = maintenance = None
        if self.config.memory_sample_interval_ms > 0:
            sampler = self.sim.every(self.config.memory_sample_interval_ms,
                                     self._sample_memory, start_delay=0.0)
        if self.policy.maintenance_interval_ms:
            maintenance = self.sim.every(self.policy.maintenance_interval_ms,
                                         self._run_maintenance)
        if self.recorder is not None:
            self.sim.every(self.recorder.interval_ms,
                           self.recorder.sample, self, start_delay=0.0)
        if (self.config.fast_forward and not self._naive
                and self.recorder is None):
            # Replay table for analytically advanced idle-gap ticks: the
            # sampler re-runs its (cheap, cache-served) callback so the
            # time series stays sample-for-sample identical; maintenance
            # ticks are proven no-ops by the policy's horizon and skip
            # the policy call entirely. The recorder is never replayed —
            # attaching one disables fast-forward outright.
            self._ff_maintenance = maintenance
            replay = {}
            if sampler is not None:
                replay[sampler] = self._sample_memory
            if maintenance is not None:
                replay[maintenance] = None
            self._ff_replay = replay
            self.sim.fast_forward_hook = self._fast_forward
        self.sim.run()
        self._finalize(ordered)
        return self.metrics.result()

    def _dispatch_batch(self, lo: int, hi: int) -> None:
        """Arrival-stream dispatch: materialize and admit rows [lo, hi).

        Called by the engine with the clock already at the rows' shared
        arrival time; per-row processing is exactly :meth:`_on_arrival`,
        so the replay is step-for-step identical to the classic path.
        """
        packed = self._packed
        materialized = self._materialized
        on_arrival = self._on_arrival
        for i in range(lo, hi):
            request = packed.materialize(i)
            materialized.append(request)
            on_arrival(request)

    def _fast_forward(self, next_arrival: float) -> int:
        """Idle fast-forward hook (see ``SimulationConfig.fast_forward``).

        The engine calls this only when undispatched stream rows remain,
        no real (non-periodic) heap events exist, and at least one
        periodic tick precedes ``next_arrival``. Skipping is sound only
        when additionally (a) no blocked provision is waiting — each
        maintenance tick would otherwise schedule a retry — and (b) the
        policy proves its maintenance inert up to a horizon. Returns the
        number of ticks advanced (0 = run the gap through the event
        loop).
        """
        if self._pending:
            return 0
        boundary = next_arrival
        if self._ff_maintenance is not None:
            horizon = self.policy.maintenance_horizon(self.sim.now)
            if horizon is None:
                return 0
            if horizon < boundary:
                boundary = horizon
        if boundary <= self.sim.now:
            return 0
        return self.sim.advance_periodic(boundary, self._ff_replay)

    # ==================================================================
    # Arrival path

    def _on_arrival(self, request: Request) -> None:
        if self._faults is not None and not self._any_online():
            self._defer_or_fail(request, self._on_arrival)
            return
        now = self.sim.now
        worker = self._dispatch(request.func)
        self._log(EventKind.ARRIVAL, request.func, req_id=request.req_id,
                  worker_id=worker.worker_id)
        if self._m_requests is not None:
            self._m_requests.inc()
        self.policy.on_request_arrival(request, worker, now)
        self._route(request, worker)

    def _route(self, request: Request, worker: Worker) -> None:
        """Match ``request`` against warm capacity or the scaling policy
        (shared by fresh arrivals and crash reassignments)."""
        now = self.sim.now
        # Step 1a: true warm start on an idle container / free slot.
        candidate = worker.slot_available(request.func)
        if candidate is not None:
            self._start_exec(candidate, request, StartType.WARM)
            return

        # CodeCrunch path: restore a compressed container of this function
        # at a fraction of the cold-start cost.
        if getattr(self.policy, "reuse_compressed", False):
            compressed = worker.compressed_of(request.func)
            if compressed:
                target = max(compressed, key=lambda c: c.last_used_ms)
                if self._begin_restore(target, request, worker):
                    return

        # Step 1b: no idle capacity — consult the scaling policy.
        decision = self.policy.scale(request, worker, now)
        decision = self._validate_decision(decision, request, worker)
        if self._m_decisions is not None:
            self._m_decisions.labels(action=decision.action.value).inc()
        waiter = _Waiter(request,
                         may_use_busy=decision.action is not ScalingAction.COLD,
                         committed=decision.target)
        self._enqueue_waiter(waiter)
        if decision.target is not None:
            self._committed.setdefault(
                decision.target.container_id, deque()).append(waiter)

        if decision.action in (ScalingAction.COLD, ScalingAction.SPECULATE):
            speculative = decision.action is ScalingAction.SPECULATE
            bound = None if speculative else waiter
            self._provision(self.specs[request.func], worker,
                            waiter=bound, speculative=speculative)

    def _validate_decision(self, decision: ScalingDecision, request: Request,
                           worker: Worker) -> ScalingDecision:
        """Queue-only decisions need someone to eventually serve the waiter;
        otherwise escalate to a cold start."""
        if decision.action is not ScalingAction.QUEUE:
            return decision
        func = request.func
        if self._naive:
            has_supply = (bool(worker.busy_of(func))
                          or bool(worker.provisioning_of(func)))
        else:
            has_supply = (worker.busy_count(func) > 0
                          or worker.provisioning_count(func) > 0)
        if not has_supply:
            return ScalingDecision.cold()
        if decision.target is not None and not decision.target.is_busy:
            return ScalingDecision.queue()
        return decision

    # ==================================================================
    # Fault injection (every path below requires self._faults)

    def _any_online(self) -> bool:
        # shard: cross-worker cluster-liveness probe over the whole pool
        for worker in self._workers:
            if worker.online:
                return True
        return False

    def _next_restart(self) -> Optional[float]:
        return min(self._restart_times) if self._restart_times else None

    def _defer_or_fail(self, request: Request, callback) -> None:
        """Nothing is online: park ``request`` until the next restart, or
        fail it when no worker will ever come back."""
        restart_at = self._next_restart()
        if restart_at is None:
            self._fail_request(request, "no-online-workers")
        else:
            # The restart event was scheduled at crash time, so it holds
            # an earlier sequence number and fires first at restart_at.
            self.sim.at(restart_at, callback, request)

    def _fail_request(self, request: Request, detail: str,
                      worker_id: Optional[int] = None) -> None:
        request.failed = True
        self._log(EventKind.REQUEST_ORPHANED, request.func,
                  req_id=request.req_id, detail=detail, worker_id=worker_id)
        self.metrics.record_failed(request)
        if self._m_failed is not None:
            self._m_failed.inc()

    def _on_worker_crash(self, crash: CrashSpec) -> None:
        # shard: cross-worker fault plan addresses workers by global id
        worker = self._workers[crash.worker_id]
        if not worker.online:
            return  # plan crashed a worker that is already down
        now = self.sim.now
        self._log(EventKind.WORKER_CRASH, "", worker_id=worker.worker_id,
                  detail=f"containers={len(worker.containers)}")
        self.metrics.worker_crashes += 1
        if self._m_crashes is not None:
            self._m_crashes.inc()
        if crash.restart_delay_ms is not None:
            restart_at = now + crash.restart_delay_ms
            self._restart_times.append(restart_at)
            self.sim.at(restart_at, self._on_worker_restart, worker)
        victims = worker.crash()
        self.metrics.crash_destroyed += len(victims)
        if self.attribution is not None:
            self.attribution.note_crash(c.spec.name for c in victims)
        orphans: List[Request] = []
        rebind: List[_Waiter] = []
        for container in victims:
            if container.speculative and not container.served_any:
                self.metrics.wasted_cold_starts += 1
            orphans.extend(container.destroy())
            entry = self._provision_events.pop(container.container_id, None)
            if entry is not None:
                event, waiter = entry
                event.cancel()
                if waiter is not None and not waiter.served:
                    waiter.bound = None
                    rebind.append(waiter)
            committed = self._committed.pop(container.container_id, None)
            if committed is not None:
                for waiter in committed:
                    waiter.committed = None
        self.policy.on_worker_crash(worker, victims, now)
        retry = self._faults.retry
        for request in orphans:
            event = self._exec_events.pop(request.req_id, None)
            if event is not None:
                event.cancel()
            self.metrics.orphaned_requests += 1
            if self._m_orphaned is not None:
                self._m_orphaned.inc()
            if request.retries < retry.max_retries:
                request.retries += 1
                request.start_ms = None
                request.start_type = None
                request.container_id = None
                self._log(EventKind.REQUEST_ORPHANED, request.func,
                          req_id=request.req_id, worker_id=worker.worker_id,
                          detail="exec:retry")
                self.sim.schedule(retry.retry_delay_ms, self._on_reassigned,
                                  request)
            else:
                self._fail_request(request, "exec:exhausted",
                                   worker_id=worker.worker_id)
        if self._progress:
            self._drop_progress_worker(worker.worker_id)
        for waiter in rebind:
            self._rebind_waiter(waiter)
        # Blocked provisions aimed at the dead worker move to a live one;
        # if nothing is online they stay put until a restart retries them.
        if self._any_online():
            for pend in self._pending:
                if pend.worker is worker and not pend.abandoned:
                    pend.worker = self._dispatch(pend.spec.name)
        self._rescue_starved()

    def _on_worker_restart(self, worker: Worker) -> None:
        now = self.sim.now
        self._restart_times.remove(now)
        worker.restart()
        self._log(EventKind.WORKER_RESTART, "", worker_id=worker.worker_id)
        self.policy.on_worker_restart(worker, now)
        if self._pending:
            self._schedule_retry()

    def _on_reassigned(self, request: Request) -> None:
        """Re-dispatch an orphaned (or starved) request as a fresh demand
        signal on a surviving worker."""
        if request.failed:  # pragma: no cover - defensive
            return
        if not self._any_online():
            self._defer_or_fail(request, self._on_reassigned)
            return
        now = self.sim.now
        worker = self._dispatch(request.func)
        self._log(EventKind.REQUEST_REASSIGNED, request.func,
                  req_id=request.req_id, worker_id=worker.worker_id,
                  detail=f"attempt{request.retries}")
        self.metrics.reassigned_requests += 1
        if self._m_reassigned is not None:
            self._m_reassigned.inc()
        # A reassignment is a new arrival from the policy's perspective:
        # frequency/popularity statistics should see the extra demand.
        self.policy.on_request_arrival(request, worker, now)
        self._route(request, worker)

    def _rebind_waiter(self, waiter: _Waiter) -> None:
        """Restart the cold start for a waiter whose bound provisioning
        container died with its worker (no retry budget consumed — the
        request never began executing)."""
        if waiter.served:  # pragma: no cover - defensive
            return
        request = waiter.request
        if not self._any_online():
            restart_at = self._next_restart()
            if restart_at is None:
                waiter.served = True
                self._unserved[request.func] -= 1
                self._fail_request(request, "no-online-workers")
            else:
                self.sim.at(restart_at, self._rebind_waiter, waiter)
            return
        worker = self._dispatch(request.func)
        self._log(EventKind.REQUEST_REASSIGNED, request.func,
                  req_id=request.req_id, worker_id=worker.worker_id,
                  detail="provision")
        self.metrics.reassigned_requests += 1
        if self._m_reassigned is not None:
            self._m_reassigned.inc()
        self._provision(self.specs[request.func], worker, waiter=waiter,
                        speculative=False)

    def _supply_of(self, func: str) -> int:
        """Execution-slot sources that can still serve ``func`` waiters:
        blocked + in-flight provisions and busy containers on online
        workers."""
        count = self._pending_by_func.get(func, 0)
        # shard: cross-worker supply count aggregates slots across the whole pool
        for worker in self._workers:
            if not worker.online:
                continue
            if self._naive:
                count += (len(worker.busy_of(func))
                          + len(worker.provisioning_of(func)))
            else:
                count += (worker.busy_count(func)
                          + worker.provisioning_count(func))
        return count

    def _rescue_starved(self) -> None:
        """Re-route queued waiters whose entire supply died in the crash.

        A QUEUE-decision waiter relies on busy/provisioning containers of
        its function; when the crash destroyed the last of them nothing
        will ever drain the FIFO. Such waiters are marked served and
        re-enter through the reassignment path (no retry budget consumed).
        """
        for func in sorted(self.waiting_functions()):
            if self._supply_of(func) > 0:
                continue
            queue = self._waiters.get(func)
            if not queue:
                continue
            for waiter in list(queue):
                if waiter.served or waiter.bound is not None:
                    continue
                waiter.served = True
                self._unserved[func] -= 1
                self.sim.schedule(0.0, self._on_reassigned, waiter.request)

    # ==================================================================
    # Provisioning path

    def _provision(self, spec: FunctionSpec, worker: Worker,
                   waiter: Optional[_Waiter], speculative: bool,
                   prewarm: bool = False) -> Optional[Container]:
        if not self.policy.make_room(worker, spec.memory_mb, self.sim.now,
                                     for_func=spec.name):
            self._pending.append(_PendingProvision(
                spec, worker, waiter, speculative, prewarm))
            self._pending_by_func[spec.name] = \
                self._pending_by_func.get(spec.name, 0) + 1
            if self._m_blocked is not None:
                self._m_blocked.inc()
            return None
        return self._begin_provision(spec, worker, waiter, speculative,
                                     prewarm)

    def _begin_provision(self, spec: FunctionSpec, worker: Worker,
                         waiter: Optional[_Waiter], speculative: bool,
                         prewarm: bool) -> Container:
        now = self.sim.now
        cost = self.policy.provision_cost_ms(spec, worker, now)
        container = Container(spec, now,
                              threads=self.config.threads_per_container,
                              speculative=speculative)
        worker.add(container)
        if waiter is not None:
            waiter.bound = container
        if prewarm:
            self.metrics.prewarm_starts += 1
        else:
            self.metrics.cold_starts_begun += 1
        self.metrics.provisioned_mb += container.memory_mb
        kind = "prewarm" if prewarm \
            else ("speculative" if speculative else "bound")
        detail = kind
        if self.attribution is not None:
            cause = self.attribution.begin_provision(spec.name)
            detail = f"{kind} cause={cause}"
        self._log(EventKind.PROVISION_START, spec.name,
                  container_id=container.container_id, detail=detail,
                  worker_id=worker.worker_id)
        if self._m_provisions is not None:
            self._m_provisions.labels(kind=kind).inc()
        self.policy.on_provision_started(container, now)
        if self._faults is not None:
            # Integrate the cold rate across straggler-window edges
            # instead of freezing the factor sampled at dispatch: a
            # window that ends (or begins) mid-provision changes the
            # remaining wall time. With no edge straddled this is the
            # single sampled multiply, bit-for-bit.
            event = self.sim.at(
                self._faults.cold_finish_ms(worker.worker_id, now, cost),
                self._on_ready, container, waiter)
            self._provision_events[container.container_id] = (event, waiter)
        else:
            event = self.sim.schedule(cost, self._on_ready, container,
                                      waiter)
        return container

    def _begin_restore(self, container: Container, request: Request,
                       worker: Worker) -> bool:
        """Decompress ``container`` to serve ``request`` (CodeCrunch).

        Returns False (leaving the container compressed) when the extra
        memory for the full footprint cannot be freed.
        """
        now = self.sim.now
        old_mb = container.memory_mb
        delta = container.spec.memory_mb - old_mb
        container.begin_restore(now)  # not evictable while we make room
        if not self.policy.make_room(worker, delta, now,
                                     for_func=request.func):
            container.abort_restore(old_mb / container.spec.memory_mb)
            return False
        worker.recharge(container, old_mb)
        self._log(EventKind.RESTORE_START, request.func,
                  container_id=container.container_id,
                  req_id=request.req_id, worker_id=worker.worker_id)
        waiter = _Waiter(request, may_use_busy=False, bound=container)
        self._enqueue_waiter(waiter)
        self.metrics.restores += 1
        cost = self.policy.restore_cost_ms(container.spec)
        if self._faults is not None:
            # Same piecewise integration as _begin_provision.
            event = self.sim.at(
                self._faults.cold_finish_ms(worker.worker_id, now, cost),
                self._on_ready, container, waiter)
            self._provision_events[container.container_id] = (event, waiter)
        else:
            event = self.sim.schedule(cost, self._on_ready, container,
                                      waiter)
        return True

    def _on_ready(self, container: Container,
                  waiter: Optional[_Waiter]) -> None:
        if self._faults is not None:
            self._provision_events.pop(container.container_id, None)
        if container.state is ContainerState.EVICTED:  # pragma: no cover
            return
        now = self.sim.now
        container.mark_ready(now)
        self._log(EventKind.CONTAINER_READY, container.spec.name,
                  container_id=container.container_id,
                  worker_id=container.worker.worker_id
                  if container.worker else None)
        self.policy.on_container_ready(container, now)
        if waiter is not None and not waiter.served:
            self._serve(container, waiter, StartType.COLD)
        # Unbound (speculative / prewarmed) containers pick up the oldest
        # queued request of their function; with multi-slot containers a
        # fresh container can absorb several.
        while container.free_slots > 0:
            pending = self._next_unbound_waiter(container.spec.name)
            if pending is None:
                break
            self._serve(container, pending, StartType.COLD)
        # A container that comes up idle is newly *evictable* memory —
        # the provisioning -> ready transition is the only evictability
        # change without a retry hook, and a blocked provision could
        # otherwise stay stuck forever once arrivals stop.
        if self._pending:
            self._schedule_retry()

    # ==================================================================
    # Execution path

    def _enqueue_waiter(self, waiter: _Waiter) -> None:
        func = waiter.request.func
        self._waiters.setdefault(func, deque()).append(waiter)
        self._unserved[func] = self._unserved.get(func, 0) + 1

    def _serve(self, container: Container, waiter: _Waiter,
               start_type: StartType) -> None:
        waiter.served = True
        self._unserved[waiter.request.func] -= 1
        if (waiter.committed is not None
                and waiter.committed is not container):
            # Served elsewhere: trim dead references from the ends of the
            # committed deque so long bounded-queue runs do not accumulate
            # served waiters (popping served entries never changes what
            # ``_next_waiter_for`` returns — it skips them anyway).
            self._trim_committed(waiter.committed.container_id)
        self._start_exec(container, waiter.request, start_type)

    def _trim_committed(self, container_id: int) -> None:
        queue = self._committed.get(container_id)
        if queue is None:
            return
        while queue and queue[0].served:
            queue.popleft()
        while queue and queue[-1].served:
            queue.pop()
        if not queue:
            del self._committed[container_id]

    def _start_exec(self, container: Container, request: Request,
                    start_type: StartType) -> None:
        now = self.sim.now
        request.start_ms = now
        request.start_type = start_type
        request.container_id = container.container_id
        self._log(EventKind.EXEC_START, request.func,
                  container_id=container.container_id,
                  req_id=request.req_id, detail=start_type.value,
                  worker_id=container.worker.worker_id
                  if container.worker else None)
        if self.recorder is not None:
            self.recorder.note_start(request.func, start_type.value, now)
        if self._m_starts is not None:
            self._m_starts.labels(type=start_type.value).inc()
        container.start_request(request, now)
        if start_type is StartType.WARM:
            self.policy.on_warm_start(container, request, now)
        elif start_type is StartType.DELAYED:
            self.policy.on_delayed_start(container, request, now)
        else:
            self.policy.on_cold_start(container, request, now)
        if self._progress and container.worker is not None:
            self._begin_progress_exec(container, request)
            return
        exec_ms = request.exec_ms
        if self._faults is not None and container.worker is not None:
            exec_ms = exec_ms * self._faults.exec_multiplier(
                container.worker.worker_id, now)
        event = self.sim.schedule(exec_ms, self._on_complete, container,
                                  request)
        if self._faults is not None:
            self._exec_events[request.req_id] = event

    def _on_complete(self, container: Container, request: Request) -> None:
        now = self.sim.now
        if self._faults is not None:
            self._exec_events.pop(request.req_id, None)
        state = (self._finish_progress_exec(request, container)
                 if self._progress else None)
        container.finish_request(request, now)
        request.end_ms = now
        detail = ""
        if self._contention is not None:
            realized = ((now - request.start_ms) / request.exec_ms
                        if request.exec_ms > 0 else 1.0)
            if self._m_slowdown is not None:
                self._m_slowdown.observe(realized)
            if state is not None and state.slowed:
                detail = f"slowdown={realized!r}"
        self._log(EventKind.EXEC_END, request.func,
                  container_id=container.container_id,
                  req_id=request.req_id, detail=detail,
                  worker_id=container.worker.worker_id
                  if container.worker else None)
        self.metrics.record_request(request)
        if self._m_wait is not None:
            self._m_wait.observe(request.wait_ms)
        self.policy.on_request_complete(container, request, now)
        # Step 2a: the vacant slot serves queued waiters — first those
        # committed to this container, then the function's FIFO.
        while container.free_slots > 0:
            waiter = self._next_waiter_for(container)
            if waiter is None:
                break
            self._serve(container, waiter, StartType.DELAYED)
        # Memory may now be reclaimable: retry blocked provisions.
        if self._pending:
            self._schedule_retry()

    # ==================================================================
    # Progress-based execution (contention / rate-varying stragglers)

    def _slowdown(self, worker_id: int, func: str, busy: int,
                  now: float) -> float:
        """Execution-rate factor for one execution of ``func`` sharing
        its worker with ``busy`` total in-flight executions at ``now``."""
        if self._contention is not None:
            factor = self._contention.slowdown(busy, func)
        else:
            factor = 1.0
        if self._faults is not None:
            factor = factor * self._faults.exec_multiplier(worker_id, now)
        return factor

    def _begin_progress_exec(self, container: Container,
                             request: Request) -> None:
        now = self.sim.now
        worker_id = container.worker.worker_id
        table = self._worker_execs.setdefault(worker_id, {})
        busy = len(table) + 1
        # Settle the neighbours first: their rates change the instant
        # this execution joins the worker.
        self._retime_worker(worker_id, busy, now)
        slowdown = self._slowdown(worker_id, request.func, busy, now)
        event = self.sim.schedule(request.exec_ms * slowdown,
                                  self._on_complete, container, request)
        state = _ExecProgress(request, container, event,
                              request.exec_ms, slowdown, now)
        table[request.req_id] = state
        self._execs[request.req_id] = state
        if self._faults is not None:
            self._exec_events[request.req_id] = event
            self._arm_rate_boundary(worker_id)

    def _retime_worker(self, worker_id: int, busy: int,
                       now: float) -> None:
        """Settle progress and reschedule the completion of every running
        execution on ``worker_id`` under its new concurrency ``busy``."""
        table = self._worker_execs.get(worker_id)
        if not table:
            return
        for state in table.values():
            slowdown = self._slowdown(worker_id, state.request.func,
                                      busy, now)
            if slowdown == state.slowdown:
                continue  # rate unchanged: settlement can stay deferred
            elapsed = now - state.settled_ms
            if elapsed > 0.0:
                remaining = state.remaining_ms - elapsed / state.slowdown
                state.remaining_ms = remaining if remaining > 0.0 else 0.0
            state.settled_ms = now
            state.slowdown = slowdown
            if slowdown != 1.0:
                state.slowed = True
            self.sim.reschedule(state.event,
                                now + state.remaining_ms * slowdown)

    def _finish_progress_exec(self, request: Request,
                              container: Container) -> Optional[_ExecProgress]:
        """Retire a completed execution's ledger and retime its
        (now less-contended) neighbours."""
        state = self._execs.pop(request.req_id, None)
        if state is None:  # pragma: no cover - defensive
            return None
        worker = container.worker
        if worker is not None:
            table = self._worker_execs.get(worker.worker_id)
            if table is not None:
                table.pop(request.req_id, None)
                self._retime_worker(worker.worker_id, len(table),
                                    self.sim.now)
                if not table:
                    self._disarm_rate_boundary(worker.worker_id)
        return state

    def _arm_rate_boundary(self, worker_id: int) -> None:
        """Wake up at the next straggler-window edge that changes
        ``worker_id``'s execution rate (fault layer only). Armed only
        while executions are running there — an edge over an idle worker
        affects nothing until the next start samples the rate fresh."""
        if worker_id in self._rate_events:
            return
        edge = self._faults.next_exec_boundary(worker_id, self.sim.now)
        if edge is None:
            return
        self._rate_events[worker_id] = self.sim.at(
            edge, self._on_rate_boundary, worker_id)

    def _on_rate_boundary(self, worker_id: int) -> None:
        self._rate_events.pop(worker_id, None)
        table = self._worker_execs.get(worker_id)
        if table:
            self._retime_worker(worker_id, len(table), self.sim.now)
            self._arm_rate_boundary(worker_id)

    def _disarm_rate_boundary(self, worker_id: int) -> None:
        event = self._rate_events.pop(worker_id, None)
        if event is not None:
            event.cancel()

    def _drop_progress_worker(self, worker_id: int) -> None:
        """Forget progress state for a crashed worker (the completion
        events themselves are cancelled through ``_exec_events``)."""
        table = self._worker_execs.pop(worker_id, None)
        if table:
            for req_id in table:
                self._execs.pop(req_id, None)
        self._disarm_rate_boundary(worker_id)

    # ==================================================================
    # Waiter queues

    def _next_waiter_for(self, container: Container) -> Optional[_Waiter]:
        """Oldest unserved waiter this vacant container may serve."""
        committed = self._committed.get(container.container_id)
        if committed is not None:
            while committed:
                waiter = committed.popleft()
                if not waiter.served:
                    return waiter
            del self._committed[container.container_id]
        return self._next_unbound_waiter(container.spec.name)

    def _next_unbound_waiter(self, func: str) -> Optional[_Waiter]:
        """Oldest unserved, uncommitted waiter allowed to use any slot."""
        queue = self._waiters.get(func)
        if not queue:
            return None
        # Trim served waiters off the front to keep scans short.
        while queue and queue[0].served:
            queue.popleft()
        for waiter in queue:
            if (not waiter.served and waiter.may_use_busy
                    and waiter.committed is None and waiter.bound is None):
                return waiter
        return None

    # ==================================================================
    # Blocked provisions

    def _schedule_retry(self) -> None:
        if not self._retry_scheduled:
            self._retry_scheduled = True
            self.sim.schedule(0.0, self._retry_pending)

    def _retry_pending(self) -> None:
        self._retry_scheduled = False
        still_blocked: List[_PendingProvision] = []
        # Once a worker fails to free memory, stop hammering it this round:
        # later (FIFO) provisions are no more likely to fit, and probing
        # each pending entry would make retries quadratic under a burst.
        # Entries skipped this way keep their (possibly stale) abandoned
        # state and are re-checked on a later retry.
        stuck_workers: set = set()
        single_worker = len(self._workers) == 1
        pending = self._pending
        for i, pend in enumerate(pending):
            if self._faults is not None and not pend.worker.online:
                still_blocked.append(pend)
                continue
            if pend.worker.worker_id in stuck_workers:
                if single_worker:
                    still_blocked.extend(pending[i:])
                    break
                still_blocked.append(pend)
                continue
            if pend.abandoned or self._should_abandon(pend):
                self._pending_by_func[pend.spec.name] -= 1
                continue
            if self.policy.make_room(pend.worker, pend.spec.memory_mb,
                                     self.sim.now, for_func=pend.spec.name):
                self._pending_by_func[pend.spec.name] -= 1
                self._begin_provision(pend.spec, pend.worker, pend.waiter,
                                      pend.speculative, pend.prewarm)
            else:
                stuck_workers.add(pend.worker.worker_id)
                still_blocked.append(pend)
        self._pending = still_blocked

    def _should_abandon(self, pend: _PendingProvision) -> bool:
        """Skip blocked provisions that no longer have anyone to serve."""
        if pend.prewarm:
            return True  # stale prewarm: demand has moved on
        if pend.waiter is not None:
            return pend.waiter.served
        # Speculative: only useful while unserved waiters remain.
        return self.outstanding_waiters(pend.spec.name) == 0

    # ==================================================================
    # Misc plumbing

    def _log(self, kind: EventKind, func: str,
             container_id: Optional[int] = None,
             req_id: Optional[int] = None, detail: str = "",
             worker_id: Optional[int] = None) -> None:
        if self.event_log is not None:
            self.event_log.record(self.sim.now, kind, func, container_id,
                                  req_id, detail, worker_id)

    def _dispatch(self, func: str) -> Worker:
        workers = self._workers
        if self._faults is not None:
            # shard: cross-worker placement filters the pool to online workers
            online = [w for w in workers if w.online]
            if online:  # callers guard total outages; stay safe regardless
                workers = online
        if len(workers) == 1 or self.config.dispatch == "single":
            # shard: cross-worker placement picks the single candidate
            return workers[0]
        if self.config.dispatch == "hash":
            idx = zlib.crc32(func.encode()) % len(workers)
            # shard: cross-worker placement by function-name hash over the pool
            return workers[idx]
        # shard: cross-worker placement argmin over per-worker used memory
        return min(workers, key=lambda w: w.used_mb)

    def _sample_memory(self) -> None:
        if self._naive:
            # shard: cross-worker cluster-memory sum over the whole pool
            used = sum(w.used_mb for w in self._workers)
        else:
            # shard: cross-worker cluster-memory dirty flag set by Worker._charge
            if self._usage.dirty:
                self._used_mb_cache = sum(w.used_mb
                                          for w in self._workers)  # shard: cross-worker cluster-memory sum
                # shard: cross-worker cluster-memory dirty flag cleared after resampling
                self._usage.dirty = False
            used = self._used_mb_cache
        self.metrics.record_memory(self.sim.now, used)
        if self._m_used is not None:
            self._m_used.set(used)

    def _run_maintenance(self) -> None:
        self.policy.on_maintenance(self.sim.now)
        if self._pending:
            self._schedule_retry()

    def _finalize(self, requests: Sequence[Request]) -> None:
        # Under fault injection, requests may end accounted-failed instead
        # of completed; anything in neither state is a genuine deadlock.
        unfinished = [r for r in requests if not r.completed and not r.failed]
        if unfinished:
            raise RuntimeError(
                f"{len(unfinished)} requests never completed "
                f"(first: {unfinished[0]!r}); this indicates a scheduling "
                f"deadlock or an over-constrained configuration")
        # Count speculative containers that are still alive but were never
        # reused — wasted cold starts in hindsight (§3.2).
        # shard: cross-worker final speculative-waste audit over the whole pool
        for worker in self._workers:
            for c in worker.containers.values():
                if c.speculative and not c.served_any:
                    self.metrics.wasted_cold_starts += 1
        if self.recorder is not None:
            self.recorder.finish(self)


def simulate(functions: Iterable[FunctionSpec],
             requests: Sequence[Request],
             policy: OrchestrationPolicy,
             config: Optional[SimulationConfig] = None) -> SimulationResult:
    """One-shot convenience wrapper: build an orchestrator and run it."""
    return Orchestrator(functions, policy, config).run(requests)
