"""Runtime sim-sanitizer: write barrier + consistency assertions.

The static purity rules (``PUR0xx`` in :mod:`repro.lint`) catch direct
writes through sim-owned parameters inside observer modules, but a
probe can still mutate the simulation through aliases the intra-function
taint walk cannot see. The :class:`SimSanitizer` is the dynamic twin:
an **opt-in write barrier** around every probe callback window.

While installed on an orchestrator it

* patches ``__setattr__``/``__delattr__`` on the simulation state
  classes (:class:`Container`, :class:`Worker`, :class:`Simulator`,
  engine :class:`Event`, :class:`Orchestrator`,
  :class:`MetricsCollector`, :class:`Request`, ``_ClusterUsage``) so
  that any attribute write performed *while a probe callback is on the
  stack* raises :class:`SanitizerError` naming the attribute and the
  offending callback (e.g. ``MutSink.emit``);
* wraps every event-log sink, the time-series recorder and the decision
  audit in delegating proxies that open that barrier window around
  their callback methods;
* every ``check_interval`` recorded events — and once more at run end —
  cross-checks each worker's incremental indexes against a full scan
  (:meth:`Worker.check_integrity`), the engine's live/real event
  counters against a heap scan, and the heap invariant itself.

Outside probe windows the barrier costs one truthiness test per
attribute write, so a sanitized run executes the *same* simulation: the
differential test (``tests/sim/test_sanitizer.py``) pins sanitized and
unsanitized golden-trace runs bit-identical.

Deliberate probe-visible caches are allowlisted: reading
``Worker.evictable_mb()`` from a probe may lazily refresh
``_evictable_mb_cache``/``_evictable_mb_gen``, which is observationally
pure (the recomputed total is order-pinned; see ``sim/worker.py``).
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from repro.sim.container import Container
from repro.sim.engine import Event, Simulator
from repro.sim.eventlog import EventLog
from repro.sim.metrics import MetricsCollector
from repro.sim.orchestrator import Orchestrator, _ClusterUsage
from repro.sim.request import Request
from repro.sim.worker import Worker


class SanitizerError(AssertionError):
    """A probe mutated simulation state, or a consistency check failed."""


#: Stack of active probe-callback labels ("SinkClass.method"). Module
#: level so the patched ``__setattr__`` closures can test it without a
#: per-instance indirection; non-empty means "a probe is on the stack".
_ACTIVE: List[str] = []

#: (class, attribute) writes that are allowed inside a probe window:
#: observationally-pure lazy caches refreshed by read accessors.
_ALLOWED_WRITES = frozenset({
    (Worker, "_evictable_mb_cache"),
    (Worker, "_evictable_mb_gen"),
})

#: Classes whose instances the barrier protects.
GUARDED_CLASSES: Tuple[type, ...] = (
    Container, Worker, Simulator, Event, Orchestrator, MetricsCollector,
    Request, _ClusterUsage,
)

#: class -> (original __setattr__, original __delattr__, refcount).
_PATCH_STATE: Dict[type, list] = {}


def _patch_class(cls: type) -> None:
    state = _PATCH_STATE.get(cls)
    if state is not None:
        state[2] += 1
        return
    orig_set = cls.__setattr__
    orig_del = cls.__delattr__

    def guarded_setattr(self, name, value,
                        _orig=orig_set, _cls=cls):
        if _ACTIVE and (_cls, name) not in _ALLOWED_WRITES:
            raise SanitizerError(
                f"probe `{_ACTIVE[-1]}` mutated simulation state: "
                f"wrote {type(self).__name__}.{name}; observer "
                f"callbacks must be strictly read-only")
        _orig(self, name, value)

    def guarded_delattr(self, name, _orig=orig_del, _cls=cls):
        if _ACTIVE and (_cls, name) not in _ALLOWED_WRITES:
            raise SanitizerError(
                f"probe `{_ACTIVE[-1]}` mutated simulation state: "
                f"deleted {type(self).__name__}.{name}; observer "
                f"callbacks must be strictly read-only")
        _orig(self, name)

    _PATCH_STATE[cls] = [orig_set, orig_del, 1]
    cls.__setattr__ = guarded_setattr
    cls.__delattr__ = guarded_delattr


def _unpatch_class(cls: type) -> None:
    state = _PATCH_STATE.get(cls)
    if state is None:
        return
    state[2] -= 1
    if state[2] <= 0:
        cls.__setattr__ = state[0]
        cls.__delattr__ = state[1]
        del _PATCH_STATE[cls]


class _Barrier:
    """Context manager pushing a probe label onto the active stack."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __enter__(self):
        _ACTIVE.append(self.label)
        return self

    def __exit__(self, *exc):
        _ACTIVE.pop()
        return False


class _GuardedProbe:
    """Delegating proxy opening the write barrier around callbacks.

    Non-callable attributes (``interval_ms``, ``records`` ...) pass
    straight through, so the proxy is drop-in wherever the inner probe
    was usable.
    """

    def __init__(self, inner, methods: Tuple[str, ...]):
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_methods", frozenset(methods))

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name in self._methods and callable(attr):
            label = f"{type(self._inner).__name__}.{name}"

            def guarded(*args, _attr=attr, _label=label, **kwargs):
                with _Barrier(_label):
                    return _attr(*args, **kwargs)

            return guarded
        return attr

    def __setattr__(self, name, value):
        setattr(self._inner, name, value)

    def __repr__(self):
        return f"<sanitized {self._inner!r}>"


_SINK_METHODS = ("emit", "close")
_RECORDER_METHODS = ("sample", "note_start", "finish")
_AUDIT_METHODS = ("emit", "close")


class SimSanitizer:
    """Opt-in runtime guard for one orchestrator run.

    Usage (what ``run_one(..., sanitizer=...)`` does)::

        sanitizer = SimSanitizer()
        sanitizer.install(orchestrator)
        try:
            result = orchestrator.run(trace)
            sanitizer.finalize(orchestrator)
        finally:
            sanitizer.uninstall(orchestrator)
    """

    def __init__(self, check_interval: int = 256):
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.check_interval = int(check_interval)
        #: Events that flowed through the wrapped EventLog.record.
        self.events_seen = 0
        #: Consistency sweeps executed (periodic + final).
        self.checks_run = 0
        self._installed_on: Optional[Orchestrator] = None
        self._original_sinks: Optional[tuple] = None
        self._original_recorder = None
        self._original_audit = None
        self._owns_event_log = False

    # -- lifecycle -----------------------------------------------------

    def install(self, orchestrator: Orchestrator) -> None:
        """Arm the barrier and checks on ``orchestrator`` (pre-run)."""
        if self._installed_on is not None:
            raise RuntimeError("sanitizer already installed")
        self._installed_on = orchestrator
        for cls in GUARDED_CLASSES:
            _patch_class(cls)

        log = orchestrator.event_log
        if log is None:
            # A capacity-0 log keeps nothing in memory and changes no
            # results (pinned by the telemetry differential tests); it
            # gives the sanitizer its periodic check hook.
            log = EventLog(capacity=0)
            orchestrator.event_log = log
            self._owns_event_log = True
        self._original_sinks = log.sinks
        log._sinks = tuple(_GuardedProbe(sink, _SINK_METHODS)
                           for sink in log.sinks)

        sanitizer = self
        inner_record = type(log).record

        def counting_record(*args, **kwargs):
            inner_record(log, *args, **kwargs)
            sanitizer.events_seen += 1
            if sanitizer.events_seen % sanitizer.check_interval == 0:
                sanitizer.run_checks(orchestrator)

        log.record = counting_record

        if orchestrator.recorder is not None:
            self._original_recorder = orchestrator.recorder
            orchestrator.recorder = _GuardedProbe(
                orchestrator.recorder, _RECORDER_METHODS)
        if orchestrator.audit is not None:
            self._original_audit = orchestrator.audit
            orchestrator.audit = _GuardedProbe(
                orchestrator.audit, _AUDIT_METHODS)

    def finalize(self, orchestrator: Orchestrator) -> None:
        """Run the closing consistency sweep (post-run, pre-uninstall)."""
        self.run_checks(orchestrator)

    def uninstall(self, orchestrator: Orchestrator) -> None:
        """Remove every hook; safe to call once, even after an error."""
        if self._installed_on is not orchestrator:
            return
        self._installed_on = None
        log = orchestrator.event_log
        if log is not None:
            log.__dict__.pop("record", None)
            if self._original_sinks is not None:
                log._sinks = self._original_sinks
        if self._owns_event_log:
            orchestrator.event_log = None
        if self._original_recorder is not None:
            orchestrator.recorder = self._original_recorder
        if self._original_audit is not None:
            orchestrator.audit = self._original_audit
        for cls in GUARDED_CLASSES:
            _unpatch_class(cls)

    # -- consistency checks --------------------------------------------

    def run_checks(self, orchestrator: Orchestrator) -> None:
        """Worker-index, engine-counter and heap-invariant assertions."""
        self.checks_run += 1
        for worker in orchestrator.workers():
            try:
                worker.check_integrity()
            except AssertionError as exc:
                raise SanitizerError(
                    f"worker {worker.worker_id} index inconsistency: "
                    f"{exc}") from exc
        sim = orchestrator.sim
        live, real = sim._scan_counts()
        if (live, real) != (sim._live, sim._real):
            raise SanitizerError(
                f"engine event counters diverged from heap scan: "
                f"counters live={sim._live} real={sim._real}, "
                f"scan live={live} real={real}")
        heap = sim._heap
        for i in range(1, len(heap)):
            parent = (i - 1) >> 1
            if heap[i][:2] < heap[parent][:2]:
                raise SanitizerError(
                    f"engine heap invariant violated at index {i}: "
                    f"{heap[i][:2]} < parent {heap[parent][:2]}")

    # -- reporting -----------------------------------------------------

    def stats(self) -> dict:
        return {"events_seen": self.events_seen,
                "checks_run": self.checks_run,
                "check_interval": self.check_interval}

    def report(self, stream=sys.stderr) -> None:
        """One-line summary (stderr by default so stdout stays
        byte-comparable between sanitized and plain runs)."""
        print(f"sanitizer: ok — {self.events_seen} events guarded, "
              f"{self.checks_run} consistency sweeps "
              f"(every {self.check_interval} events)", file=stream)
