"""Run telemetry: streaming event sinks, request spans, time series.

The structured :class:`~repro.sim.eventlog.EventLog` answers "what did
the control plane decide?" for runs small enough to hold in memory. This
module scales that observability to full-size replays (100k+ requests)
and richer questions:

* **Event sinks** — :class:`EventLog` fans every event out to pluggable
  sinks. :class:`RingSink` keeps a bounded most-recent window in memory;
  :class:`JsonlSink` streams the complete event log to disk as JSON
  Lines with O(1) memory; :class:`SpanBuilder` folds the stream into
  spans on the fly. Sinks are any object with ``emit(event)`` (and an
  optional ``close()``), so new consumers plug in without touching the
  simulator.
* **Request spans** — :class:`SpanBuilder` reconstructs each request's
  latency story (arrival → provision/wait → exec) and each container's
  lifecycle (provision windows, eviction) from the event stream, and
  :func:`chrome_trace` exports them in the Chrome ``trace_event`` JSON
  format, loadable in Perfetto or ``chrome://tracing`` with one track
  per worker (container slices) and one per function (request spans).
* **Time series** — :class:`TimeSeriesRecorder` samples per-function
  warm/busy/provisioning container counts, committed memory, and
  start-type rates at a fixed interval, producing series consumable by
  :mod:`repro.analysis` (``ascii_series``-ready point lists).

Telemetry is strictly opt-in and read-only: with no sinks and no
recorder attached a run takes the exact same code path as before, and
with them attached the simulation outcomes are bit-identical (sinks and
samplers observe, never mutate — pinned by the differential tests).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.sim.eventlog import Event, EventKind, split_cause

__all__ = [
    "EventSink", "RingSink", "JsonlSink", "SpanBuilder", "RequestSpan",
    "ContainerTrack", "ProvisionWindow", "TimeSeriesRecorder",
    "FunctionSeries", "build_spans", "chrome_trace", "write_chrome_trace",
    "event_to_dict", "event_from_dict", "read_events_jsonl",
]


# ======================================================================
# Event (de)serialization

def event_to_dict(event: Event) -> dict:
    """Compact JSON-ready dict of one event (``None``/empty fields omitted)."""
    d: dict = {"t": event.time_ms, "kind": event.kind.value,
               "func": event.func}
    if event.container_id is not None:
        d["cid"] = event.container_id
    if event.req_id is not None:
        d["rid"] = event.req_id
    if event.detail:
        d["detail"] = event.detail
    if event.worker_id is not None:
        d["wid"] = event.worker_id
    return d


def event_from_dict(d: dict) -> Event:
    """Inverse of :func:`event_to_dict`."""
    return Event(float(d["t"]), EventKind(d["kind"]), d["func"],
                 d.get("cid"), d.get("rid"), d.get("detail", ""),
                 d.get("wid"))


def read_events_jsonl(path: Union[str, Path]) -> List[Event]:
    """Load an event stream written by :class:`JsonlSink`."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


# ======================================================================
# Sinks

class EventSink:
    """Interface for event consumers attached to an :class:`EventLog`.

    ``emit`` is called once per recorded event, in simulation order;
    ``close`` flushes/releases resources (idempotent). Sinks must never
    mutate simulator state — telemetry observes, it does not steer.
    """

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RingSink(EventSink):
    """Bounded in-memory sink keeping only the newest ``capacity`` events."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0

    def emit(self, event: Event) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)
        self.emitted += 1

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class JsonlSink(EventSink):
    """Streams every event to ``path`` as JSON Lines, O(1) memory.

    The file is line-buffered through a plain text handle; ``close()``
    (or context-manager exit) flushes it. Reload with
    :func:`read_events_jsonl` for a bit-exact round trip.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w")
        self.emitted = 0

    def emit(self, event: Event) -> None:
        self._fh.write(json.dumps(event_to_dict(event),
                                  separators=(",", ":")) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ======================================================================
# Spans

@dataclass
class ProvisionWindow:
    """One provisioning (or restore) interval of a container."""

    start_ms: float
    ready_ms: Optional[float] = None
    detail: str = ""          # bound / speculative / prewarm / restore


@dataclass
class ContainerTrack:
    """Lifecycle summary of one container, folded from its events."""

    container_id: int
    func: str
    worker_id: Optional[int] = None
    provisions: List[ProvisionWindow] = field(default_factory=list)
    evicted_ms: Optional[float] = None


@dataclass
class RequestSpan:
    """One request's latency decomposition (arrival → wait → exec)."""

    req_id: int
    func: str
    arrival_ms: float
    exec_start_ms: Optional[float] = None
    exec_end_ms: Optional[float] = None
    start_type: str = ""
    container_id: Optional[int] = None
    worker_id: Optional[int] = None
    #: The serving container's provisioning window (cold starts).
    provision_start_ms: Optional[float] = None
    provision_ready_ms: Optional[float] = None
    #: Times this request lost an in-flight execution to a worker crash
    #: (fault injection; 0 in failure-free runs).
    orphans: int = 0
    #: Realized execution slowdown (wall time / trace exec_ms) under the
    #: CPU-contention model; None when the run had no contention or the
    #: execution never ran slowed.
    slowdown: Optional[float] = None
    #: Proximate cold-start cause (``eviction:<did>``, ``crash``, ...)
    #: parsed off the provision stamp; empty for warm starts or runs
    #: without attribution attached.
    cause: str = ""

    @property
    def completed(self) -> bool:
        return self.exec_end_ms is not None

    @property
    def wait_ms(self) -> Optional[float]:
        if self.exec_start_ms is None:
            return None
        return self.exec_start_ms - self.arrival_ms

    @property
    def exec_ms(self) -> Optional[float]:
        if self.exec_end_ms is None or self.exec_start_ms is None:
            return None
        return self.exec_end_ms - self.exec_start_ms

    @property
    def service_ms(self) -> Optional[float]:
        if self.exec_end_ms is None:
            return None
        return self.exec_end_ms - self.arrival_ms


class SpanBuilder(EventSink):
    """Folds the lifecycle event stream into request spans and container
    tracks, incrementally (usable as a streaming sink).

    Working state is O(open requests + live containers); completed spans
    accumulate in :attr:`spans` in completion order.
    """

    def __init__(self) -> None:
        self.spans: List[RequestSpan] = []
        self.containers: Dict[int, ContainerTrack] = {}
        self._open: Dict[int, RequestSpan] = {}
        #: Cluster incidents: (time_ms, kind value, worker_id) for worker
        #: crash / restart events (fault injection).
        self.incidents: List[tuple] = []

    # -- helpers -------------------------------------------------------

    def _track(self, event: Event) -> ContainerTrack:
        track = self.containers.get(event.container_id)
        if track is None:
            track = ContainerTrack(event.container_id, event.func,
                                   event.worker_id)
            self.containers[event.container_id] = track
        if track.worker_id is None:
            track.worker_id = event.worker_id
        return track

    # -- EventSink -----------------------------------------------------

    def emit(self, event: Event) -> None:
        kind = event.kind
        if kind is EventKind.ARRIVAL:
            self._open[event.req_id] = RequestSpan(
                event.req_id, event.func, event.time_ms)
        elif kind in (EventKind.PROVISION_START, EventKind.RESTORE_START):
            detail = event.detail or (
                "restore" if kind is EventKind.RESTORE_START else "")
            self._track(event).provisions.append(
                ProvisionWindow(event.time_ms, detail=detail))
        elif kind is EventKind.CONTAINER_READY:
            track = self._track(event)
            if track.provisions and track.provisions[-1].ready_ms is None:
                track.provisions[-1].ready_ms = event.time_ms
        elif kind is EventKind.EXEC_START:
            span = self._open.get(event.req_id)
            if span is None:    # stream started mid-run (ring overflow)
                span = RequestSpan(event.req_id, event.func, event.time_ms)
                self._open[event.req_id] = span
            span.exec_start_ms = event.time_ms
            span.start_type = event.detail
            span.container_id = event.container_id
            span.worker_id = event.worker_id
            if event.detail == "cold":
                track = self.containers.get(event.container_id)
                if track is not None and track.provisions:
                    window = track.provisions[-1]
                    span.provision_start_ms = window.start_ms
                    span.provision_ready_ms = window.ready_ms
                    span.cause = split_cause(window.detail)[1]
        elif kind is EventKind.EXEC_END:
            span = self._open.pop(event.req_id, None)
            if span is not None:
                span.exec_end_ms = event.time_ms
                if event.detail.startswith("slowdown="):
                    span.slowdown = float(event.detail[9:])
                self.spans.append(span)
        elif kind is EventKind.EVICTION:
            self._track(event).evicted_ms = event.time_ms
        elif kind in (EventKind.WORKER_CRASH, EventKind.WORKER_RESTART):
            self.incidents.append((event.time_ms, kind.value,
                                   event.worker_id))
        elif kind is EventKind.REQUEST_ORPHANED:
            span = self._open.get(event.req_id)
            if span is not None:
                span.orphans += 1

    def finish(self) -> List[RequestSpan]:
        """All spans (completed plus any still open), by request id."""
        return sorted(self.spans + list(self._open.values()),
                      key=lambda s: s.req_id)


def build_spans(events: Iterable[Event]) -> List[RequestSpan]:
    """Fold a complete event sequence into request spans."""
    builder = SpanBuilder()
    for event in events:
        builder.emit(event)
    return builder.finish()


# ======================================================================
# Chrome trace export

#: Function tracks live in their own pid range, clear of worker ids.
_FUNCTION_PID_BASE = 1_000_000


def _us(ms: float) -> float:
    return ms * 1000.0


def chrome_trace(source: Union[SpanBuilder, Iterable[Event]],
                 instants: Iterable[dict] = ()) -> dict:
    """Export spans as Chrome ``trace_event`` JSON (Perfetto-loadable).

    Layout: one *process* per worker whose *threads* are its containers
    (provision and exec slices, eviction instants), plus one process per
    function carrying its request spans as async events (they overlap,
    which synchronous slices cannot). Attributed runs carry the
    cold-start ``cause`` stamp as an arg on provision slices and cold
    request spans.

    ``instants`` adds caller-supplied global markers — dicts with
    ``time_ms`` and ``name`` plus optional ``args`` — e.g. the
    high-regret eviction markers from
    :func:`repro.analysis.attribution.regret_instants`.
    """
    if isinstance(source, SpanBuilder):
        builder = source
    else:
        builder = SpanBuilder()
        for event in source:
            builder.emit(event)

    events: List[dict] = []
    worker_pids = set()

    def worker_pid(worker_id: Optional[int]) -> int:
        pid = 0 if worker_id is None else int(worker_id)
        worker_pids.add(pid)
        return pid

    # Container lifecycle on the worker tracks.
    for track in sorted(builder.containers.values(),
                        key=lambda t: t.container_id):
        pid = worker_pid(track.worker_id)
        tid = track.container_id
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name",
                       "args": {"name": f"c{track.container_id} "
                                        f"{track.func}"}})
        for window in track.provisions:
            ready = (window.ready_ms if window.ready_ms is not None
                     else window.start_ms)
            detail, cause = split_cause(window.detail)
            window_args = {"detail": detail}
            if cause:
                window_args["cause"] = cause
            events.append({
                "ph": "X", "pid": pid, "tid": tid, "cat": "provision",
                "name": f"provision {track.func}",
                "ts": _us(window.start_ms),
                "dur": _us(max(ready - window.start_ms, 0.0)),
                "args": window_args,
            })
        if track.evicted_ms is not None:
            events.append({"ph": "i", "pid": pid, "tid": tid,
                           "cat": "lifecycle", "name": "evict",
                           "ts": _us(track.evicted_ms), "s": "t"})

    # Fault incidents as process-scoped instants on the worker tracks.
    for time_ms, kind, worker_id in builder.incidents:
        events.append({"ph": "i", "pid": worker_pid(worker_id), "tid": 0,
                       "cat": "fault", "name": kind,
                       "ts": _us(time_ms), "s": "p"})

    # Exec slices on worker tracks + per-function async request spans.
    func_pids: Dict[str, int] = {}
    for span in builder.finish():
        func_pid = func_pids.get(span.func)
        if func_pid is None:
            func_pid = _FUNCTION_PID_BASE + len(func_pids)
            func_pids[span.func] = func_pid
        if span.exec_start_ms is not None and span.exec_ms is not None:
            events.append({
                "ph": "X", "pid": worker_pid(span.worker_id),
                "tid": span.container_id, "cat": "exec",
                "name": f"{span.func} r{span.req_id} ({span.start_type})",
                "ts": _us(span.exec_start_ms), "dur": _us(span.exec_ms),
                "args": {"req_id": span.req_id,
                         "start_type": span.start_type,
                         "wait_ms": span.wait_ms},
            })
        if span.exec_end_ms is None:
            continue
        name = f"r{span.req_id} ({span.start_type})"
        common = {"pid": func_pid, "tid": 0, "cat": "request",
                  "id": span.req_id, "name": name}
        begin_args = {"wait_ms": span.wait_ms,
                      "exec_ms": span.exec_ms,
                      "container": span.container_id}
        if span.cause:
            begin_args["cause"] = span.cause
        if span.orphans:
            begin_args["orphans"] = span.orphans
        events.append({**common, "ph": "b", "ts": _us(span.arrival_ms),
                       "args": begin_args})
        events.append({**common, "ph": "e", "ts": _us(span.exec_end_ms)})

    # Caller-supplied global markers (e.g. high-regret evictions).
    for marker in instants:
        instant = {"ph": "i", "pid": worker_pid(marker.get("worker_id")),
                   "tid": 0, "cat": "outcome", "name": marker["name"],
                   "ts": _us(marker["time_ms"]), "s": "p"}
        if marker.get("args"):
            instant["args"] = dict(marker["args"])
        events.append(instant)

    meta: List[dict] = []
    for pid in sorted(worker_pids):
        meta.append({"ph": "M", "pid": pid, "name": "process_name",
                     "args": {"name": f"worker {pid}"}})
    for func, pid in sorted(func_pids.items(), key=lambda kv: kv[1]):
        meta.append({"ph": "M", "pid": pid, "name": "process_name",
                     "args": {"name": f"function {func}"}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Union[str, Path],
                       source: Union[SpanBuilder, Iterable[Event]],
                       instants: Iterable[dict] = ()) -> dict:
    """Serialize :func:`chrome_trace` of ``source`` to ``path``."""
    trace = chrome_trace(source, instants=instants)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace


# ======================================================================
# Time series

_START_TYPES = ("warm", "delayed", "cold")


class FunctionSeries:
    """Fixed-interval samples for one function (or the whole cluster)."""

    __slots__ = ("times", "idle", "busy", "provisioning", "warm",
                 "memory_mb", "starts")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.idle: List[int] = []
        self.busy: List[int] = []
        self.provisioning: List[int] = []
        #: idle + busy — the paper's per-function warm pool size.
        self.warm: List[int] = []
        self.memory_mb: List[float] = []
        #: Starts *begun* since the previous sample, by start type.
        self.starts: Dict[str, List[int]] = {t: [] for t in _START_TYPES}

    def append(self, time_ms: float, idle: int, busy: int,
               provisioning: int, memory_mb: float,
               starts: Dict[str, int]) -> None:
        self.times.append(time_ms)
        self.idle.append(idle)
        self.busy.append(busy)
        self.provisioning.append(provisioning)
        self.warm.append(idle + busy)
        self.memory_mb.append(memory_mb)
        for start_type in _START_TYPES:
            self.starts[start_type].append(starts.get(start_type, 0))

    def __len__(self) -> int:
        return len(self.times)

    def points(self, metric: str) -> List[tuple]:
        """``(time_ms, value)`` pairs for one metric —
        :func:`repro.analysis.plot.ascii_series` input. ``metric`` is a
        series name or a start type (``warm_starts`` / ``cold_starts`` /
        ``delayed_starts``)."""
        if metric.endswith("_starts"):
            values = self.starts[metric[:-len("_starts")]]
        else:
            values = getattr(self, metric)
        return list(zip(self.times, values))

    def start_rate_per_sec(self, start_type: str,
                           interval_ms: float) -> List[tuple]:
        """``(time_ms, starts/sec)`` pairs for one start type."""
        scale = 1000.0 / interval_ms
        return [(t, n * scale)
                for t, n in zip(self.times, self.starts[start_type])]

    def as_dict(self) -> dict:
        return {
            "times_ms": list(self.times),
            "idle": list(self.idle),
            "busy": list(self.busy),
            "provisioning": list(self.provisioning),
            "warm": list(self.warm),
            "memory_mb": list(self.memory_mb),
            "starts": {t: list(v) for t, v in self.starts.items()},
        }


class TimeSeriesRecorder:
    """Samples cluster and per-function state at a fixed interval.

    Attach via ``Orchestrator(..., recorder=...)``: the orchestrator
    notifies it of every execution start (start-type accounting) and
    samples it every ``interval_ms`` of virtual time plus once at run
    end. Sampling is read-only, so recorded runs stay bit-identical to
    unrecorded ones.

    Per-function series are created lazily the first time a function has
    a container (or a start) and sampled on every later tick, so an
    idle-forever function costs nothing.
    """

    def __init__(self, interval_ms: float = 1_000.0):
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.interval_ms = float(interval_ms)
        self.cluster = FunctionSeries()
        self.functions: Dict[str, FunctionSeries] = {}
        self._pending: Dict[str, Dict[str, int]] = {}
        self._pending_cluster: Dict[str, int] = {}

    # -- orchestrator hooks --------------------------------------------

    def note_start(self, func: str, start_type: str, now: float) -> None:
        """Record one execution start (called by the orchestrator)."""
        counts = self._pending.get(func)
        if counts is None:
            counts = self._pending[func] = {}
        counts[start_type] = counts.get(start_type, 0) + 1
        self._pending_cluster[start_type] = \
            self._pending_cluster.get(start_type, 0) + 1

    def sample(self, orchestrator) -> None:
        """Take one sample of ``orchestrator``'s current state."""
        now = orchestrator.now
        if self.cluster.times and self.cluster.times[-1] == now:
            return  # e.g. final flush landing on a periodic tick
        per_func: Dict[str, List] = {}
        cluster_mb = 0.0
        for worker in orchestrator.workers():
            cluster_mb += worker.used_mb
            for func in worker.all_funcs():
                row = per_func.get(func)
                if row is None:
                    row = per_func[func] = [0, 0, 0, 0.0]
                row[0] += worker.idle_count(func)
                row[1] += worker.busy_count(func)
                row[2] += worker.provisioning_count(func)
                row[3] += sum(c.memory_mb for c in worker.of_func(func))
        idle = sum(row[0] for row in per_func.values())
        busy = sum(row[1] for row in per_func.values())
        provisioning = sum(row[2] for row in per_func.values())
        self.cluster.append(now, idle, busy, provisioning, cluster_mb,
                            self._pending_cluster)
        self._pending_cluster = {}
        # Sample every function that is live now, has pending start
        # counts, or was ever seen before (series stay contiguous).
        funcs = set(per_func) | set(self.functions) | set(self._pending)
        for func in sorted(funcs):
            series = self.functions.get(func)
            if series is None:
                series = self.functions[func] = FunctionSeries()
            row = per_func.get(func, (0, 0, 0, 0.0))
            series.append(now, row[0], row[1], row[2], row[3],
                          self._pending.get(func, {}))
        self._pending = {}

    def finish(self, orchestrator) -> None:
        """Final flush at run end (captures the closing state)."""
        self.sample(orchestrator)

    # -- export --------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "interval_ms": self.interval_ms,
            "cluster": self.cluster.as_dict(),
            "functions": {f: s.as_dict()
                          for f, s in sorted(self.functions.items())},
        }

    def save_json(self, path: Union[str, Path]) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh)
