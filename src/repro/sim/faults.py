"""Deterministic fault injection: crashes, stragglers, heterogeneity.

A :class:`FaultPlan` is a *schedule*, not a random process: every crash,
straggler window and worker class is pinned to concrete times and worker
ids before the simulation starts. Randomness lives entirely in
:func:`random_plan`, which expands a seed into such a schedule with a
dedicated ``random.Random(seed)`` — so a chaos run is a deterministic
function of (trace, policy, config, plan) and replays bit-identically.

Fault model
-----------
* **Worker crash** (:class:`CrashSpec`): at ``at_ms`` the worker drops
  offline and every hosted container — idle, busy, provisioning or
  compressed — is destroyed. In-flight requests are *orphaned* and
  re-dispatched to surviving workers under the plan's
  :class:`RetryPolicy`; requests whose retry budget is exhausted are
  accounted as failed (never silently lost). The worker rejoins with an
  empty cache after ``restart_delay_ms`` (``None`` = never rejoins).
  A crash scheduled while the worker is already down is ignored.
* **Straggler** (:class:`StragglerSpec`): inside ``[start_ms, end_ms)``
  the worker's execution and cold-start latencies are multiplied.
  Multipliers apply at *scheduling* time (when the execution or
  provision starts), mirroring how a slow machine stretches whatever
  work lands on it; overlapping windows multiply together.
* **Worker class** (:class:`WorkerClassSpec`): static heterogeneity —
  per-class memory capacity and a cold-start multiplier, so the cluster
  need not be uniform.

Determinism contract
--------------------
``SimulationConfig(faults=None)`` — and equally an empty
``FaultPlan()`` — is *inert*: the orchestrator takes byte-identical
decisions and emits a byte-identical event stream to a build without
this module (pinned by ``tests/sim/test_faults_differential.py``).

All specs are frozen dataclasses over tuples: hashable (so
``SimulationConfig`` stays hashable), picklable (so fault plans travel
to parallel sweep workers), and JSON round-trippable via
:meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

#: Schema tag written by :meth:`FaultPlan.to_dict`.
PLAN_SCHEMA = "repro/fault-plan/v1"


@dataclass(frozen=True)
class RetryPolicy:
    """What happens to requests orphaned by a worker crash.

    Parameters
    ----------
    max_retries:
        How many times one request may be re-dispatched after losing its
        container to a crash. ``0`` fails a request on its first orphaning.
    retry_delay_ms:
        Delay between orphaning and re-dispatch (detection + rescheduling
        cost of a real control plane).
    """

    max_retries: int = 2
    retry_delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_delay_ms < 0:
            raise ValueError("retry_delay_ms must be >= 0")


@dataclass(frozen=True)
class CrashSpec:
    """One scheduled worker crash (and optional restart)."""

    worker_id: int
    at_ms: float
    #: ``None`` = the worker never rejoins.
    restart_delay_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError("worker_id must be >= 0")
        if self.at_ms < 0:
            raise ValueError("at_ms must be >= 0")
        if self.restart_delay_ms is not None and self.restart_delay_ms < 0:
            raise ValueError("restart_delay_ms must be >= 0 or None")


@dataclass(frozen=True)
class StragglerSpec:
    """A per-worker slowdown window ``[start_ms, end_ms)``."""

    worker_id: int
    start_ms: float
    end_ms: float
    exec_multiplier: float = 1.0
    cold_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError("worker_id must be >= 0")
        if self.start_ms < 0:
            raise ValueError("start_ms must be >= 0")
        if self.end_ms <= self.start_ms:
            raise ValueError("end_ms must be > start_ms")
        if self.exec_multiplier <= 0 or self.cold_multiplier <= 0:
            raise ValueError("multipliers must be > 0")

    def covers(self, now: float) -> bool:
        return self.start_ms <= now < self.end_ms


@dataclass(frozen=True)
class WorkerClassSpec:
    """A static worker class: capacity override + cold-start multiplier."""

    name: str
    workers: Tuple[int, ...]
    #: Per-worker capacity; ``None`` keeps the even capacity split.
    memory_mb: Optional[float] = None
    cold_start_multiplier: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "workers", tuple(self.workers))
        if not self.name:
            raise ValueError("worker class needs a name")
        if not self.workers:
            raise ValueError(f"class {self.name!r} lists no workers")
        if any(w < 0 for w in self.workers):
            raise ValueError(f"class {self.name!r}: worker ids must be >= 0")
        if self.memory_mb is not None and self.memory_mb <= 0:
            raise ValueError(f"class {self.name!r}: memory_mb must be > 0")
        if self.cold_start_multiplier <= 0:
            raise ValueError(
                f"class {self.name!r}: cold_start_multiplier must be > 0")


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule for one run. Empty plans are inert."""

    crashes: Tuple[CrashSpec, ...] = ()
    stragglers: Tuple[StragglerSpec, ...] = ()
    worker_classes: Tuple[WorkerClassSpec, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "worker_classes",
                           tuple(self.worker_classes))
        claimed: Dict[int, str] = {}
        for cls in self.worker_classes:
            for wid in cls.workers:
                if wid in claimed:
                    raise ValueError(
                        f"worker {wid} in classes {claimed[wid]!r} "
                        f"and {cls.name!r}")
                claimed[wid] = cls.name

    # ------------------------------------------------------------------
    # Validation against a concrete cluster

    def validate(self, workers: int) -> None:
        """Check every worker id fits a ``workers``-sized cluster."""
        for crash in self.crashes:
            if crash.worker_id >= workers:
                raise ValueError(
                    f"crash targets worker {crash.worker_id} but the "
                    f"cluster has {workers}")
        for straggler in self.stragglers:
            if straggler.worker_id >= workers:
                raise ValueError(
                    f"straggler targets worker {straggler.worker_id} but "
                    f"the cluster has {workers}")
        for cls in self.worker_classes:
            for wid in cls.workers:
                if wid >= workers:
                    raise ValueError(
                        f"class {cls.name!r} lists worker {wid} but the "
                        f"cluster has {workers}")

    # ------------------------------------------------------------------
    # Queries the orchestrator consults

    def class_of(self, worker_id: int) -> Optional[WorkerClassSpec]:
        for cls in self.worker_classes:
            if worker_id in cls.workers:
                return cls
        return None

    def worker_capacity_mb(self, worker_id: int, default_mb: float) -> float:
        cls = self.class_of(worker_id)
        if cls is not None and cls.memory_mb is not None:
            return cls.memory_mb
        return default_mb

    def exec_multiplier(self, worker_id: int, now: float) -> float:
        """Execution-time factor on ``worker_id`` at ``now`` (>= plan
        order product of covering straggler windows)."""
        factor = 1.0
        for straggler in self.stragglers:
            if straggler.worker_id == worker_id and straggler.covers(now):
                factor *= straggler.exec_multiplier
        return factor

    def cold_multiplier(self, worker_id: int, now: float) -> float:
        """Provision/restore-cost factor: worker class times any covering
        straggler windows."""
        factor = 1.0
        cls = self.class_of(worker_id)
        if cls is not None:
            factor *= cls.cold_start_multiplier
        for straggler in self.stragglers:
            if straggler.worker_id == worker_id and straggler.covers(now):
                factor *= straggler.cold_multiplier
        return factor

    def has_exec_stragglers(self) -> bool:
        """True when any straggler window changes execution rates — the
        plan then needs the progress-based execution model so a window
        edge mid-execution changes the remaining wall time."""
        return any(s.exec_multiplier != 1.0 for s in self.stragglers)

    def next_exec_boundary(self, worker_id: int,
                           now: float) -> Optional[float]:
        """Earliest straggler-window edge after ``now`` that can change
        ``worker_id``'s execution-rate factor (windows whose
        ``exec_multiplier`` is 1 never change the rate)."""
        best = None
        for s in self.stragglers:
            if s.worker_id != worker_id or s.exec_multiplier == 1.0:
                continue
            for edge in (s.start_ms, s.end_ms):
                if edge > now and (best is None or edge < best):
                    best = edge
        return best

    def cold_finish_ms(self, worker_id: int, start_ms: float,
                       cost_ms: float) -> float:
        """Wall-clock completion time of ``cost_ms`` of provisioning
        work starting at ``start_ms`` on ``worker_id``.

        The cold-rate factor is piecewise constant (worker class times
        the straggler windows covering each instant), so the finish time
        integrates the work across every window edge instead of freezing
        the factor sampled at ``start_ms`` — a window that ends (or
        begins) mid-provision changes the remaining wall time. With no
        edge inside the provision this reduces to the single
        multiplication ``start_ms + cost_ms * factor`` of the
        sampled-once model, bit-for-bit.
        """
        now = start_ms
        remaining = cost_ms
        while remaining > 0.0:
            factor = self.cold_multiplier(worker_id, now)
            edge = None
            for s in self.stragglers:
                if s.worker_id != worker_id or s.cold_multiplier == 1.0:
                    continue
                for candidate in (s.start_ms, s.end_ms):
                    if candidate > now and (edge is None
                                            or candidate < edge):
                        edge = candidate
            finish = now + remaining * factor
            if edge is None or finish <= edge:
                return finish
            # Work done up to the edge, at this segment's rate.
            remaining = remaining - (edge - now) / factor
            now = edge
        return now

    def crashes_sorted(self) -> List[CrashSpec]:
        return sorted(self.crashes, key=lambda c: (c.at_ms, c.worker_id))

    # ------------------------------------------------------------------
    # JSON round trip

    def to_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "retry": {"max_retries": self.retry.max_retries,
                      "retry_delay_ms": self.retry.retry_delay_ms},
            "crashes": [
                {"worker_id": c.worker_id, "at_ms": c.at_ms,
                 "restart_delay_ms": c.restart_delay_ms}
                for c in self.crashes],
            "stragglers": [
                {"worker_id": s.worker_id, "start_ms": s.start_ms,
                 "end_ms": s.end_ms, "exec_multiplier": s.exec_multiplier,
                 "cold_multiplier": s.cold_multiplier}
                for s in self.stragglers],
            "worker_classes": [
                {"name": k.name, "workers": list(k.workers),
                 "memory_mb": k.memory_mb,
                 "cold_start_multiplier": k.cold_start_multiplier}
                for k in self.worker_classes],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        schema = payload.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ValueError(f"unknown fault-plan schema {schema!r}")
        retry = RetryPolicy(**payload.get("retry", {}))
        crashes = tuple(CrashSpec(**c) for c in payload.get("crashes", []))
        stragglers = tuple(StragglerSpec(**s)
                           for s in payload.get("stragglers", []))
        classes = tuple(WorkerClassSpec(**k)
                        for k in payload.get("worker_classes", []))
        return cls(crashes, stragglers, classes, retry)

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def with_retry(self, retry: RetryPolicy) -> "FaultPlan":
        return replace(self, retry=retry)


def random_plan(seed: int, workers: int, horizon_ms: float,
                crashes: int = 2, stragglers: int = 2,
                heterogeneity: bool = True,
                retry: Optional[RetryPolicy] = None) -> FaultPlan:
    """Expand a chaos seed into a concrete :class:`FaultPlan`.

    Crashes land in the first 85% of the horizon and always schedule a
    restart (5-15% of the horizon later), so a generated plan exercises
    churn without starving the tail of the trace of capacity. Worker
    classes only carry cold-start multipliers — capacity overrides are an
    explicit, hand-written choice because they interact with the
    function-footprint feasibility check.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    rng = random.Random(seed)
    horizon = max(float(horizon_ms), 1_000.0)
    crash_specs = []
    for _ in range(crashes):
        crash_specs.append(CrashSpec(
            worker_id=rng.randrange(workers),
            at_ms=rng.uniform(0.10, 0.85) * horizon,
            restart_delay_ms=rng.uniform(0.05, 0.15) * horizon))
    straggler_specs = []
    for _ in range(stragglers):
        start = rng.uniform(0.0, 0.8) * horizon
        straggler_specs.append(StragglerSpec(
            worker_id=rng.randrange(workers),
            start_ms=start,
            end_ms=start + rng.uniform(0.05, 0.3) * horizon,
            exec_multiplier=rng.uniform(1.2, 3.0),
            cold_multiplier=rng.uniform(1.0, 2.0)))
    classes: Tuple[WorkerClassSpec, ...] = ()
    if heterogeneity and workers > 1:
        slow = tuple(sorted(rng.sample(range(workers), workers // 2)))
        classes = (WorkerClassSpec(
            "slow", workers=slow,
            cold_start_multiplier=rng.uniform(1.2, 2.5)),)
    return FaultPlan(
        crashes=tuple(sorted(crash_specs,
                             key=lambda c: (c.at_ms, c.worker_id))),
        stragglers=tuple(straggler_specs),
        worker_classes=classes,
        retry=retry if retry is not None else RetryPolicy())
