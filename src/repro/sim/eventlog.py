"""Structured event logging for simulation runs.

An :class:`EventLog` records the control-plane's lifecycle decisions —
arrivals, provision starts/completions, execution starts/ends, evictions —
as typed, timestamped records. It exists for observability: debugging a
policy, tracing one function's containers through a run, or explaining a
single request's latency (``explain_request``).

Logging is opt-in (``Orchestrator(..., event_log=EventLog())``) and adds
one append per event when enabled, nothing when not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional


class EventKind(enum.Enum):
    ARRIVAL = "arrival"
    PROVISION_START = "provision_start"
    CONTAINER_READY = "container_ready"
    EXEC_START = "exec_start"
    EXEC_END = "exec_end"
    EVICTION = "eviction"
    COMPRESSION = "compression"
    RESTORE_START = "restore_start"


@dataclass(frozen=True)
class Event:
    """One control-plane event."""

    time_ms: float
    kind: EventKind
    func: str
    container_id: Optional[int] = None
    req_id: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        parts = [f"{self.time_ms:12.3f}", self.kind.value, self.func]
        if self.container_id is not None:
            parts.append(f"c{self.container_id}")
        if self.req_id is not None:
            parts.append(f"r{self.req_id}")
        if self.detail:
            parts.append(self.detail)
        return "  ".join(parts)


class EventLog:
    """Accumulates :class:`Event` records during a run."""

    def __init__(self, capacity: Optional[int] = None):
        """``capacity`` bounds memory: oldest events are dropped beyond
        it (None = unbounded)."""
        self.events: List[Event] = []
        self.capacity = capacity
        self.dropped = 0

    def record(self, time_ms: float, kind: EventKind, func: str,
               container_id: Optional[int] = None,
               req_id: Optional[int] = None, detail: str = "") -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            del self.events[:len(self.events) // 2]
            self.dropped += 1
        self.events.append(Event(time_ms, kind, func, container_id,
                                 req_id, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    # Queries

    def of_kind(self, kind: EventKind) -> List[Event]:
        return [e for e in self.events if e.kind is kind]

    def of_func(self, func: str) -> List[Event]:
        return [e for e in self.events if e.func == func]

    def of_container(self, container_id: int) -> List[Event]:
        return [e for e in self.events
                if e.container_id == container_id]

    def explain_request(self, req_id: int) -> List[Event]:
        """All events involving one request plus its serving container's
        provisioning history — the latency story of that request."""
        mine = [e for e in self.events if e.req_id == req_id]
        containers = {e.container_id for e in mine
                      if e.container_id is not None}
        related = [e for e in self.events
                   if e.req_id is None and e.container_id in containers
                   and e.kind in (EventKind.PROVISION_START,
                                  EventKind.CONTAINER_READY,
                                  EventKind.EVICTION)]
        merged = sorted(mine + related,
                        key=lambda e: (e.time_ms, e.kind.value))
        return merged

    def render(self, events: Optional[Iterable[Event]] = None) -> str:
        """Human-readable dump (of a query result or everything)."""
        chosen = list(events) if events is not None else self.events
        return "\n".join(str(e) for e in chosen)
