"""Structured event logging for simulation runs.

An :class:`EventLog` records the control-plane's lifecycle decisions —
arrivals, provision starts/completions, execution starts/ends, evictions —
as typed, timestamped records. It exists for observability: debugging a
policy, tracing one function's containers through a run, or explaining a
single request's latency (``explain_request``).

Logging is opt-in (``Orchestrator(..., event_log=EventLog())``) and adds
one append per event when enabled, nothing when not. For runs too large
to hold in memory, the log can be bounded (``capacity``) and/or fanned
out to streaming :mod:`repro.sim.telemetry` sinks (``sinks``): every
event still reaches each attached sink, while the in-memory buffer keeps
only the newest ``capacity`` events.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


class EventKind(enum.Enum):
    ARRIVAL = "arrival"
    PROVISION_START = "provision_start"
    CONTAINER_READY = "container_ready"
    EXEC_START = "exec_start"
    EXEC_END = "exec_end"
    EVICTION = "eviction"
    COMPRESSION = "compression"
    RESTORE_START = "restore_start"
    # Fault-injection events (repro.sim.faults); only emitted when a
    # FaultPlan is configured.
    WORKER_CRASH = "worker_crash"
    WORKER_RESTART = "worker_restart"
    REQUEST_ORPHANED = "request_orphaned"
    REQUEST_REASSIGNED = "request_reassigned"


#: Causal ordering of lifecycle events that share a timestamp: a request
#: arrives before anything is provisioned for it, a container becomes
#: ready before it executes, execution ends before the container can be
#: compressed or evicted. Alphabetical ``kind.value`` order (the old sort
#: key) violates this — ``eviction`` sorts before ``exec_end`` — which
#: garbles same-tick latency stories.
LIFECYCLE_RANK = {
    EventKind.ARRIVAL: 0,
    EventKind.PROVISION_START: 1,
    EventKind.RESTORE_START: 2,
    EventKind.CONTAINER_READY: 3,
    EventKind.EXEC_START: 4,
    # Fault events slot between a started execution and its (never
    # reached) completion: a crash orphans running work, the orphan is
    # reassigned, the worker restarts. Same-tick retry chains that loop
    # back into provisioning are inherently cyclic; within one tick the
    # log's append order stays the causal ground truth (sorted() is
    # stable, so equal keys preserve it).
    EventKind.WORKER_CRASH: 4.1,
    EventKind.REQUEST_ORPHANED: 4.2,
    EventKind.REQUEST_REASSIGNED: 4.3,
    EventKind.WORKER_RESTART: 4.4,
    EventKind.EXEC_END: 5,
    EventKind.COMPRESSION: 6,
    EventKind.EVICTION: 7,
}


#: The five proximate-cause classes a ``PROVISION_START`` may carry when
#: causal attribution (:mod:`repro.obs.attribution`) is attached. The
#: ``eviction`` / ``scale-down`` classes append the responsible audit
#: ``decision_id`` after a colon (``eviction:17``).
CAUSE_CLASSES = ("first-invocation", "eviction", "scale-down", "crash",
                 "capacity-blocked")


def split_cause(detail: str) -> tuple:
    """Split a stamped ``PROVISION_START`` detail into (kind, cause).

    ``"bound cause=eviction:17"`` -> ``("bound", "eviction:17")``;
    an unstamped detail returns ``(detail, "")``. The stamp grammar is a
    single appended ``" cause=<label>"`` token, so unattributed runs and
    attributed runs differ only by this suffix.
    """
    kind, sep, cause = detail.partition(" cause=")
    if sep:
        return kind, cause
    return detail, ""


def cause_class(cause: str) -> str:
    """The cause class of a full label (``"eviction:17"`` -> ``"eviction"``)."""
    return cause.partition(":")[0]


def cause_decision_id(cause: str) -> Optional[int]:
    """The audit ``decision_id`` a cause label blames, or ``None``.

    Only ``eviction:<id>`` / ``scale-down:<id>`` labels carry one (and a
    ``scale-down`` with no audit attached is minted without an id).
    """
    _, sep, did = cause.partition(":")
    if sep and did:
        return int(did)
    return None


@dataclass(frozen=True)
class Event:
    """One control-plane event."""

    time_ms: float
    kind: EventKind
    func: str
    container_id: Optional[int] = None
    req_id: Optional[int] = None
    detail: str = ""
    worker_id: Optional[int] = None

    def __str__(self) -> str:
        parts = [f"{self.time_ms:12.3f}", self.kind.value, self.func]
        if self.worker_id is not None:
            parts.append(f"w{self.worker_id}")
        if self.container_id is not None:
            parts.append(f"c{self.container_id}")
        if self.req_id is not None:
            parts.append(f"r{self.req_id}")
        if self.detail:
            parts.append(self.detail)
        return "  ".join(parts)


class EventLog:
    """Accumulates :class:`Event` records during a run."""

    def __init__(self, capacity: Optional[int] = None,
                 sinks: Sequence = ()):
        """``capacity`` bounds memory: the oldest events are dropped one
        by one beyond it (None = unbounded). ``sinks`` are telemetry
        sinks (any object with ``emit(event)``) that receive **every**
        event, including the ones the bounded buffer later drops."""
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0 (or None); 0 keeps "
                             "nothing in memory (sink-only logging)")
        self.capacity = capacity
        self.events = deque(maxlen=capacity)
        #: Events evicted from the bounded in-memory buffer. Counts every
        #: individual dropped event (sinks still saw them all).
        self.dropped = 0
        #: Total events ever recorded (== len(events) + dropped).
        self.recorded = 0
        self._sinks = tuple(sinks)

    def attach(self, sink) -> None:
        """Add a telemetry sink; it receives events recorded from now on."""
        self._sinks += (sink,)

    @property
    def sinks(self) -> tuple:
        return self._sinks

    def record(self, time_ms: float, kind: EventKind, func: str,
               container_id: Optional[int] = None,
               req_id: Optional[int] = None, detail: str = "",
               worker_id: Optional[int] = None) -> None:
        events = self.events
        if self.capacity is not None and len(events) == self.capacity:
            self.dropped += 1          # deque(maxlen) evicts the oldest
        event = Event(time_ms, kind, func, container_id, req_id, detail,
                      worker_id)
        events.append(event)
        self.recorded += 1
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every attached sink (flushes streaming file sinks)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    # Queries

    def of_kind(self, kind: EventKind) -> List[Event]:
        return [e for e in self.events if e.kind is kind]

    def of_func(self, func: str) -> List[Event]:
        return [e for e in self.events if e.func == func]

    def of_container(self, container_id: int) -> List[Event]:
        return [e for e in self.events
                if e.container_id == container_id]

    def explain_request(self, req_id: int) -> List[Event]:
        """All events involving one request plus its serving container's
        provisioning history — the latency story of that request."""
        mine = [e for e in self.events if e.req_id == req_id]
        containers = {e.container_id for e in mine
                      if e.container_id is not None}
        related = [e for e in self.events
                   if e.req_id is None and e.container_id in containers
                   and e.kind in (EventKind.PROVISION_START,
                                  EventKind.CONTAINER_READY,
                                  EventKind.EVICTION)]
        merged = sorted(mine + related,
                        key=lambda e: (e.time_ms, LIFECYCLE_RANK[e.kind]))
        return merged

    def cold_start_of(self, req_id: int) -> Optional[Event]:
        """The ``PROVISION_START`` behind one request's cold start.

        Returns the provisioning event of the container that served
        ``req_id`` when the request cold-started (its ``detail`` carries
        the cause stamp under attribution), or ``None`` for warm/delayed
        starts and unknown requests. Restores (CodeCrunch) are not
        provision events and return ``None``.
        """
        serving_cid = None
        for e in self.events:
            if (e.kind is EventKind.EXEC_START and e.req_id == req_id
                    and e.detail == "cold"):
                serving_cid = e.container_id
                break
        if serving_cid is None:
            return None
        provision = None
        for e in self.events:
            if (e.kind is EventKind.PROVISION_START
                    and e.container_id == serving_cid):
                provision = e  # last one before exec wins (restores aside)
            elif (e.kind is EventKind.EXEC_START and e.req_id == req_id):
                break
        return provision

    def render(self, events: Optional[Iterable[Event]] = None) -> str:
        """Human-readable dump (of a query result or everything)."""
        chosen = list(events) if events is not None else list(self.events)
        return "\n".join(str(e) for e in chosen)
