"""Project-wide symbol table for the deep (whole-program) analyses.

The file-local checkers of :mod:`repro.lint` see one ``ast`` tree at a
time; the deep analyses (shard safety, transitive purity, dimension
inference) need to reason *across* files: which class does this base
name resolve to, which method does ``self.scale()`` dispatch to under
the CSS/CIP mixin composition, which attribute accesses does a helper
three modules away perform. :class:`ProjectIndex` answers those
questions from one pass over every ``.py`` file of the ``repro``
package:

* **modules** — parsed trees plus an import table mapping each local
  name to its fully dotted target (``Container`` ->
  ``repro.sim.container.Container``), including names imported under
  ``if TYPE_CHECKING:`` (annotations matter to the analyses even though
  they are erased at runtime);
* **classes** — base-class names resolved through the import tables and
  linearized with the C3 algorithm, so mixin assemblies like
  ``CIDREPolicy(CSSScalingMixin, CIPEvictionMixin)`` get the *same*
  method-resolution order the interpreter uses (a naive depth-first
  walk would place ``OrchestrationPolicy`` before ``CIPEvictionMixin``
  and mis-resolve every eviction hook);
* **functions** — every ``def`` (module-level, method, nested skipped)
  keyed by dotted qualname, with parameter lists and resolved parameter
  annotations;
* **attribute types** — a per-class map from ``self.<attr>`` to the
  project class it holds, inferred from constructor calls
  (``self.sim = Simulator(...)``) and annotated assignments
  (``self.ctx: Optional[PolicyContext]``), which lets the call graph
  resolve ``self.sim.schedule(...)`` without runtime types;
* **attribute-access index** — per function, every Name/Attribute chain
  it touches, classified as read, write, delete or call receiver.

Everything is plain ``ast`` + stdlib; no imports of the analyzed code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.lint.engine import relpath_of


# ======================================================================
# Records


@dataclass
class FunctionInfo:
    """One ``def`` (module-level function or method)."""

    qualname: str                 #: ``repro.sim.worker.Worker.add``
    name: str                     #: ``add``
    module: "ModuleInfo"
    cls: Optional["ClassInfo"]    #: enclosing class, None at module level
    node: ast.AST                 #: FunctionDef / AsyncFunctionDef
    params: List[str]             #: positional+kw param names, in order
    #: param name -> dotted annotation text (``Worker``, ``repro...``),
    #: with ``Optional[...]``/quotes unwrapped; None when unannotated.
    param_annotations: Dict[str, Optional[str]]

    @property
    def relpath(self) -> str:
        return self.module.relpath

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.qualname}>"


@dataclass
class ClassInfo:
    """One class definition."""

    qualname: str                 #: ``repro.sim.worker.Worker``
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: List[str]         #: raw dotted base expressions
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: self.<attr> -> class qualname (constructor / annotation inference).
    attr_types: Dict[str, str] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClassInfo {self.qualname}>"


@dataclass
class ModuleInfo:
    """One parsed source file."""

    modname: str                  #: ``repro.sim.worker``
    relpath: str                  #: ``repro/sim/worker.py``
    path: Optional[Path]          #: filesystem path (None for strings)
    tree: ast.Module
    source: str
    lines: List[str]
    #: local name -> fully dotted target (module or module.symbol).
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass(frozen=True)
class Access:
    """One attribute/name access inside a function body."""

    chain: Tuple[str, ...]        #: ``("self", "_usage", "dirty")``
    kind: str                     #: ``read`` | ``write`` | ``delete`` | ``call``
    node: ast.AST                 #: the Attribute/Name node


# ======================================================================
# AST helpers


def attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``("a", "b", "c")`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Dotted class name carried by an annotation expression.

    Unwraps string (forward-reference) annotations, ``Optional[X]`` /
    ``List[X]`` subscripts down to their first argument, and quoted
    names inside them. Returns None for unions of multiple classes and
    anything else the analyses cannot use.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        # Optional[X] / List[X] / Dict[K, V]: Optional and List forward
        # to the single payload class; multi-argument containers do not
        # name one class.
        head = attr_chain(node.value)
        inner = node.slice
        if head and head[-1] in ("Optional", "List", "Sequence", "Set",
                                 "Iterable", "Tuple", "Type", "Deque"):
            if isinstance(inner, ast.Tuple):
                return None
            return annotation_name(inner)
        return None
    chain = attr_chain(node)
    return ".".join(chain) if chain else None


# ======================================================================
# Per-module collection


class _ModuleCollector(ast.NodeVisitor):
    """Fills a ModuleInfo from its tree (imports, classes, functions)."""

    def __init__(self, info: ModuleInfo):
        self.info = info
        self._class_stack: List[ClassInfo] = []

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else local
            self.info.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:  # relative: join with the current package
            pkg_parts = self.info.modname.split(".")[:-node.level]
            base = ".".join(pkg_parts + ([node.module]
                                         if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.info.imports[local] = f"{base}.{alias.name}" \
                if base else alias.name

    # -- defs -----------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            qualname=f"{self.info.modname}.{node.name}",
            name=node.name, module=self.info, node=node,
            base_names=[".".join(chain) for base in node.bases
                        if (chain := attr_chain(base)) is not None])
        self.info.classes[node.name] = cls
        self._class_stack.append(cls)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def _visit_def(self, node) -> None:
        if self._class_stack:
            cls = self._class_stack[-1]
            qualname = f"{cls.qualname}.{node.name}"
        else:
            cls = None
            qualname = f"{self.info.modname}.{node.name}"
        args = node.args
        ordered = (args.posonlyargs + args.args + args.kwonlyargs
                   + ([args.vararg] if args.vararg else [])
                   + ([args.kwarg] if args.kwarg else []))
        info = FunctionInfo(
            qualname=qualname, name=node.name, module=self.info,
            cls=cls, node=node,
            params=[a.arg for a in ordered],
            param_annotations={a.arg: annotation_name(a.annotation)
                               for a in ordered})
        if cls is not None:
            # First definition wins (@property getter vs setter pairs
            # reuse a name; the getter is the one reads resolve to).
            cls.methods.setdefault(node.name, info)
        else:
            self.info.functions.setdefault(node.name, info)
        # Nested defs are deliberately not indexed: they are not
        # addressable cross-module and the file-local rules cover them.

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def


def _collect_attr_types(cls: ClassInfo) -> None:
    """Infer ``self.<attr>`` types from the class's own method bodies."""
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            target = value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            chain = attr_chain(target) if target is not None else None
            if chain is None or len(chain) != 2 or chain[0] != "self":
                continue
            attr = chain[1]
            if isinstance(node, ast.AnnAssign):
                name = annotation_name(node.annotation)
                if name:
                    cls.attr_types.setdefault(attr, name)
                    continue
            if isinstance(value, ast.Call):
                name = ".".join(attr_chain(value.func) or ()) or None
                if name:
                    cls.attr_types.setdefault(attr, name)


# ======================================================================
# The project index


class ProjectIndex:
    """Symbol table over one ``repro`` package tree."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: qualname -> ClassInfo / FunctionInfo, project-wide.
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._mro_cache: Dict[str, List[ClassInfo]] = {}
        self._subclasses: Optional[Dict[str, List[ClassInfo]]] = None

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, root: Union[str, Path]) -> "ProjectIndex":
        """Index every ``.py`` file under ``root`` (a ``repro`` package
        directory, or any directory containing one)."""
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        return cls.build_files(files)

    @classmethod
    def build_files(cls, files: Sequence[Union[str, Path]]
                    ) -> "ProjectIndex":
        index = cls()
        for path in files:
            path = Path(path)
            try:
                source = path.read_text()
            except OSError:
                continue
            index.add_source(source, relpath_of(path), path=path)
        index.finalize()
        return index

    def add_source(self, source: str, relpath: str,
                   path: Optional[Path] = None) -> Optional[ModuleInfo]:
        """Parse and index one source string (None on syntax errors —
        the classic linter reports those as E999)."""
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError:
            return None
        modname = relpath[:-3].replace("/", ".")
        if modname.endswith(".__init__"):
            modname = modname[:-len(".__init__")]
        info = ModuleInfo(modname=modname, relpath=relpath, path=path,
                          tree=tree, source=source,
                          lines=source.splitlines())
        _ModuleCollector(info).visit(tree)
        self.modules[modname] = info
        return info

    def finalize(self) -> None:
        """Build the project-wide qualname maps (after add_source calls)."""
        self.classes.clear()
        self.functions.clear()
        for module in self.modules.values():
            for klass in module.classes.values():
                self.classes[klass.qualname] = klass
                _collect_attr_types(klass)
                for method in klass.methods.values():
                    self.functions[method.qualname] = method
            for func in module.functions.values():
                self.functions[func.qualname] = func
        self._mro_cache.clear()
        self._subclasses = None

    # -- name resolution ------------------------------------------------

    def resolve_class(self, name: str,
                      module: ModuleInfo) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted) class name used inside ``module``."""
        if not name:
            return None
        head, _, rest = name.partition(".")
        # Local class first (later defs shadow imports, close enough).
        if not rest and head in module.classes:
            return module.classes[head]
        target = module.imports.get(head)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
        else:
            dotted = name
        hit = self.classes.get(dotted)
        if hit is not None:
            return hit
        # ``import repro.sim.worker`` + ``repro.sim.worker.Worker``.
        if "." in dotted:
            modpart, _, symbol = dotted.rpartition(".")
            mod = self.modules.get(modpart)
            if mod is not None:
                return mod.classes.get(symbol)
        return None

    def resolve_function(self, name: str,
                         module: ModuleInfo) -> Optional[FunctionInfo]:
        """Resolve a (possibly dotted) function name used in ``module``."""
        head, _, rest = name.partition(".")
        if not rest and head in module.functions:
            return module.functions[head]
        target = module.imports.get(head)
        dotted = (f"{target}.{rest}" if rest else target) \
            if target is not None else name
        hit = self.functions.get(dotted)
        if hit is not None:
            return hit
        if "." in dotted:
            modpart, _, symbol = dotted.rpartition(".")
            mod = self.modules.get(modpart)
            if mod is not None:
                return mod.functions.get(symbol)
        return None

    # -- class hierarchy ------------------------------------------------

    def bases_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """Direct project-internal bases, declaration order."""
        out = []
        for name in cls.base_names:
            base = self.resolve_class(name, cls.module)
            if base is not None:
                out.append(base)
        return out

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """C3 linearization over project-internal classes.

        External bases (``Protocol``, ``enum.Enum`` ...) are ignored —
        their methods are not analyzable anyway. Falls back to a
        depth-first, left-to-right, duplicates-last order if the C3
        merge fails (inconsistent hierarchies cannot occur in code that
        actually imports, but string fixtures might).
        """
        cached = self._mro_cache.get(cls.qualname)
        if cached is not None:
            return cached
        bases = self.bases_of(cls)
        try:
            sequences = [[cls]] + [list(self.mro(b)) for b in bases] \
                + [list(bases)]
            result = _c3_merge(sequences)
        except ValueError:
            seen: Dict[str, ClassInfo] = {}
            stack = [cls]
            while stack:
                node = stack.pop(0)
                seen.setdefault(node.qualname, node)
                stack.extend(b for b in self.bases_of(node)
                             if b.qualname not in seen)
            result = list(seen.values())
        self._mro_cache[cls.qualname] = result
        return result

    def resolve_method(self, cls: ClassInfo,
                       name: str) -> Optional[FunctionInfo]:
        """The method ``name`` dispatches to on an instance of ``cls``."""
        for klass in self.mro(cls):
            hit = klass.methods.get(name)
            if hit is not None:
                return hit
        return None

    def subclasses(self, cls: ClassInfo) -> List[ClassInfo]:
        """All transitive project-internal subclasses, indexed once."""
        if self._subclasses is None:
            table: Dict[str, List[ClassInfo]] = {}
            for klass in self.classes.values():
                for base in self.bases_of(klass):
                    table.setdefault(base.qualname, []).append(klass)
            self._subclasses = table
        out: List[ClassInfo] = []
        queue = list(self._subclasses.get(cls.qualname, ()))
        seen = set()
        while queue:
            sub = queue.pop(0)
            if sub.qualname in seen:
                continue
            seen.add(sub.qualname)
            out.append(sub)
            queue.extend(self._subclasses.get(sub.qualname, ()))
        return out

    # -- attribute-access index ----------------------------------------

    def accesses(self, func: FunctionInfo) -> List[Access]:
        """Every Name/Attribute chain ``func`` touches, with its
        read/write/delete/call classification.

        Call receivers are reported as ``call`` with the chain including
        the method name (``("self", "sim", "schedule")``); plain reads
        nested inside other chains are not double-reported.
        """
        out: List[Access] = []

        def classify(node: ast.AST, kind: str) -> bool:
            chain = attr_chain(node)
            if chain is None:
                return False
            out.append(Access(chain, kind, node))
            return True

        class Walker(ast.NodeVisitor):
            def visit_Assign(self, node: ast.Assign) -> None:
                for target in node.targets:
                    self._store(target)
                self.visit(node.value)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                self._store(node.target)
                if node.value is not None:
                    self.visit(node.value)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                self._store(node.target)
                self.visit(node.value)

            def _store(self, target: ast.AST) -> None:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        self._store(elt)
                    return
                if isinstance(target, ast.Subscript):
                    classify(target.value, "write")
                    self.visit(target.slice)
                    return
                if not classify(target, "write"):
                    self.generic_visit(target)

            def visit_Delete(self, node: ast.Delete) -> None:
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        classify(target.value, "delete")
                        self.visit(target.slice)
                    elif not classify(target, "delete"):
                        self.generic_visit(target)

            def visit_Call(self, node: ast.Call) -> None:
                if not classify(node.func, "call"):
                    self.visit(node.func)
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)

            def visit_Attribute(self, node: ast.Attribute) -> None:
                if not classify(node, "read"):
                    self.generic_visit(node)

            def visit_Name(self, node: ast.Name) -> None:
                if isinstance(node.ctx, ast.Load):
                    classify(node, "read")

        walker = Walker()
        for stmt in func.node.body:
            walker.visit(stmt)
        return out


def _c3_merge(sequences: List[List[ClassInfo]]) -> List[ClassInfo]:
    """Standard C3 merge; raises ValueError on inconsistent input."""
    result: List[ClassInfo] = []
    sequences = [list(seq) for seq in sequences if seq]
    while sequences:
        for seq in sequences:
            head = seq[0]
            if not any(head in other[1:] for other in sequences):
                break
        else:
            raise ValueError("inconsistent hierarchy")
        result.append(head)
        for seq in sequences:
            if seq and seq[0] is head:
                del seq[0]
        sequences = [seq for seq in sequences if seq]
    return result


def find_package_root(paths: Iterable[Union[str, Path]]) -> Optional[Path]:
    """The ``repro`` package directory governing ``paths``, if any.

    Walks each path's resolved parts looking for a ``repro`` component;
    the whole-program analyses index everything under it even when the
    user asked to lint a single file (findings are filtered back to the
    requested paths by the driver).
    """
    for path in paths:
        parts = Path(path).resolve().parts
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                return Path(*parts[:i + 1])
    return None
