"""Whole-program analyses for repro-lint (``repro-lint --deep``).

The classic engine lints one file at a time; this package indexes the
entire ``repro`` package (symbol table + call graph) and runs the three
interprocedural analyses on it:

* :mod:`repro.lint.deep.shard`  — SHD001/SHD002 shard-safety and the
  ``shard-report.json`` inventory feeding ROADMAP item 2;
* :mod:`repro.lint.deep.purity` — PUR003 transitive observer purity;
* :mod:`repro.lint.deep.units`  — API002 cross-function dimension
  inference.

:func:`deep_lint_paths` is the driver the CLI calls: it discovers the
package root governing the requested paths, indexes *everything* under
it (whole-program analyses are only sound with the whole program), then
filters findings back to the files actually requested. Inline
``# repro-lint: disable=`` suppressions and the baseline protocol work
exactly as in the classic engine, but against a separate committed
file — :data:`DEEP_BASELINE_FILENAME` — so grandfathering a deep
finding never loosens the classic gate.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.engine import (
    LintReport,
    _suppressions,
    iter_python_files,
    relpath_of,
)
from repro.lint.findings import Finding
from repro.lint.rules import Rule
from repro.lint.deep.callgraph import CallGraph
from repro.lint.deep.purity import PURITY_SCOPES, purity_findings
from repro.lint.deep.shard import SHARD_SCOPES, ShardAnalysis
from repro.lint.deep.symbols import ProjectIndex, find_package_root
from repro.lint.deep.units import units_findings

#: Committed baseline for deep findings (same schema/keying as the
#: classic ``lint-baseline.json``, separate file).
DEEP_BASELINE_FILENAME = "lint-deep-baseline.json"

#: Rule catalogue for ``--rules`` (the deep analyses are not Checker
#: subclasses — they need the whole project, not one tree — but their
#: metadata lives in the same format).
DEEP_RULES = (
    Rule(code="SHD001", name="unannotated-cross-worker",
         severity="error", scopes=SHARD_SCOPES,
         rationale="Sharding the cluster along worker boundaries "
                   "(ROADMAP item 2) must serialize every cross-worker "
                   "access through the merge protocol; an undeclared "
                   "one is a silent shard-consistency bug. Annotate "
                   "intentional sites with `# shard: cross-worker "
                   "<reason>`."),
    Rule(code="SHD002", name="stale-shard-annotation",
         severity="warning", scopes=SHARD_SCOPES,
         rationale="A `# shard:` annotation that no longer matches a "
                   "pool or channel access (or disagrees with the "
                   "computed ownership) misdocuments the merge-"
                   "protocol work-list."),
    Rule(code="PUR003", name="transitive-observer-purity",
         severity="error", scopes=PURITY_SCOPES,
         rationale="A probe callback that passes sim-owned state to a "
                   "helper that mutates it perturbs the simulation "
                   "exactly like a direct write, but across a call "
                   "boundary the file-local PUR rules cannot see."),
    Rule(code="API002", name="inferred-unit-mixing",
         severity="error", scopes=(),
         rationale="Unit suffixes propagated through assignments, "
                   "returns and call bindings still denote units; "
                   "mixing _ms with _s across a function boundary is "
                   "a conversion bug no single expression shows."),
)


def deep_rules() -> List[Rule]:
    return sorted(DEEP_RULES, key=lambda r: r.code)


def find_deep_baseline(paths: Sequence[Union[str, Path]]
                       ) -> Optional[Path]:
    """Walk up from the linted paths to the committed deep baseline."""
    for start in list(paths) or [Path.cwd()]:
        node = Path(start).resolve()
        if node.is_file():
            node = node.parent
        for parent in (node, *node.parents):
            candidate = parent / DEEP_BASELINE_FILENAME
            if candidate.is_file():
                return candidate
            if (parent / "pyproject.toml").is_file():
                break
    return None


def build_project(paths: Sequence[Union[str, Path]]
                  ) -> Tuple[ProjectIndex, List[Path]]:
    """Index the package governing ``paths``.

    Returns the index plus the concrete files the user asked about
    (findings are filtered to those). When the paths are not under a
    ``repro`` package directory the given files alone form the project
    (string fixtures in tests use :meth:`ProjectIndex.add_source`
    directly).
    """
    files = iter_python_files(paths)
    root = find_package_root(files if files else list(paths))
    if root is not None:
        project = ProjectIndex.build(root)
    else:
        project = ProjectIndex.build_files(files)
    return project, files


def deep_findings(project: ProjectIndex
                  ) -> Tuple[List[Finding], Dict]:
    """All deep findings plus the shard-report payload."""
    graph = CallGraph.build(project)
    shard = ShardAnalysis(project).run()
    findings = list(shard.findings)
    findings.extend(purity_findings(graph))
    findings.extend(units_findings(graph))
    findings.sort(key=Finding.sort_key)
    return findings, shard.report(root="src/repro")


def deep_lint_paths(paths: Sequence[Union[str, Path]],
                    baseline: Optional[Sequence[dict]] = None,
                    select: Optional[Tuple[str, ...]] = None
                    ) -> Tuple[LintReport, Dict]:
    """Run the deep analyses for ``paths``.

    Returns ``(report, shard_report)``. The shard report always covers
    the whole project — it is an inventory, not a diagnostic — while
    the report's findings are filtered to the requested files.
    """
    project, files = build_project(paths)
    requested = {relpath_of(f) for f in files}
    all_findings, shard = deep_findings(project)

    report = LintReport()
    report.files = len(files)
    kept: List[Finding] = []
    for finding in all_findings:
        if requested and finding.path not in requested:
            continue
        if select is not None and finding.rule not in select:
            continue
        module = _module_for(project, finding.path)
        if module is not None:
            table = _suppressions(module.lines)
            codes = table.get(finding.line, ())
            if "ALL" in codes or finding.rule in codes:
                report.suppressed += 1
                continue
        kept.append(finding)

    if baseline:
        matched = set()
        by_key: Dict[tuple, List[int]] = {}
        for i, entry in enumerate(baseline):
            by_key.setdefault(
                (entry["rule"], entry["path"], entry["line_text"]),
                []).append(i)
        survived = []
        for finding in kept:
            indexes = by_key.get(finding.baseline_key())
            if indexes:
                report.baselined += 1
                matched.update(indexes)
            else:
                survived.append(finding)
        kept = survived
        report.stale_baseline = [entry for i, entry in
                                 enumerate(baseline) if i not in matched]

    report.findings = sorted(kept, key=Finding.sort_key)
    return report, shard


def _module_for(project: ProjectIndex, relpath: str):
    for module in project.modules.values():
        if module.relpath == relpath:
            return module
    return None


__all__ = [
    "DEEP_BASELINE_FILENAME",
    "DEEP_RULES",
    "CallGraph",
    "ProjectIndex",
    "build_project",
    "deep_findings",
    "deep_lint_paths",
    "deep_rules",
    "find_deep_baseline",
]
