"""PUR003 — transitive (call-graph-propagated) observer purity.

The file-local ``PUR001``/``PUR002`` catch an observer that *directly*
writes through a sim-owned parameter. They are blind to indirection: a
probe callback that hands the orchestrator to a helper in another
module, where the helper does the writing, passes the classic rules —
the helper's own writes are either outside the observer scopes or
rooted at a parameter the local rule cannot know is sim-owned at *this*
call site.

This analysis closes that hole with per-function **mutation
summaries** propagated to a fixpoint over the call graph:

1. For every indexed function, compute the set of its parameters that
   the body may mutate *directly* — an attribute/subscript write or
   delete rooted at the parameter, or a call of a known mutating
   method (``MUTATING_METHODS`` from the classic rule) on a receiver
   rooted at it. ``self`` is a parameter like any other, so a method
   that writes ``self._x`` has summary ``{self}``.
2. Propagate transitively: at each resolved call site, bind arguments
   to callee parameters (receiver binds to the callee's ``self``); an
   argument rooted at caller parameter ``q`` that binds to a mutated
   callee parameter marks ``q`` mutated in the caller. Iterate until
   stable.
3. Report: inside the observer scopes only, re-run the classic taint
   model (every parameter except ``self``/``cls`` is sim-owned, locals
   rooted at tainted names inherit taint) and flag each call site that
   passes a sim-owned value into a mutated parameter of the resolved
   callee — wherever that callee lives.

Writes to the sanitizer's observational-purity allowlist
(:data:`ALLOWED_WRITE_ATTRS`, mirroring
``repro.sim.sanitizer._ALLOWED_WRITES``) do not count as mutations —
the lazy evictable-memory caches are bit-identity-safe by design, and
the static and dynamic tools must agree on that. A test cross-checks
the two lists.

Findings carry a *witness chain* (``calls `helper()` → writes
`orch._pending```) so the fix is obvious without re-running the
analysis by hand.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.checks_purity import MUTATING_METHODS
from repro.lint.deep.callgraph import CallGraph, CallSite, bind_arguments
from repro.lint.deep.symbols import FunctionInfo, attr_chain
from repro.lint.findings import Finding

#: Attribute writes that are observationally pure (mirrors
#: ``repro.sim.sanitizer._ALLOWED_WRITES``; cross-checked by tests).
ALLOWED_WRITE_ATTRS = frozenset({
    "_evictable_mb_cache",
    "_evictable_mb_gen",
})

#: Observer scopes (``repro/`` stripped) — where purity is required.
PURITY_SCOPES = ("obs/", "sim/telemetry.py")

#: Fixpoint safety valve; the call graph is shallow in practice.
_MAX_ROUNDS = 50


# ======================================================================
# Per-function direct mutations


def _param_aliases(func: FunctionInfo) -> Dict[str, str]:
    """local name -> parameter it roots at (single lexical pass)."""
    aliases: Dict[str, str] = {p: p for p in func.params}
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        chain = attr_chain(node.value)
        if chain and chain[0] in aliases \
                and target.id not in func.params:
            aliases[target.id] = aliases[chain[0]]
    return aliases


def _rooted_param(node: ast.AST, aliases: Dict[str, str]
                  ) -> Optional[str]:
    """The parameter an expression is rooted at, unwinding subscripts
    and zero-effect calls down the chain head."""
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    chain = attr_chain(node)
    if chain is None:
        return None
    return aliases.get(chain[0])


def direct_mutations(func: FunctionInfo) -> Dict[str, str]:
    """param -> witness for mutations the body performs itself."""
    aliases = _param_aliases(func)
    out: Dict[str, str] = {}

    def note(param: Optional[str], witness: str) -> None:
        if param is not None and param not in out:
            out[param] = witness

    def check_write(target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                check_write(elt)
            return
        if isinstance(target, ast.Attribute):
            if target.attr in ALLOWED_WRITE_ATTRS:
                return
            chain = attr_chain(target)
            note(_rooted_param(target.value, aliases),
                 f"writes `{'.'.join(chain) if chain else target.attr}`")
        elif isinstance(target, ast.Subscript):
            param = _rooted_param(target.value, aliases)
            chain = attr_chain(target.value)
            note(param, f"writes "
                        f"`{'.'.join(chain) if chain else param}[...]`")

    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                check_write(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            check_write(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                check_write(target)
        elif isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain and len(chain) >= 2 \
                    and chain[-1] in MUTATING_METHODS:
                recv = node.func
                assert isinstance(recv, ast.Attribute)
                note(_rooted_param(recv.value, aliases),
                     f"calls `{'.'.join(chain)}()`")
    return out


# ======================================================================
# Transitive summaries


class PuritySummaries:
    """Fixpoint mutation summaries for every function in the graph."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: qualname -> {param -> witness chain}.
        self.mutations: Dict[str, Dict[str, str]] = {}
        self._compute()

    def _compute(self) -> None:
        funcs = self.graph.project.functions
        for func in funcs.values():
            self.mutations[func.qualname] = direct_mutations(func)
        aliases = {q: _param_aliases(f) for q, f in funcs.items()}
        for _ in range(_MAX_ROUNDS):
            changed = False
            for func in funcs.values():
                table = self.mutations[func.qualname]
                for site in self.graph.callees(func):
                    for param, witness in self._flow(
                            site, aliases[func.qualname]):
                        if param not in table:
                            table[param] = witness
                            changed = True
            if not changed:
                break

    def _flow(self, site: CallSite, aliases: Dict[str, str]):
        """(caller_param, witness) pairs this call site induces."""
        callee = site.callee
        callee_mut = self.mutations.get(callee.qualname, {})
        if not callee_mut:
            return
        node = site.node
        # Receiver -> callee self.
        if site.via in ("method", "virtual", "init") \
                and isinstance(node.func, ast.Attribute) \
                and "self" in callee_mut:
            param = _rooted_param(node.func.value, aliases)
            if param is not None:
                yield param, (f"calls `{callee.name}()` → "
                              f"{callee_mut['self']}")
        if site.via == "super" and "self" in callee_mut:
            yield "self", (f"calls `super().{callee.name}()` → "
                           f"{callee_mut['self']}")
        # Arguments -> callee params.
        for callee_param, arg in bind_arguments(
                node, callee, skip_self=site.via != "direct"):
            witness = callee_mut.get(callee_param)
            if witness is None:
                continue
            param = _rooted_param(arg, aliases)
            if param is not None:
                yield param, f"calls `{callee.name}()` → {witness}"

    def mutated_params(self, func: FunctionInfo) -> Dict[str, str]:
        return self.mutations.get(func.qualname, {})


# ======================================================================
# Findings


def _in_purity_scope(relpath: str) -> bool:
    scope_path = relpath[len("repro/"):] \
        if relpath.startswith("repro/") else relpath
    return any(scope_path == s or scope_path.startswith(s)
               for s in PURITY_SCOPES)


def purity_findings(graph: CallGraph) -> List[Finding]:
    """PUR003 findings across the project's observer scopes."""
    summaries = PuritySummaries(graph)
    findings: List[Finding] = []
    for func in graph.project.functions.values():
        if not _in_purity_scope(func.relpath):
            continue
        aliases = _param_aliases(func)
        # Classic taint: every param except self/cls is sim-owned.
        owned = {p for p in func.params if p not in ("self", "cls")}
        for site in graph.callees(func):
            callee = site.callee
            callee_mut = summaries.mutated_params(callee)
            if not callee_mut:
                continue
            node = site.node
            hits: List[str] = []
            if site.via in ("method", "virtual", "init") \
                    and isinstance(node.func, ast.Attribute) \
                    and "self" in callee_mut:
                method = node.func.attr
                param = _rooted_param(node.func.value, aliases)
                # PUR002 already covers known mutating method names.
                if (param in owned and aliases.get(param) in owned
                        and method not in MUTATING_METHODS):
                    hits.append(f"receiver `{param}`: "
                                f"{callee_mut['self']}")
            for callee_param, arg in bind_arguments(
                    node, callee, skip_self=site.via != "direct"):
                witness = callee_mut.get(callee_param)
                if witness is None:
                    continue
                param = _rooted_param(arg, aliases)
                if param in owned:
                    hits.append(f"argument `{param}` → parameter "
                                f"`{callee_param}`: {witness}")
            if not hits:
                continue
            module = func.module
            findings.append(Finding(
                rule="PUR003", severity="error", path=func.relpath,
                line=node.lineno, col=node.col_offset,
                message=f"observer passes sim-owned state into "
                        f"`{callee.qualname}`, which mutates it "
                        f"({'; '.join(hits)})",
                line_text=module.line_text(node.lineno)))
    findings.sort(key=Finding.sort_key)
    return findings
