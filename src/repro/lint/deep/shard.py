"""SHD0xx — shard-safety: who owns the state each statement touches?

ROADMAP item 2 shards the cluster simulation across processes along
worker boundaries; the merge protocol only has to serialize the *few*
interactions that cross a shard. This analysis produces the proof of
"few": it classifies every statement in the orchestrator, the worker,
and the policies by the ownership of the state it touches —

* ``self-worker``  — state of the single worker currently being acted
  on (a container, ``worker.add(...)``, ``container.worker`` chains).
  Free under sharding; never reported.
* ``cross-worker`` — enumerates, indexes, aggregates over or escapes
  the *worker pool*, or uses the shared cluster-memory dirty channel.
  Each such site needs a merge-protocol entry, so each must carry a
  ``# shard:`` annotation saying why it is intentional.
* ``cluster-global`` — pool *metadata* only (``len(pool)``, emptiness
  tests): cheap to replicate per shard, inventoried but not flagged.

The worker pool is recognized syntactically: the ``_workers`` mapping,
any ``...workers()`` accessor call (``self.ctx.workers()`` in
policies), and locals assigned from either. The cluster-memory channel
is the ``_usage.dirty`` flag shared between ``Worker._charge`` and
``Orchestrator._sample_memory``.

Annotation grammar (same line, or a standalone comment on the line
above, mirroring ``# repro-lint: disable=``)::

    # shard: cross-worker <free-text reason>
    # shard: cluster-global <free-text reason>

Rules:

* **SHD001** (error) — cross-worker site without a ``# shard:``
  annotation. New cross-shard coupling must be declared deliberately.
* **SHD002** (warning) — a ``# shard:`` annotation on a line where the
  analysis finds no site (stale after a refactor), or whose declared
  ownership disagrees with the computed one.

Besides findings, the analysis emits the full site inventory —
:func:`shard_report` — which CI writes to ``shard-report.json``: the
work-list for the sharded engine's merge protocol.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.deep.symbols import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    attr_chain,
)
from repro.lint.findings import Finding

#: Path prefixes (``repro/`` stripped) the analysis covers — the code
#: that will be split along worker boundaries.
SHARD_SCOPES = ("sim/orchestrator.py", "sim/worker.py",
                "policies/", "core/")

#: Attribute naming the worker pool mapping.
POOL_ATTR = "_workers"
#: Accessor method name returning the pool (Orchestrator.workers and
#: PolicyContext.workers).
POOL_ACCESSOR = "workers"
#: Attribute holding the shared cluster-memory usage channel.
CHANNEL_ATTR = "_usage"

_ANNOTATION_RE = re.compile(
    r"#\s*shard:\s*(self-worker|cross-worker|cluster-global)"
    r"(?:\s+(.*?))?\s*$")

_OWNERSHIP_ORDER = {"self-worker": 0, "cluster-global": 1,
                    "cross-worker": 2}


@dataclass(frozen=True)
class ShardSite:
    """One pool/channel access site."""

    path: str            #: package-relative path
    line: int
    col: int
    function: str        #: enclosing function qualname ("" at module level)
    ownership: str       #: ``cross-worker`` | ``cluster-global``
    kind: str            #: iterate|index|aggregate|escape|size|channel
    detail: str          #: human description
    annotated: bool
    reason: str          #: annotation free-text ("" when unannotated)
    line_text: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.kind)

    def to_dict(self) -> Dict:
        return {
            "path": self.path, "line": self.line, "col": self.col,
            "function": self.function, "ownership": self.ownership,
            "kind": self.kind, "detail": self.detail,
            "annotated": self.annotated, "reason": self.reason,
            "line_text": self.line_text,
        }


# ======================================================================
# Annotation table


def shard_annotations(lines: List[str]) -> Dict[int, Tuple[str, str, int]]:
    """line -> (ownership, reason, comment_line).

    A standalone ``# shard:`` comment annotates the next non-blank,
    non-comment line; a trailing one annotates its own line. The
    ``comment_line`` is where the annotation physically lives (for
    staleness reporting).
    """
    out: Dict[int, Tuple[str, str, int]] = {}
    for i, raw in enumerate(lines, start=1):
        match = _ANNOTATION_RE.search(raw)
        if match is None:
            continue
        ownership = match.group(1)
        reason = (match.group(2) or "").strip()
        if raw.lstrip().startswith("#"):
            target = None
            for j in range(i + 1, len(lines) + 1):
                text = lines[j - 1].strip()
                if text and not text.startswith("#"):
                    target = j
                    break
            if target is not None:
                out[target] = (ownership, reason, i)
        else:
            out[i] = (ownership, reason, i)
    return out


# ======================================================================
# Per-function site extraction


class _ShardWalk(ast.NodeVisitor):
    """Finds pool/channel access sites in one function body."""

    def __init__(self, analysis: "ShardAnalysis", func: FunctionInfo):
        self.analysis = analysis
        self.func = func
        #: locals aliasing the pool (or a view of it).
        self.pool_locals: Set[str] = set()
        self.sites: List[ShardSite] = []

    # -- pool recognition ----------------------------------------------

    def is_pool(self, node: ast.AST) -> bool:
        """Does this expression evaluate to the worker pool (or a
        same-contents view of it)?"""
        if isinstance(node, ast.Name):
            return node.id in self.pool_locals
        if isinstance(node, ast.Attribute):
            return node.attr == POOL_ATTR
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain and chain[-1] == POOL_ACCESSOR:
                return True
            # dict views / shallow copies keep pool contents.
            if (chain and len(chain) >= 2
                    and chain[-1] in ("values", "items", "keys", "copy")
                    and self.is_pool_chain_prefix(node.func)):
                return True
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple", "sorted",
                                         "set", "dict")
                    and node.args and self.is_pool(node.args[0])):
                return True
        if isinstance(node, (ast.ListComp, ast.GeneratorExp,
                             ast.SetComp)):
            # A comprehension over the pool yields worker-derived
            # values; the comprehension itself is recorded as an
            # iterate site, its result is not re-flagged.
            return False
        return False

    def is_pool_chain_prefix(self, node: ast.AST) -> bool:
        """True for ``<pool>.values`` style attribute heads."""
        return (isinstance(node, ast.Attribute)
                and self.is_pool(node.value))

    # -- site emission --------------------------------------------------

    def site(self, node: ast.AST, ownership: str, kind: str,
             detail: str) -> None:
        self.analysis.add_site(self.func, node, ownership, kind, detail,
                               self.sites)

    # -- statements -----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        # A filtered view built by a comprehension over the pool is
        # still a set of workers — placement then indexes/minimizes
        # over it, and those are the real cross-worker decisions.
        is_view = (isinstance(value, (ast.ListComp, ast.GeneratorExp,
                                      ast.SetComp))
                   and value.generators
                   and self.is_pool(value.generators[0].iter))
        if self.is_pool(value) or is_view:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.pool_locals.add(target.id)
        self._check_channel_store(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_channel_store([node.target])
        self.generic_visit(node)

    def _check_channel_store(self, targets: List[ast.AST]) -> None:
        for target in targets:
            chain = attr_chain(target)
            if chain and CHANNEL_ATTR in chain[:-1]:
                self.site(target, "cross-worker", "channel",
                          f"writes shared cluster-memory channel "
                          f"`{'.'.join(chain)}`")

    def visit_For(self, node: ast.For) -> None:
        if self.is_pool(node.iter):
            self.site(node.iter, "cross-worker", "iterate",
                      "iterates the worker pool")
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if self.is_pool(node.iter):
            self.site(node.iter, "cross-worker", "iterate",
                      "iterates the worker pool (comprehension)")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self.is_pool(node.value):
            self.site(node, "cross-worker", "index",
                      "indexes the worker pool by worker id")
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self.is_pool(node.value):
            self.site(node, "cross-worker", "escape",
                      "returns the worker pool to the caller")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        for arg in node.args:
            if not self.is_pool(arg):
                continue
            if func_name == "len":
                self.site(node, "cluster-global", "size",
                          "reads the worker-pool size")
            elif func_name in ("list", "tuple", "sorted", "set",
                               "dict"):
                pass  # handled as a pool expression by the consumer
            else:
                self.site(node, "cross-worker", "aggregate",
                          f"worker pool passed to "
                          f"{func_name or 'a call'}()")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = attr_chain(node)
        if (chain and CHANNEL_ATTR in chain[:-1]
                and isinstance(node.ctx, ast.Load)):
            self.site(node, "cross-worker", "channel",
                      f"reads shared cluster-memory channel "
                      f"`{'.'.join(chain)}`")
        self.generic_visit(node)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        if isinstance(node.op, ast.Not) and self.is_pool(node.operand):
            self.site(node, "cluster-global", "size",
                      "tests worker-pool emptiness")
            return
        self.generic_visit(node)

    def visit_If(self, node: ast.If) -> None:
        if self.is_pool(node.test):
            self.site(node.test, "cluster-global", "size",
                      "tests worker-pool emptiness")
        self.generic_visit(node)

    def _skip_nested(self, node) -> None:
        # Nested defs get their own FunctionInfo walk only when
        # indexed; here they share the enclosing scope's pool locals,
        # so walking them in place is both simplest and correct.
        self.generic_visit(node)

    visit_FunctionDef = _skip_nested
    visit_AsyncFunctionDef = _skip_nested


# ======================================================================
# The analysis


class ShardAnalysis:
    """Runs shard-safety over every in-scope module of a project."""

    def __init__(self, project: ProjectIndex):
        self.project = project
        self.sites: List[ShardSite] = []
        self.findings: List[Finding] = []
        #: per-module annotation tables, filled lazily.
        self._annotations: Dict[str, Dict[int, Tuple[str, str, int]]] = {}
        #: comment lines whose annotation matched a site.
        self._used_annotations: Dict[str, Set[int]] = {}

    @staticmethod
    def in_scope(relpath: str) -> bool:
        scope_path = relpath[len("repro/"):] \
            if relpath.startswith("repro/") else relpath
        return any(scope_path == s or scope_path.startswith(s)
                   for s in SHARD_SCOPES)

    def run(self) -> "ShardAnalysis":
        for module in sorted(self.project.modules.values(),
                             key=lambda m: m.relpath):
            if not self.in_scope(module.relpath):
                continue
            self._annotations[module.relpath] = shard_annotations(
                module.lines)
            self._used_annotations[module.relpath] = set()
            for func in self._functions_of(module):
                walk = _ShardWalk(self, func)
                for stmt in func.node.body:
                    walk.visit(stmt)
                self.sites.extend(walk.sites)
            self._report_stale(module)
        self.sites.sort(key=ShardSite.sort_key)
        self.findings.sort(key=Finding.sort_key)
        return self

    def _functions_of(self, module: ModuleInfo) -> List[FunctionInfo]:
        out = list(module.functions.values())
        for cls in module.classes.values():
            out.extend(cls.methods.values())
        out.sort(key=lambda f: f.lineno)
        return out

    # -- site + finding emission ---------------------------------------

    def add_site(self, func: FunctionInfo, node: ast.AST,
                 ownership: str, kind: str, detail: str,
                 local_sites: List[ShardSite]) -> None:
        module = func.module
        line = getattr(node, "lineno", func.lineno)
        col = getattr(node, "col_offset", 0)
        # One site per (line, kind): a comprehension's iter is visited
        # through both For/comprehension handlers and generic traversal.
        if any(s.line == line and s.kind == kind
               for s in local_sites):
            return
        table = self._annotations[module.relpath]
        entry = table.get(line)
        annotated = entry is not None
        reason = entry[1] if entry else ""
        if entry is not None:
            self._used_annotations[module.relpath].add(entry[2])
        site = ShardSite(
            path=module.relpath, line=line, col=col,
            function=func.qualname, ownership=ownership, kind=kind,
            detail=detail, annotated=annotated, reason=reason,
            line_text=module.line_text(line))
        local_sites.append(site)
        if ownership == "cross-worker" and not annotated:
            self.findings.append(Finding(
                rule="SHD001", severity="error", path=module.relpath,
                line=line, col=col,
                message=f"unannotated cross-worker access: {detail}; "
                        f"declare it with `# shard: cross-worker "
                        f"<reason>` (each such site needs a merge-"
                        f"protocol entry under ROADMAP item 2)",
                line_text=module.line_text(line)))
        elif entry is not None and entry[0] != ownership:
            self.findings.append(Finding(
                rule="SHD002", severity="warning", path=module.relpath,
                line=line, col=col,
                message=f"`# shard: {entry[0]}` disagrees with the "
                        f"computed ownership `{ownership}` ({detail})",
                line_text=module.line_text(line)))

    def _report_stale(self, module: ModuleInfo) -> None:
        used = self._used_annotations[module.relpath]
        for target, (ownership, _reason, comment_line) in sorted(
                self._annotations[module.relpath].items()):
            if comment_line in used:
                continue
            self.findings.append(Finding(
                rule="SHD002", severity="warning", path=module.relpath,
                line=comment_line, col=0,
                message=f"stale `# shard: {ownership}` annotation: no "
                        f"pool or channel access on the annotated line",
                line_text=module.line_text(comment_line)))

    # -- report ---------------------------------------------------------

    def report(self, root: str) -> Dict:
        """The machine-readable ``shard-report.json`` payload."""
        counts: Dict[str, int] = {}
        kinds: Dict[str, int] = {}
        for site in self.sites:
            counts[site.ownership] = counts.get(site.ownership, 0) + 1
            kinds[site.kind] = kinds.get(site.kind, 0) + 1
        return {
            "version": 1,
            "root": root,
            "scopes": list(SHARD_SCOPES),
            "summary": {
                "sites": len(self.sites),
                "by_ownership": dict(sorted(counts.items())),
                "by_kind": dict(sorted(kinds.items())),
                "unannotated_cross_worker": sum(
                    1 for s in self.sites
                    if s.ownership == "cross-worker"
                    and not s.annotated),
            },
            "sites": [s.to_dict() for s in self.sites],
        }


def shard_report(project: ProjectIndex, root: str = "src/repro") -> Dict:
    return ShardAnalysis(project).run().report(root)
