"""Project-wide call graph over a :class:`~repro.lint.deep.symbols.ProjectIndex`.

The deep analyses need to follow calls across files: transitive purity
walks caller -> callee mutation summaries, dimension inference binds
argument units to callee parameters, and shard safety must know what
``self.priority(...)`` means inside ``CIPEvictionMixin`` (answer: the
override in the concrete policy, via the C3 MRO).

Resolution is deliberately conservative and purely syntactic:

* ``name(...)`` — a local ``def`` in the same module, else an imported
  function, resolved through the module's import table;
* ``mod.func(...)`` / ``pkg.mod.func(...)`` — through the import table;
* ``self.m(...)`` — MRO lookup starting at the enclosing class; if the
  class itself does not define ``m`` anywhere in its MRO (abstract
  hooks, Protocol members) the call is *virtually dispatched*: every
  project-internal subclass override is added as a possible target,
  which is exactly what makes ``CSSScalingMixin`` calling the abstract
  ``scale_signal`` land on the concrete policy's implementation;
* ``super().m(...)`` — MRO lookup starting *after* the enclosing class,
  matching cooperative mixin chains;
* ``Class.m(...)`` and ``Class(...)`` — explicit class method calls and
  constructor calls (``__init__``);
* ``x.m(...)`` where ``x`` is a parameter with a resolvable class
  annotation, or ``self.attr`` with an inferred attribute type —
  MRO lookup on that class.

Anything else (builtins, stdlib, dynamically-typed receivers) is kept
as an :class:`UnresolvedCall` so analyses can still pattern-match on
the receiver/method names (e.g. ``list.append`` mutation heuristics).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.deep.symbols import (
    Access,
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    attr_chain,
)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge."""

    caller: FunctionInfo
    callee: FunctionInfo
    node: ast.Call
    #: How the callee was reached: ``direct`` (plain/module-qualified
    #: name), ``method`` (typed receiver incl. ``self``), ``super``,
    #: ``virtual`` (abstract hook dispatched over subclasses), ``init``
    #: (constructor).
    via: str

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass(frozen=True)
class UnresolvedCall:
    """A call the graph could not (or chose not to) resolve."""

    caller: FunctionInfo
    node: ast.Call
    #: Receiver chain without the method, e.g. ``("self", "_pending")``
    #: for ``self._pending.append(x)``; empty for ``name(...)`` calls.
    receiver: Tuple[str, ...]
    method: str


class CallGraph:
    """Call edges for every indexed function."""

    def __init__(self, project: ProjectIndex):
        self.project = project
        self.calls: Dict[str, List[CallSite]] = {}
        self.unresolved: Dict[str, List[UnresolvedCall]] = {}
        self._callers: Optional[Dict[str, List[CallSite]]] = None

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, project: ProjectIndex) -> "CallGraph":
        graph = cls(project)
        for func in project.functions.values():
            graph._index_function(func)
        return graph

    def _index_function(self, func: FunctionInfo) -> None:
        sites: List[CallSite] = []
        pending: List[UnresolvedCall] = []
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_call(func, node)
            if resolved:
                sites.extend(CallSite(func, callee, node, via)
                             for callee, via in resolved)
            else:
                chain = attr_chain(node.func)
                if chain is None:
                    continue
                pending.append(UnresolvedCall(
                    caller=func, node=node,
                    receiver=chain[:-1], method=chain[-1]))
        self.calls[func.qualname] = sites
        self.unresolved[func.qualname] = pending

    # -- resolution -----------------------------------------------------

    def _resolve_call(self, func: FunctionInfo, node: ast.Call
                      ) -> List[Tuple[FunctionInfo, str]]:
        target = node.func
        module = func.module

        # super().m(...) — cooperative dispatch depends on the MRO of
        # the *instantiating* class, not the defining one: MixA's
        # super() lands on MixB when both sit under one concrete
        # policy. Resolve against every project class that inherits
        # the definer (and the definer itself) and collect the
        # distinct next-in-line targets.
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Call)
                and isinstance(target.value.func, ast.Name)
                and target.value.func.id == "super"
                and func.cls is not None):
            targets: Dict[str, FunctionInfo] = {}
            candidates = [func.cls] + self.project.subclasses(func.cls)
            for concrete in candidates:
                mro = self.project.mro(concrete)
                if func.cls not in mro:
                    continue
                for klass in mro[mro.index(func.cls) + 1:]:
                    hit = klass.methods.get(target.attr)
                    if hit is not None:
                        targets.setdefault(hit.qualname, hit)
                        break
            return [(hit, "super") for hit in targets.values()]

        chain = attr_chain(target)
        if chain is None:
            return []

        if len(chain) == 1:
            name = chain[0]
            # Constructor call on a local/imported class.
            klass = self.project.resolve_class(name, module)
            if klass is not None:
                init = self.project.resolve_method(klass, "__init__")
                return [(init, "init")] if init is not None else []
            hit = self.project.resolve_function(name, module)
            return [(hit, "direct")] if hit is not None else []

        receiver, method = chain[:-1], chain[-1]

        # self.m(...) — MRO then virtual dispatch over subclasses.
        if receiver == ("self",) and func.cls is not None:
            hit = self.project.resolve_method(func.cls, method)
            if hit is not None:
                return [(hit, "method")]
            targets = []
            for sub in self.project.subclasses(func.cls):
                own = sub.methods.get(method)
                if own is not None:
                    targets.append((own, "virtual"))
            return targets

        # self.attr.m(...) — through the inferred attribute type.
        if (len(receiver) == 2 and receiver[0] == "self"
                and func.cls is not None):
            for klass in self.project.mro(func.cls):
                type_name = klass.attr_types.get(receiver[1])
                if type_name is None:
                    continue
                attr_cls = self.project.resolve_class(
                    type_name, klass.module)
                if attr_cls is None:
                    break
                hit = self.project.resolve_method(attr_cls, method)
                return [(hit, "method")] if hit is not None else []
            return []

        # param.m(...) — through the parameter annotation.
        if len(receiver) == 1:
            ann = func.param_annotations.get(receiver[0])
            if ann is not None:
                recv_cls = self.project.resolve_class(ann, module)
                if recv_cls is not None:
                    hit = self.project.resolve_method(recv_cls, method)
                    return [(hit, "method")] if hit is not None else []

            # Class.m(...) — explicit class-qualified call.
            klass = self.project.resolve_class(receiver[0], module)
            if klass is not None:
                hit = self.project.resolve_method(klass, method)
                return [(hit, "method")] if hit is not None else []

        # mod.func(...) / pkg.mod.Class(...) through the import table.
        dotted = ".".join(chain)
        klass = self.project.resolve_class(dotted, module)
        if klass is not None:
            init = self.project.resolve_method(klass, "__init__")
            return [(init, "init")] if init is not None else []
        hit = self.project.resolve_function(dotted, module)
        if hit is not None:
            return [(hit, "direct")]
        return []

    # -- queries --------------------------------------------------------

    def callees(self, func: FunctionInfo) -> List[CallSite]:
        return self.calls.get(func.qualname, [])

    def unresolved_in(self, func: FunctionInfo) -> List[UnresolvedCall]:
        return self.unresolved.get(func.qualname, [])

    def callers(self, func: FunctionInfo) -> List[CallSite]:
        if self._callers is None:
            table: Dict[str, List[CallSite]] = {}
            for sites in self.calls.values():
                for site in sites:
                    table.setdefault(site.callee.qualname,
                                     []).append(site)
            self._callers = table
        return self._callers.get(func.qualname, [])


def bind_arguments(site_node: ast.Call, callee: FunctionInfo,
                   *, skip_self: bool) -> List[Tuple[str, ast.AST]]:
    """Map call arguments to callee parameter names.

    Returns ``(param_name, arg_expr)`` pairs for positional and keyword
    arguments that bind cleanly; ``*args``/``**kwargs`` on either side
    and arity overflows are silently skipped (the analyses treat an
    unbindable argument as unknown, never as a finding).
    """
    params = callee.params
    if skip_self and params and params[0] in ("self", "cls"):
        params = params[1:]
    out: List[Tuple[str, ast.AST]] = []
    for i, arg in enumerate(site_node.args):
        if isinstance(arg, ast.Starred) or i >= len(params):
            break
        out.append((params[i], arg))
    for kw in site_node.keywords:
        if kw.arg is not None and kw.arg in callee.params:
            out.append((kw.arg, kw.value))
    return out


__all__ = [
    "Access",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "UnresolvedCall",
    "bind_arguments",
]
