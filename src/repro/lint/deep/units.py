"""API002 — dimension inference across assignments, returns and calls.

The classic ``API001`` only sees unit suffixes that appear *inside one
expression*: ``delay_ms + timeout_s`` is caught, but assign either
operand to an unsuffixed temporary first and the rule goes blind. This
analysis propagates unit tags through the dataflow the file-local rule
cannot see:

* **assignments** — ``budget = self.keepalive_ms`` tags ``budget`` as
  milliseconds for the rest of the function;
* **returns** — a function's return unit is summarized (from its name
  suffix if it has one, else from agreeing return expressions) and
  flows to its call sites, so ``x = window.horizon_ms() ; x + cost_s``
  is caught;
* **call-argument bindings** — passing a seconds-tagged value to a
  parameter named ``*_ms`` is flagged even though no single expression
  mixes the two.

Unlike ``API001`` (which only distinguishes *dimensions*, time vs
memory), the deep rule tracks the concrete scale tag (``ms`` vs ``s``
vs ``mb``): across a call boundary there is no visible expression a
reader could spot the conversion in, so same-dimension scale mixing is
exactly the bug class this rule exists for. Multiplicative expressions
launder units (``value_s * 1000.0`` is an explicit conversion), which
keeps intentional conversions silent, exactly as in ``API001``.

To avoid double reports, an expression pair that the classic rule
already flags (both operands carry *syntactic* suffixes) is skipped
here.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.lint.checks_units import _operand_name, unit_of
from repro.lint.deep.callgraph import CallGraph, bind_arguments
from repro.lint.deep.symbols import FunctionInfo, attr_chain
from repro.lint.findings import Finding

#: Normalized scale tags: suffix aliases collapse to one canonical tag.
_CANON = {"sec": "s", "secs": "s"}

_MAX_ROUNDS = 20


def _tag(name: Optional[str]) -> Optional[str]:
    unit = unit_of(name)
    return _CANON.get(unit, unit) if unit else None


# ======================================================================
# Return-unit summaries


class ReturnUnits:
    """Fixpoint map: function qualname -> canonical unit tag or None."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.units: Dict[str, Optional[str]] = {}
        self._compute()

    def _compute(self) -> None:
        funcs = self.graph.project.functions
        # Seed: the function's own name suffix is authoritative.
        for qualname, func in funcs.items():
            self.units[qualname] = _tag(func.name)
        for _ in range(_MAX_ROUNDS):
            changed = False
            for qualname, func in funcs.items():
                if self.units[qualname] is not None:
                    continue
                inferred = self._infer_returns(func)
                if inferred is not None:
                    self.units[qualname] = inferred
                    changed = True
            if not changed:
                break

    def _infer_returns(self, func: FunctionInfo) -> Optional[str]:
        env = _UnitEnv(func, self)
        env.scan_body()
        tags = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Constant):
                    continue  # literal zeros carry no unit
                tags.add(env.infer(node.value))
        tags.discard(None)
        return tags.pop() if len(tags) == 1 else None


# ======================================================================
# Per-function environment


class _UnitEnv:
    """Tracks inferred unit tags of locals inside one function."""

    def __init__(self, func: FunctionInfo, returns: ReturnUnits):
        self.func = func
        self.returns = returns
        self.locals: Dict[str, str] = {}
        for param in func.params:
            tag = _tag(param)
            if tag is not None:
                self.locals[param] = tag

    def scan_body(self) -> None:
        """One lexical pass tagging locals from their assignments."""
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                own = _tag(name)
                if own is not None:
                    continue  # suffixed names speak for themselves
                tag = self.infer(node.value)
                if tag is not None:
                    self.locals.setdefault(name, tag)

    # -- expression inference ------------------------------------------

    def infer(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.locals.get(node.id) or _tag(node.id)
        if isinstance(node, ast.Attribute):
            return _tag(node.attr)
        if isinstance(node, ast.Call):
            resolved = self._resolve(node)
            if resolved is not None:
                return self.returns.units.get(resolved.qualname)
            chain = attr_chain(node.func)
            return _tag(chain[-1]) if chain else None
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left = self.infer(node.left)
                right = self.infer(node.right)
                if left == right:
                    return left
                return left if right is None else \
                    (right if left is None else None)
            return None  # * and / convert; result unit is unknown
        if isinstance(node, ast.IfExp):
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            return body if body == orelse else None
        if isinstance(node, (ast.UnaryOp,)):
            return self.infer(node.operand)
        return None

    def _resolve(self, node: ast.Call) -> Optional[FunctionInfo]:
        graph = self.returns.graph
        for site in graph.callees(self.func):
            if site.node is node:
                return site.callee
        return None


# ======================================================================
# Findings


def units_findings(graph: CallGraph) -> List[Finding]:
    """API002 findings for every function in the project."""
    returns = ReturnUnits(graph)
    findings: List[Finding] = []
    for func in graph.project.functions.values():
        env = _UnitEnv(func, returns)
        env.scan_body()
        module = func.module

        def report(node: ast.AST, message: str) -> None:
            findings.append(Finding(
                rule="API002", severity="error", path=func.relpath,
                line=node.lineno, col=node.col_offset,
                message=message,
                line_text=module.line_text(node.lineno)))

        def check_pair(node: ast.AST, left: ast.AST, right: ast.AST,
                       what: str) -> None:
            # Skip pairs the classic syntactic rule already covers.
            if unit_of(_operand_name(left)) is not None \
                    and unit_of(_operand_name(right)) is not None:
                return
            lu, ru = env.infer(left), env.infer(right)
            if lu is not None and ru is not None and lu != ru:
                report(node, f"{what} mixes inferred units `_{lu}` "
                             f"and `_{ru}` (propagated through "
                             f"assignments/returns) without an "
                             f"explicit conversion")

        for node in ast.walk(func.node):
            if isinstance(node, ast.BinOp) \
                    and isinstance(node.op, (ast.Add, ast.Sub)):
                check_pair(node, node.left, node.right,
                           "additive expression")
            elif isinstance(node, ast.Compare):
                left = node.left
                for op, comparator in zip(node.ops, node.comparators):
                    if isinstance(op, (ast.Lt, ast.LtE, ast.Gt,
                                       ast.GtE, ast.Eq, ast.NotEq)):
                        check_pair(node, left, comparator,
                                   "comparison")
                    left = comparator
            elif isinstance(node, ast.Return) and node.value is not None:
                declared = _tag(func.name)
                if declared is None \
                        or isinstance(node.value, ast.Constant):
                    continue
                actual = env.infer(node.value)
                if actual is not None and actual != declared:
                    report(node, f"function `{func.name}` declares "
                                 f"unit `_{declared}` but returns an "
                                 f"expression inferred as `_{actual}`")

        # Call-argument bindings.
        for site in graph.callees(func):
            callee = site.callee
            for callee_param, arg in bind_arguments(
                    site.node, callee, skip_self=site.via != "direct"):
                declared = _tag(callee_param)
                if declared is None:
                    continue
                actual = env.infer(arg)
                if actual is not None and actual != declared:
                    report(arg, f"argument inferred as `_{actual}` "
                                f"bound to parameter "
                                f"`{callee_param}` of "
                                f"`{callee.qualname}` (expects "
                                f"`_{declared}`)")
    findings.sort(key=Finding.sort_key)
    return findings
