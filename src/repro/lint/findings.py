"""Finding records produced by the repro-lint checkers.

A :class:`Finding` pins one rule violation to a file location. Findings
carry the *source line text* alongside the line number so that the
committed baseline (grandfathered findings) survives unrelated edits
that shift line numbers: baseline matching keys on
``(rule, path, stripped line text)``, not on the line number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str          #: rule code, e.g. ``DET004``
    severity: str      #: ``error`` or ``warning``
    path: str          #: package-relative path, e.g. ``repro/sim/worker.py``
    line: int          #: 1-based line number
    col: int           #: 0-based column offset
    message: str       #: human explanation of the violation
    line_text: str     #: stripped source text of ``line`` (baseline key)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> tuple:
        return (self.rule, self.path, self.line_text)

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} [{self.severity}] {self.message}")
