"""FPX0xx — float-summation-order discipline.

Float addition is not associative: summing the same multiset in two
orders can differ by ULPs, and the replay hot path (PR 2) flips on
exact boundary comparisons (``free_mb + evictable_mb() < need_mb``).
The codebase's rule — documented in ``sim/worker.py`` and
``core/window.py`` — is that any cached float total must be recomputed
*in the reference implementation's summation order*, never accumulated
incrementally or summed in container-iteration order that is not
pinned.

Statically we flag ``sum()`` whose iterable has no defined order:

* ``FPX001`` — ``sum()`` over a set expression (hash order);
* ``FPX002`` — ``sum()`` over ``<dict>.values()`` (insertion order:
  deterministic only if every insertion site is; for float values the
  safe form is an explicit ``sorted()`` key order).

``FPX002`` is a *warning*: integer sums over ``.values()`` are
order-immune and may be suppressed inline or baselined with a comment
(the committed baseline carries the known-benign cases).

Scope: ``core/`` and ``sim/`` — where Eq. 3 priorities, CSS statistics
and memory accounting live.
"""

from __future__ import annotations

import ast

from repro.lint.rules import Checker, Rule, SetExprTracker, register

_FP_SCOPES = ("core/", "sim/")


def _sum_iterable(node: ast.Call):
    """The effective iterable of a ``sum(...)`` call, unwrapping a
    genexp/comprehension to its first generator's source."""
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None)
    if name != "sum" or not node.args:
        return None
    arg = node.args[0]
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return arg.generators[0].iter
    return arg


def _is_values_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "values"
            and not node.args and not node.keywords)


class _SumChecker(Checker):
    def __init__(self, ctx):
        super().__init__(ctx)
        self._sets = SetExprTracker()

    def visit_Assign(self, node: ast.Assign) -> None:
        self._sets.note_assign(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        iterable = _sum_iterable(node)
        if iterable is not None:
            self._check(node, iterable)
        self.generic_visit(node)

    def _check(self, call: ast.Call, iterable: ast.AST) -> None:
        raise NotImplementedError


@register
class SumOverSetChecker(_SumChecker):
    RULE = Rule(
        code="FPX001", name="sum-over-set", severity="error",
        scopes=_FP_SCOPES,
        rationale="Summing floats over a set accumulates in hash order, "
                  "which varies with PYTHONHASHSEED; totals must be "
                  "computed in a pinned order (the reference "
                  "implementation's) to keep replays bit-identical.")

    def _check(self, call: ast.Call, iterable: ast.AST) -> None:
        if self._sets.is_set_expr(iterable):
            self.report(call, "sum() over a set accumulates in hash "
                              "order; sum over sorted() or an ordered "
                              "container instead")


@register
class SumOverDictValuesChecker(_SumChecker):
    RULE = Rule(
        code="FPX002", name="sum-over-dict-values", severity="warning",
        scopes=_FP_SCOPES,
        rationale="Summing over .values() accumulates in insertion "
                  "order, which is only as deterministic as every "
                  "insertion site; float totals feeding comparisons "
                  "must pin an explicit order (sorted keys), matching "
                  "the reference-summation discipline of PR 2.")

    def _check(self, call: ast.Call, iterable: ast.AST) -> None:
        if _is_values_call(iterable):
            self.report(call, "sum() over .values() relies on dict "
                              "insertion order; for float totals sum "
                              "over sorted(keys) (integer counts may be "
                              "suppressed or baselined with a comment)")
