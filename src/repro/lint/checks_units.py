"""API0xx — unit hygiene for suffixed identifiers.

The library's convention (see ``sim/engine.py``: "time is measured in
milliseconds of virtual time throughout") is to carry units in
identifier names: ``_ms``/``_s``/``_us`` for time, ``_mb``/``_gb``/
``_kb`` for memory. ``API001`` flags *additive* expressions (``+``,
``-``) and comparisons whose two operands carry **different** unit
suffixes — adding milliseconds to seconds, or comparing megabytes to
gigabytes, is always a bug or a missing explicit conversion
(conversions are multiplicative, which the rule deliberately ignores).

Rates (``_per_s``, ``events_per_sec``) are excluded: a rate is not a
plain quantity and legitimately combines with anything.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.rules import Checker, Rule, register

#: unit -> dimension. Longest-suffix match wins (``_sec`` before ``_s``).
_UNITS = {
    "ms": "time", "us": "time", "ns": "time", "sec": "time",
    "secs": "time", "s": "time",
    "mb": "memory", "gb": "memory", "kb": "memory",
}
_SUFFIXES = sorted(_UNITS, key=len, reverse=True)


def unit_of(name: Optional[str]) -> Optional[str]:
    """The unit suffix of an identifier, or ``None``.

    ``None`` for rates (``_per_*``) and unsuffixed names.
    """
    if not name:
        return None
    lowered = name.lower()
    if "_per_" in lowered or lowered.startswith("per_"):
        return None
    for suffix in _SUFFIXES:
        if lowered.endswith("_" + suffix):
            return suffix
    return None


def _operand_name(node: ast.AST) -> Optional[str]:
    """The identifier carrying an operand's unit, if any.

    Accepts plain names, attribute tails and zero-argument method calls
    (``worker.evictable_mb()`` carries ``mb``).
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _operand_name(node.func)
    return None


@register
class UnitMixChecker(Checker):
    RULE = Rule(
        code="API001", name="unit-mixing", severity="error",
        scopes=(),  # everywhere under repro/
        rationale="Identifiers carry their unit (_ms/_s, _mb/_gb); "
                  "adding or comparing two quantities with different "
                  "unit suffixes is a missing conversion. Convert "
                  "explicitly (value_s * 1000.0) and name the result "
                  "for its unit.")

    def _check_pair(self, node: ast.AST, left: ast.AST,
                    right: ast.AST, what: str) -> None:
        lu = unit_of(_operand_name(left))
        ru = unit_of(_operand_name(right))
        if lu is not None and ru is not None and lu != ru:
            self.report(node, f"{what} mixes `_{lu}` and `_{ru}` "
                              f"operands without an explicit unit "
                              f"conversion")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node, node.left, node.right,
                             "additive expression")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        left = node.left
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                               ast.Eq, ast.NotEq)):
                self._check_pair(node, left, comparator, "comparison")
            left = comparator
        self.generic_visit(node)
