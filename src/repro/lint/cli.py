"""Command-line front end for repro-lint.

Standalone (``python -m repro.lint src/repro`` or the ``repro-lint``
console script) and embedded (the ``lint`` verb of ``cidre-sim``) share
the same argument schema via :func:`add_lint_arguments` /
:func:`run_lint`.

Exit codes: 0 clean, 1 findings remain, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.lint.engine import (find_default_baseline, lint_paths,
                               load_baseline, write_baseline)
from repro.lint.rules import all_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared lint options to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline JSON of grandfathered findings (default: "
             "lint-baseline.json discovered at the repo root)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from the current findings "
             "and exit 0")
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogue and exit")


def _print_rules() -> None:
    for rule in all_rules():
        scopes = ", ".join(rule.scopes) if rule.scopes else "everywhere"
        print(f"{rule.code} [{rule.severity}] {rule.name}  ({scopes})")
        print(f"    {rule.rationale}")


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed ``args``."""
    if args.rules:
        _print_rules()
        return 0

    select = None
    if args.select:
        select = tuple(code.strip().upper()
                       for code in args.select.split(",") if code.strip())

    baseline_path = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = args.baseline
        else:
            baseline_path = find_default_baseline(args.paths)

    baseline = None
    if baseline_path is not None and not args.update_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: cannot read baseline {baseline_path}: "
                  f"{exc}", file=sys.stderr)
            return 2

    try:
        report = lint_paths(args.paths, baseline=baseline, select=select)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        target = args.baseline or baseline_path or "lint-baseline.json"
        write_baseline(target, report.findings)
        print(f"repro-lint: wrote {len(report.findings)} entr"
              f"{'y' if len(report.findings) == 1 else 'ies'} to {target}")
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism/purity/FP-discipline linter "
                    "for the CIDRE reproduction.")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":
    raise SystemExit(main())
