"""Command-line front end for repro-lint.

Standalone (``python -m repro.lint src/repro`` or the ``repro-lint``
console script) and embedded (the ``lint`` verb of ``cidre-sim``) share
the same argument schema via :func:`add_lint_arguments` /
:func:`run_lint`.

Two engines sit behind the one front end:

* the classic file-local rules (default) gated on
  ``lint-baseline.json``;
* the whole-program analyses (``--deep``: shard safety, transitive
  purity, dimension inference) gated on ``lint-deep-baseline.json``,
  optionally emitting the ``shard-report.json`` inventory via
  ``--shard-report``.

``--changed [REF]`` restricts either engine to files differing from a
git ref (default ``HEAD``) — the fast pre-commit path. ``--format
github`` renders findings as GitHub Actions workflow annotations.

Exit codes: 0 clean, 1 findings remain, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import (BASELINE_FILENAME, find_default_baseline,
                               iter_python_files, lint_paths,
                               load_baseline, update_baseline_file)
from repro.lint.findings import Finding
from repro.lint.rules import all_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared lint options to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=("human", "json", "github"), default="human",
        help="output format (default: human; github emits workflow-"
             "command annotations)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline JSON of grandfathered findings (default: "
             "lint-baseline.json — or lint-deep-baseline.json with "
             "--deep — discovered at the repo root)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file from the current findings "
             "(preserving reasons of surviving entries, pruning "
             "entries whose file no longer exists) and exit 0")
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--deep", action="store_true",
        help="run the whole-program analyses (shard safety SHD0xx, "
             "transitive purity PUR003, dimension inference API002) "
             "instead of the file-local rules")
    parser.add_argument(
        "--shard-report", metavar="FILE", default=None,
        help="with --deep: write the machine-readable shard-safety "
             "site inventory (shard-report.json) to FILE")
    parser.add_argument(
        "--changed", metavar="REF", nargs="?", const="HEAD",
        default=None,
        help="lint only files that differ from the given git ref "
             "(default when the flag is bare: HEAD), plus untracked "
             "files")


def _print_rules() -> None:
    from repro.lint.deep import deep_rules
    for rule in all_rules():
        scopes = ", ".join(rule.scopes) if rule.scopes else "everywhere"
        print(f"{rule.code} [{rule.severity}] {rule.name}  ({scopes})")
        print(f"    {rule.rationale}")
    for rule in deep_rules():
        scopes = ", ".join(rule.scopes) if rule.scopes else "everywhere"
        print(f"{rule.code} [{rule.severity}] {rule.name}  "
              f"({scopes}) [--deep]")
        print(f"    {rule.rationale}")


# ======================================================================
# --changed


def _git_lines(argv: List[str]) -> Optional[List[str]]:
    try:
        proc = subprocess.run(["git"] + argv, capture_output=True,
                              text=True)
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return [line for line in proc.stdout.splitlines() if line.strip()]


def _changed_python_files(paths: List[str],
                          ref: str) -> Optional[List[Path]]:
    """The requested files that differ from ``ref`` (or are untracked).

    ``None`` signals a git failure (not a repo, unknown ref) — a usage
    error, distinct from "nothing changed".
    """
    top = _git_lines(["rev-parse", "--show-toplevel"])
    diff = _git_lines(["diff", "--name-only", ref, "--"])
    untracked = _git_lines(["ls-files", "--others",
                            "--exclude-standard"])
    if top is None or diff is None or untracked is None:
        return None
    root = Path(top[0])
    changed = {(root / name).resolve()
               for name in diff + untracked if name.endswith(".py")}
    return [file for file in iter_python_files(paths)
            if file.resolve() in changed]


# ======================================================================
# --format github


def _escape_gh(text: str) -> str:
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def _gh_path(path: str) -> str:
    # Findings carry package-relative paths; the workflow wants paths
    # relative to the repository root.
    src = Path("src") / path
    return src.as_posix() if src.is_file() else path


def _print_github(findings: List[Finding]) -> None:
    for finding in findings:
        level = "error" if finding.severity == "error" else "warning"
        print(f"::{level} file={_gh_path(finding.path)},"
              f"line={finding.line},col={finding.col + 1},"
              f"title={finding.rule}::{_escape_gh(finding.message)}")


# ======================================================================
# Driver


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed ``args``."""
    if args.rules:
        _print_rules()
        return 0

    if args.shard_report and not args.deep:
        print("repro-lint: --shard-report requires --deep",
              file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = tuple(code.strip().upper()
                       for code in args.select.split(",") if code.strip())

    paths = args.paths
    if args.changed is not None:
        changed = _changed_python_files(paths, args.changed)
        if changed is None:
            print(f"repro-lint: --changed: cannot diff against "
                  f"{args.changed!r} (not a git checkout, or unknown "
                  f"ref)", file=sys.stderr)
            return 2
        if not changed:
            print(f"OK: no python files under "
                  f"{', '.join(map(str, paths))} differ from "
                  f"{args.changed}")
            return 0
        paths = changed

    if args.deep:
        from repro.lint.deep import (DEEP_BASELINE_FILENAME,
                                     deep_lint_paths, find_deep_baseline)
        default_name = DEEP_BASELINE_FILENAME
        find_baseline = find_deep_baseline
    else:
        default_name = BASELINE_FILENAME
        find_baseline = find_default_baseline

    baseline_path = None
    if not args.no_baseline:
        baseline_path = args.baseline or find_baseline(paths)

    baseline = None
    if baseline_path is not None and not args.update_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: cannot read baseline {baseline_path}: "
                  f"{exc}", file=sys.stderr)
            return 2

    shard = None
    try:
        if args.deep:
            report, shard = deep_lint_paths(paths, baseline=baseline,
                                            select=select)
        else:
            report = lint_paths(paths, baseline=baseline, select=select)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.shard_report and shard is not None:
        Path(args.shard_report).write_text(
            json.dumps(shard, indent=2) + "\n")

    if args.update_baseline:
        target = args.baseline or baseline_path or default_name
        try:
            written, pruned = update_baseline_file(
                target, report.findings, iter_python_files(paths))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: cannot update baseline {target}: "
                  f"{exc}", file=sys.stderr)
            return 2
        note = f", pruned {pruned} deleted-file entr" \
               f"{'y' if pruned == 1 else 'ies'}" if pruned else ""
        print(f"repro-lint: wrote {written} entr"
              f"{'y' if written == 1 else 'ies'} to {target}{note}")
        return 0

    if args.format == "json":
        payload = report.to_dict()
        if shard is not None:
            payload["shard"] = shard["summary"]
        print(json.dumps(payload, indent=2))
    elif args.format == "github":
        _print_github(report.findings)
        print(("FAIL: " if report.findings else "OK: ")
              + f"{len(report.findings)} finding(s) in {report.files} "
                f"file(s)")
    else:
        print(report.render())
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism/purity/FP-discipline linter "
                    "for the CIDRE reproduction, with whole-program "
                    "shard-safety analysis under --deep.")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":
    raise SystemExit(main())
