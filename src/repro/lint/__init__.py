"""repro-lint: static determinism/purity/FP-discipline analysis.

A stdlib-``ast`` linter encoding the reproduction's invariants as
checkable rules:

* ``DET0xx`` — nondeterminism in simulation code (wall clock, unseeded
  RNG, UUIDs, set iteration);
* ``PUR0xx`` — observer purity (telemetry/audit probes must not mutate
  sim objects);
* ``FPX0xx`` — float-summation-order discipline (no ``sum()`` over
  unordered iterables in accounting code);
* ``API0xx`` — unit hygiene (``_ms`` vs ``_s``, ``_mb`` vs ``_gb``).

Under ``--deep`` the whole-program layer (:mod:`repro.lint.deep`)
additionally runs shard-safety (``SHD0xx``), transitive observer
purity (``PUR003``) and cross-function dimension inference
(``API002``) over a project-wide symbol table and call graph.

Run it with ``python -m repro.lint [paths]``, the ``repro-lint``
console script, or ``cidre-sim lint``. See
``docs/ARCHITECTURE.md`` ("Static analysis and the sim-sanitizer" and
"Whole-program analysis and shard safety").
"""

from repro.lint.engine import (LintReport, lint_paths, lint_source,
                               load_baseline, update_baseline_file,
                               write_baseline)
from repro.lint.findings import Finding
from repro.lint.rules import Checker, Rule, all_rules, register

__all__ = [
    "Checker", "Finding", "LintReport", "Rule", "all_rules",
    "lint_paths", "lint_source", "load_baseline", "register",
    "update_baseline_file", "write_baseline",
]
