"""PUR0xx — observer purity: probes must not mutate simulator state.

The telemetry/audit layers (PR 3-4) guarantee that attaching a sink,
recorder or decision audit leaves a run bit-identical — pinned
dynamically by ``tests/obs/test_audit_differential.py`` and enforced at
runtime by the :class:`repro.sim.sanitizer.SimSanitizer`. These rules
are the static twin: inside observer modules (``obs/`` and
``sim/telemetry.py``) no function may write through an object it
received from the simulation.

The analysis is a simple intra-function taint walk: every parameter
except ``self``/``cls`` is *sim-owned*; locals bound to expressions
rooted at a sim-owned name (including loop variables) inherit the
taint. Flagged are

* ``PUR001`` — attribute/subscript assignment through a sim-owned root
  (``orchestrator.foo = x``, ``worker.containers[i] = c``);
* ``PUR002`` — calls of known-mutating methods on a sim-owned root
  (``container.mark_evicted()``, ``worker.add(c)``,
  ``sim.schedule(...)``, ``queue.append(x)``).

The walk is deliberately shallow (no inter-procedural propagation, no
aliasing through containers) — that is what the runtime sanitizer
exists for.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.lint.rules import Checker, Rule, register, root_name

_OBSERVER_SCOPES = ("obs/", "sim/telemetry.py")

#: Method names that mutate their receiver — simulator transition methods
#: plus the mutating methods of the stdlib containers sim state lives in.
MUTATING_METHODS = frozenset({
    # container / worker / engine transitions
    "add", "remove", "evict", "compress", "decompress", "recharge",
    "reserve", "mark_ready", "mark_evicted", "start_request",
    "finish_request", "begin_restore", "abort_restore", "schedule", "at",
    "every", "cancel", "run", "prewarm", "speculate_for", "record",
    # stdlib container mutators
    "append", "appendleft", "extend", "extendleft", "insert", "pop",
    "popleft", "popitem", "clear", "update", "setdefault", "discard",
    "sort", "reverse", "remove",
})


class _TaintWalk(ast.NodeVisitor):
    """Per-function walk tracking names rooted in sim-owned parameters."""

    def __init__(self, checker: "Checker", func: ast.AST,
                 check_assign: bool, check_calls: bool):
        self.checker = checker
        self.check_assign = check_assign
        self.check_calls = check_calls
        self.tainted: Set[str] = set()
        args = func.args
        params = (args.posonlyargs + args.args + args.kwonlyargs
                  + ([args.vararg] if args.vararg else [])
                  + ([args.kwarg] if args.kwarg else []))
        for i, param in enumerate(params):
            if i == 0 and param.arg in ("self", "cls"):
                continue
            self.tainted.add(param.arg)

    # -- taint propagation --------------------------------------------

    def _rooted_in_taint(self, node: ast.AST) -> bool:
        root = root_name(node)
        return root is not None and root in self.tainted

    def _propagate(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if self._rooted_in_taint(value):
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._propagate(elt, value)

    # -- violations ----------------------------------------------------

    def _check_write_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_write_target(elt)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        if self.check_assign and self._rooted_in_taint(target):
            root = root_name(target)
            spot = target.attr if isinstance(target, ast.Attribute) \
                else "[...]"
            self.checker.report(
                target, f"observer writes through sim-owned `{root}` "
                        f"(`{root}`...`{spot}`); probes must be strictly "
                        f"read-only")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target)
            self._propagate(target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_write_target(node.target)
        if node.value is not None:
            self._propagate(node.target, node.value)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if self.check_assign and isinstance(
                    target, (ast.Attribute, ast.Subscript)) \
                    and self._rooted_in_taint(target):
                self.checker.report(
                    target, f"observer deletes through sim-owned "
                            f"`{root_name(target)}`; probes must be "
                            f"strictly read-only")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._propagate(node.target, node.iter)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.check_calls and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATING_METHODS \
                and self._rooted_in_taint(node.func.value):
            self.checker.report(
                node, f"observer calls mutating method "
                      f"`.{node.func.attr}()` on sim-owned "
                      f"`{root_name(node.func.value)}`; probes must be "
                      f"strictly read-only")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested functions get their own walk (fresh parameter taint).
        _TaintWalk(self.checker, node, self.check_assign,
                   self.check_calls).generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


class _PurityChecker(Checker):
    """Shared driver: run a taint walk per top-level function/method."""

    check_assign = False
    check_calls = False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        _TaintWalk(self, node, self.check_assign,
                   self.check_calls).generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


@register
class ObserverWriteChecker(_PurityChecker):
    RULE = Rule(
        code="PUR001", name="observer-write", severity="error",
        scopes=_OBSERVER_SCOPES,
        rationale="Telemetry/audit probes receive live sim objects "
                  "(events, workers, the orchestrator); assigning "
                  "through them would steer the run and break the "
                  "probe-on/off bit-identity differential.")
    check_assign = True


@register
class ObserverMutatingCallChecker(_PurityChecker):
    RULE = Rule(
        code="PUR002", name="observer-mutating-call", severity="error",
        scopes=_OBSERVER_SCOPES,
        rationale="Calling a state-transition or container-mutating "
                  "method on a sim-owned object from an observer "
                  "changes simulation outcomes; observers fold state "
                  "into their own structures instead.")
    check_calls = True
