"""Checker framework: rule metadata, registry, and the visitor base class.

A *rule* is an identifier (``DET004``), a severity, a path scope and a
rationale; a *checker* is an :mod:`ast` visitor that reports findings for
exactly one rule. Checkers register themselves with :func:`register`, and
the engine instantiates every checker whose scope matches the file being
linted.

Scopes are path prefixes **relative to the repro package root** (e.g.
``sim/`` or the single file ``sim/telemetry.py``); an empty scope tuple
means the rule applies everywhere under ``repro/``. Keeping scope in the
rule — not in ad-hoc engine conditionals — makes the rule catalogue
self-describing (``repro lint --rules``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.lint.findings import Finding

#: Finding severities, strongest first.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule."""

    code: str                 #: e.g. ``DET001``
    name: str                 #: short kebab-case name, e.g. ``wall-clock``
    severity: str             #: ``error`` or ``warning``
    scopes: Tuple[str, ...]   #: package-relative path prefixes; () = all
    rationale: str            #: why violating this breaks the reproduction

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule is in scope for ``relpath``.

        ``relpath`` is the package-relative path with the leading
        ``repro/`` stripped (``sim/worker.py``).
        """
        if not self.scopes:
            return True
        return any(relpath == scope or relpath.startswith(scope)
                   for scope in self.scopes)


class FileContext:
    """Everything a checker needs to know about the file under analysis."""

    def __init__(self, source: str, relpath: str):
        self.source = source
        self.relpath = relpath          # e.g. repro/sim/worker.py
        self.lines = source.splitlines()
        # Scope path: package-relative with the leading repro/ stripped.
        self.scope_path = relpath[len("repro/"):] \
            if relpath.startswith("repro/") else relpath

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Checker(ast.NodeVisitor):
    """Base class for rule checkers (one rule per checker).

    Subclasses set ``RULE`` and call :meth:`report` from their visit
    methods. The engine runs ``visit(tree)`` once per in-scope file.
    """

    RULE: Rule

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(
            rule=self.RULE.code, severity=self.RULE.severity,
            path=self.ctx.relpath, line=lineno, col=col,
            message=message, line_text=self.ctx.line_text(lineno)))


#: code -> checker class (its ``RULE`` holds the metadata).
_REGISTRY: Dict[str, Type[Checker]] = {}


def register(checker: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    code = checker.RULE.code
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    _REGISTRY[code] = checker
    return checker


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    _load_builtin_checks()
    return [_REGISTRY[code].RULE for code in sorted(_REGISTRY)]


def checkers_for(ctx: FileContext,
                 select: Optional[Tuple[str, ...]] = None) -> List[Checker]:
    """Instantiate every registered checker in scope for ``ctx``.

    ``select`` optionally restricts to an explicit set of rule codes.
    """
    _load_builtin_checks()
    chosen = []
    for code in sorted(_REGISTRY):
        cls = _REGISTRY[code]
        if select is not None and code not in select:
            continue
        if cls.RULE.applies_to(ctx.scope_path):
            chosen.append(cls(ctx))
    return chosen


def _load_builtin_checks() -> None:
    """Import the bundled checker modules (idempotent, lazy to avoid an
    import cycle between this module and the checker modules)."""
    from repro.lint import (checks_determinism, checks_floatsum,  # noqa: F401
                            checks_purity, checks_units)


# ----------------------------------------------------------------------
# Shared AST helpers used by several checker modules


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The left-most Name an expression is rooted at, skipping attribute
    access, subscripting and calls (``a.b[0].c().d`` -> ``a``)."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Starred):
            node = node.value
        else:
            break
    return node.id if isinstance(node, ast.Name) else None


class SetExprTracker:
    """Syntactic "is this expression a set?" test with one level of local
    name tracking (``s = set(a) | set(b)`` taints ``s``)."""

    def __init__(self) -> None:
        self.set_vars: set = set()

    def note_assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self.is_set_expr(node.value):
                    self.set_vars.add(target.id)
                else:
                    self.set_vars.discard(target.id)

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            return name in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self.is_set_expr(node.left)
                    or self.is_set_expr(node.right))
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        return False
