"""repro-lint driver: file discovery, suppressions, baseline, reports.

Pipeline per file: parse -> run every in-scope checker -> drop findings
suppressed inline (``# repro-lint: disable=RULE``) -> drop findings
matched by the committed baseline. Whatever survives fails the lint.

**Inline suppressions** live on the flagged line or on a standalone
comment line directly above it::

    used = sum(counts.values())  # repro-lint: disable=FPX002

    # repro-lint: disable=DET004  (order-immune: every branch appends
    # to an independent per-key series)
    for func in funcs:
        ...

``disable=all`` silences every rule for that line.

**Baseline** (:func:`load_baseline` / :func:`write_baseline`) is a JSON
file of grandfathered findings keyed by ``(rule, path, stripped line
text)`` — *not* line numbers — so unrelated edits do not invalidate it.
Each entry carries a mandatory ``reason`` so exemptions stay explained.
Entries that no longer match anything are reported as *stale* so the
baseline shrinks over time instead of rotting.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, checkers_for

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

BASELINE_VERSION = 1
#: Default committed baseline filename, discovered at the repo root.
BASELINE_FILENAME = "lint-baseline.json"


# ======================================================================
# Per-file linting


def relpath_of(path: Union[str, Path]) -> str:
    """Package-relative path (``repro/sim/worker.py``) of a source file.

    Falls back to the basename when the file is not under a ``repro``
    package directory, so arbitrary paths still lint with stable keys.
    """
    parts = Path(path).resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return Path(path).name


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """line number -> rule codes disabled there (``{"ALL"}`` = every)."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = {code.strip().upper()
                 for code in match.group(1).split(",") if code.strip()}
        if "ALL" in codes:
            codes = {"ALL"}
        target = lineno
        if line.lstrip().startswith("#"):
            # Standalone comment: applies to the next non-comment,
            # non-blank line.
            target = lineno + 1
            while target <= len(lines) and (
                    not lines[target - 1].strip()
                    or lines[target - 1].lstrip().startswith("#")):
                target += 1
        table.setdefault(target, set()).update(codes)
    return table


def lint_source(source: str, relpath: str = "repro/module.py",
                select: Optional[Tuple[str, ...]] = None
                ) -> Tuple[List[Finding], int]:
    """Lint one source string; returns ``(findings, suppressed_count)``.

    Findings are sorted by location. ``relpath`` controls rule scoping
    (e.g. pass ``repro/sim/x.py`` to enable the sim-scoped rules).
    """
    ctx = FileContext(source, relpath)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        finding = Finding(
            rule="E999", severity="error", path=relpath,
            line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            message=f"syntax error: {exc.msg}",
            line_text=ctx.line_text(exc.lineno or 1))
        return [finding], 0
    findings: List[Finding] = []
    for checker in checkers_for(ctx, select=select):
        checker.visit(tree)
        findings.extend(checker.findings)
    table = _suppressions(ctx.lines)
    kept, suppressed = [], 0
    for finding in sorted(findings, key=Finding.sort_key):
        codes = table.get(finding.line, ())
        if "ALL" in codes or finding.rule in codes:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


# ======================================================================
# Baseline


def load_baseline(path: Union[str, Path]) -> List[dict]:
    """Load baseline entries; raises on a malformed file."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version "
                         f"{payload.get('version')!r} in {path}")
    entries = payload.get("entries", [])
    for entry in entries:
        missing = {"rule", "path", "line_text"} - set(entry)
        if missing:
            raise ValueError(f"baseline entry missing {sorted(missing)}: "
                             f"{entry}")
    return entries


def write_baseline(path: Union[str, Path], findings: Sequence[Finding],
                   reasons: Optional[Dict[tuple, str]] = None) -> None:
    """Serialize ``findings`` as a baseline file (sorted, de-duplicated)."""
    reasons = reasons or {}
    seen = set()
    entries = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = finding.baseline_key()
        if key in seen:
            continue
        seen.add(key)
        entries.append({
            "rule": finding.rule,
            "path": finding.path,
            "line_text": finding.line_text,
            "reason": reasons.get(key, "grandfathered; justify or fix"),
        })
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=False)
                          + "\n")


def update_baseline_file(path: Union[str, Path],
                         findings: Sequence[Finding],
                         linted_files: Sequence[Union[str, Path]]
                         ) -> Tuple[int, int]:
    """Rewrite the baseline at ``path`` from ``findings``, merging.

    * entries for files inside the linted scope are replaced by the
      current findings, **preserving the reason** of any entry whose
      ``(rule, path, line_text)`` key still matches;
    * entries for files outside the linted scope are kept verbatim —
      unless their file no longer exists on disk, in which case they
      are pruned (a deleted file can never match again, so keeping the
      entry is permanent stale noise).

    Returns ``(written, pruned)`` entry counts.
    """
    existing: List[dict] = []
    if Path(path).is_file():
        existing = load_baseline(path)

    linted_rel = {relpath_of(f) for f in linted_files}
    # Filesystem prefixes that package-relative paths resolve against
    # (``/repo/src/`` for ``/repo/src/repro/x.py`` -> ``repro/x.py``).
    roots: Set[str] = set()
    for file in linted_files:
        rel = relpath_of(file)
        fs = Path(file).resolve().as_posix()
        if fs.endswith(rel):
            roots.add(fs[:len(fs) - len(rel)])

    reasons: Dict[tuple, str] = {}
    keep_outside: List[dict] = []
    pruned = 0
    for entry in existing:
        key = (entry["rule"], entry["path"], entry["line_text"])
        reasons.setdefault(key, entry.get(
            "reason", "grandfathered; justify or fix"))
        if entry["path"] in linted_rel:
            continue  # refreshed from the current findings below
        exists = (any(Path(root + entry["path"]).is_file()
                      for root in roots) if roots else True)
        if exists:
            keep_outside.append(entry)
        else:
            pruned += 1

    seen = set()
    entries: List[dict] = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = finding.baseline_key()
        if key in seen:
            continue
        seen.add(key)
        entries.append({
            "rule": finding.rule,
            "path": finding.path,
            "line_text": finding.line_text,
            "reason": reasons.get(key, "grandfathered; justify or fix"),
        })
    for entry in keep_outside:
        key = (entry["rule"], entry["path"], entry["line_text"])
        if key not in seen:
            seen.add(key)
            entries.append(entry)
    entries.sort(key=lambda e: (e["path"], e["rule"], e["line_text"]))
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=False)
                          + "\n")
    return len(entries), pruned


def find_default_baseline(paths: Sequence[Union[str, Path]]
                          ) -> Optional[Path]:
    """Walk up from the linted paths looking for the committed baseline
    (next to ``pyproject.toml``, i.e. at the repo root)."""
    for start in list(paths) or [Path.cwd()]:
        node = Path(start).resolve()
        if node.is_file():
            node = node.parent
        for parent in (node, *node.parents):
            candidate = parent / BASELINE_FILENAME
            if candidate.is_file():
                return candidate
            if (parent / "pyproject.toml").is_file():
                break  # repo root reached without a baseline
    return None


# ======================================================================
# Multi-file driver


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files: int = 0
    stale_baseline: List[dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "clean": self.clean,
            "files": self.files,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "counts": self.counts_by_rule(),
            "findings": [f.to_dict() for f in self.findings],
            "stale_baseline": list(self.stale_baseline),
        }

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        for entry in self.stale_baseline:
            lines.append(f"note: stale baseline entry {entry['rule']} "
                         f"@ {entry['path']} ({entry['line_text']!r}) "
                         f"matched nothing — remove it")
        summary = (f"{len(self.findings)} finding(s) in {self.files} "
                   f"file(s) ({self.suppressed} suppressed inline, "
                   f"{self.baselined} baselined)")
        lines.append(("FAIL: " if self.findings else "OK: ") + summary)
        return "\n".join(lines)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
    return files


def lint_paths(paths: Sequence[Union[str, Path]],
               baseline: Optional[Sequence[dict]] = None,
               select: Optional[Tuple[str, ...]] = None) -> LintReport:
    """Lint every ``.py`` file under ``paths``; apply ``baseline``."""
    report = LintReport()
    collected: List[Finding] = []
    for file in iter_python_files(paths):
        source = file.read_text()
        findings, suppressed = lint_source(source, relpath_of(file),
                                           select=select)
        collected.extend(findings)
        report.suppressed += suppressed
        report.files += 1
    if baseline:
        matched_entries = set()
        by_key = {}
        for i, entry in enumerate(baseline):
            by_key.setdefault(
                (entry["rule"], entry["path"], entry["line_text"]),
                []).append(i)
        kept = []
        for finding in collected:
            indexes = by_key.get(finding.baseline_key())
            if indexes:
                report.baselined += 1
                matched_entries.update(indexes)
            else:
                kept.append(finding)
        collected = kept
        report.stale_baseline = [entry for i, entry in enumerate(baseline)
                                 if i not in matched_entries]
    report.findings = sorted(collected, key=Finding.sort_key)
    return report
