"""DET0xx — nondeterminism sources in simulation code.

The replay guarantee (PR 1-2: bit-identical results across serial,
parallel and spawn execution) holds only because simulation code is a
pure function of ``(trace, policy, config)``. These rules flag the ways
that purity classically leaks away in this codebase's domain:

* ``DET001`` wall-clock reads — virtual time comes from the engine;
* ``DET002`` unseeded/global RNG — stochastic policies must draw from
  the orchestrator's seeded ``rng``;
* ``DET003`` UUIDs — identifiers must be deterministic counters;
* ``DET004`` iteration over sets — set order depends on
  ``PYTHONHASHSEED`` for strings, so any set-driven loop can reorder
  events or float accumulation between processes.

Scope: ``sim/``, ``core/``, ``policies/`` — the code that runs inside a
replay. Harness code (``experiments/``, ``analysis/``) may legitimately
read the wall clock for timing reports.
"""

from __future__ import annotations

import ast

from repro.lint.rules import (Checker, Rule, SetExprTracker, dotted_name,
                              register)

_SIM_SCOPES = ("sim/", "core/", "policies/")

#: Wall-clock entry points (module-qualified).
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
}
#: ``datetime``-flavoured wall-clock reads, matched on the chain tail so
#: both ``datetime.now()`` and ``datetime.datetime.now()`` hit.
_WALL_CLOCK_TAILS = ("datetime.now", "datetime.utcnow", "datetime.today",
                     "date.today")

#: Module-level ``random.*`` draws share the interpreter-global RNG.
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "lognormvariate", "paretovariate", "weibullvariate",
    "triangular", "getrandbits", "vonmisesvariate",
}


@register
class WallClockChecker(Checker):
    RULE = Rule(
        code="DET001", name="wall-clock", severity="error",
        scopes=_SIM_SCOPES,
        rationale="Simulation code must use the engine's virtual clock "
                  "(Simulator.now); wall-clock reads make replays "
                  "non-reproducible.")

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if chain is not None:
            if chain in _WALL_CLOCK or chain.endswith(_WALL_CLOCK_TAILS):
                self.report(node, f"wall-clock read `{chain}()` in "
                                  f"simulation code; use the engine's "
                                  f"virtual time (`sim.now` / the `now` "
                                  f"argument) instead")
        self.generic_visit(node)


@register
class UnseededRandomChecker(Checker):
    RULE = Rule(
        code="DET002", name="unseeded-random", severity="error",
        scopes=_SIM_SCOPES,
        rationale="Stochastic decisions must draw from the orchestrator's "
                  "seeded random.Random (ctx.rng); the module-global RNG "
                  "and unseeded generators vary across runs/processes.")

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if chain is not None:
            if chain in {f"random.{fn}" for fn in _GLOBAL_RANDOM} \
                    or chain == "random.seed":
                self.report(node, f"`{chain}()` uses the interpreter-"
                                  f"global RNG; draw from the seeded "
                                  f"`Orchestrator.rng` instead")
            elif chain in ("random.Random", "random.SystemRandom") \
                    and not node.args and not node.keywords:
                self.report(node, f"`{chain}()` constructed without a "
                                  f"seed; pass an explicit seed derived "
                                  f"from SimulationConfig.seed")
            elif chain.endswith("random.default_rng") \
                    and not node.args and not node.keywords:
                self.report(node, "`default_rng()` without a seed is "
                                  "entropy-seeded; pass an explicit seed")
        self.generic_visit(node)


@register
class UuidChecker(Checker):
    RULE = Rule(
        code="DET003", name="uuid", severity="error",
        scopes=_SIM_SCOPES,
        rationale="UUIDs are drawn from OS entropy (uuid4) or the host "
                  "clock/MAC (uuid1); identifiers in a replay must be "
                  "deterministic counters (itertools.count).")

    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_name(node.func)
        if chain in ("uuid.uuid4", "uuid.uuid1", "uuid4", "uuid1"):
            self.report(node, f"`{chain}()` is nondeterministic; use a "
                              f"monotone counter (see "
                              f"`Container._container_ids`) instead")
        self.generic_visit(node)


@register
class UnorderedIterationChecker(Checker):
    RULE = Rule(
        code="DET004", name="unordered-iteration", severity="error",
        scopes=_SIM_SCOPES,
        rationale="Set iteration order depends on PYTHONHASHSEED for "
                  "strings; a set-driven loop in the replay path can "
                  "reorder events, container creation or float "
                  "accumulation between processes. Iterate a sorted() "
                  "view (or an insertion-ordered dict) instead.")

    def __init__(self, ctx):
        super().__init__(ctx)
        self._sets = SetExprTracker()

    def visit_Assign(self, node: ast.Assign) -> None:
        self._sets.note_assign(node)
        self.generic_visit(node)

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._sets.is_set_expr(iter_node):
            self.report(iter_node,
                        "iteration over a set has hash-seed-dependent "
                        "order; wrap it in sorted() or iterate an "
                        "ordered container")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp
