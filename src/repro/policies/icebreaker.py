"""IceBreaker — prediction-based function pre-warming [ASPLOS '22].

IceBreaker predicts each function's next invocation (the original uses a
Fourier-based time-series model over per-minute counts) and warms a
container shortly before the predicted arrival; functions predicted to stay
quiet are deactivated to save keep-alive cost. The original additionally
splits the warm pool across heterogeneous (cheap/expensive) servers; the
paper's controlled comparison runs it on a homogeneous cluster, which is
what this model reflects (§5.1 notes the homogeneous setting diminishes
IceBreaker's optimizer).

The predictor here is an exponentially weighted moving average (EWMA) over
inter-arrival times — the standard lightweight stand-in for the Fourier
model, with the same qualitative behaviour: periodic/steady functions are
predicted well and get prewarmed; bursty concurrent arrivals are not
captured, so concurrency spikes still pay cold starts (the weakness the
paper exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.policies.base import OrchestrationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.request import Request
    from repro.sim.worker import Worker


@dataclass
class _ArrivalModel:
    """EWMA inter-arrival predictor for one function."""

    alpha: float
    last_arrival_ms: Optional[float] = None
    ewma_iat_ms: Optional[float] = None

    def observe(self, now: float) -> None:
        if self.last_arrival_ms is not None:
            iat = now - self.last_arrival_ms
            if self.ewma_iat_ms is None:
                self.ewma_iat_ms = iat
            else:
                self.ewma_iat_ms = (self.alpha * iat
                                    + (1 - self.alpha) * self.ewma_iat_ms)
        self.last_arrival_ms = now

    def predicted_next_ms(self) -> Optional[float]:
        if self.last_arrival_ms is None or self.ewma_iat_ms is None:
            return None
        return self.last_arrival_ms + self.ewma_iat_ms


class IceBreakerPolicy(OrchestrationPolicy):
    """EWMA-driven pre-warming and deactivation.

    Parameters
    ----------
    alpha:
        EWMA smoothing weight for inter-arrival times.
    horizon_ms:
        Pre-warm when the predicted next arrival falls within this lookahead
        and the cold start would not finish in time otherwise.
    deactivate_factor:
        Evict an idle container once it has been idle longer than
        ``deactivate_factor`` times the function's predicted inter-arrival.
    """

    name = "IceBreaker"

    def __init__(self, alpha: float = 0.3, horizon_ms: float = 3_000.0,
                 deactivate_factor: float = 8.0,
                 scan_interval_ms: float = 1_000.0):
        super().__init__()
        self.alpha = alpha
        self.horizon_ms = horizon_ms
        self.deactivate_factor = deactivate_factor
        self.maintenance_interval_ms = scan_interval_ms
        self._models: Dict[str, _ArrivalModel] = {}
        #: GDSF-style frequency for pressure eviction ordering.
        self._freq: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def _model(self, func: str) -> _ArrivalModel:
        model = self._models.get(func)
        if model is None:
            model = self._models[func] = _ArrivalModel(self.alpha)
        return model

    def on_request_arrival(self, request: "Request", worker: "Worker",
                           now: float) -> None:
        super().on_request_arrival(request, worker, now)
        self._model(request.func).observe(now)
        self._freq[request.func] = self._freq.get(request.func, 0) + 1

    # ------------------------------------------------------------------
    # Pressure eviction: benefit-per-byte (cost-aware, GDSF-flavoured)

    def priority(self, container: "Container", now: float) -> float:
        spec = container.spec
        freq = self._freq.get(spec.name, 1)
        idle_ms = max(now - container.last_used_ms, 1.0)
        return freq * spec.cold_start_ms / (spec.memory_mb * idle_ms)

    # ------------------------------------------------------------------
    # Maintenance: prewarm predicted-hot, deactivate predicted-cold

    def on_maintenance(self, now: float) -> None:
        assert self.ctx is not None
        # shard: cross-worker maintenance sweeps every worker's containers
        for worker in self.ctx.workers():
            self._deactivate(worker, now)
            self._prewarm(worker, now)

    def _deactivate(self, worker: "Worker", now: float) -> None:
        assert self.ctx is not None
        for container in list(worker.evictable()):
            model = self._models.get(container.spec.name)
            if model is None or model.ewma_iat_ms is None:
                continue
            threshold = self.deactivate_factor * model.ewma_iat_ms
            if now - container.last_used_ms > threshold:
                self.ctx.evict(container)

    def _prewarm(self, worker: "Worker", now: float) -> None:
        assert self.ctx is not None
        for func in list(worker.all_funcs()):
            self._maybe_prewarm(worker, func, now)
        # Also consider functions with history but no containers at all.
        for func, model in self._models.items():
            if not worker.func_count(func):
                self._maybe_prewarm(worker, func, now)

    def _maybe_prewarm(self, worker: "Worker", func: str,
                       now: float) -> None:
        assert self.ctx is not None
        model = self._models.get(func)
        if model is None:
            return
        predicted = model.predicted_next_ms()
        if predicted is None or not (now <= predicted <= now
                                     + self.horizon_ms):
            return
        if worker.idle_count(func) or worker.provisioning_count(func):
            return  # already warm or warming
        spec = self.ctx.spec_of(func)
        # Only prewarm when the container can plausibly be ready in time.
        if predicted - now < spec.cold_start_ms * 0.1:
            return
        self.ctx.prewarm(spec, worker)
