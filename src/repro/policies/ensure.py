"""ENSURE — autonomous resource management for serverless [ACSOS '20].

ENSURE's FnScale autoscaler sizes each function's warm container pool from
its recent request traffic, reserving extra capacity ("burst buffers") for
demand spikes, and deactivates containers that the traffic no longer
justifies. The paper notes the weakness CIDRE exposes: proactively
reserving additional containers under high concurrency with a bounded
global memory budget is hard, so under pressure the reservations either
fail or displace other functions (§5.1).

Model (Little's-law pool sizing):

* every ``control_interval_ms`` the autoscaler computes per-function demand
  ``rate * avg_exec_time`` (expected concurrently busy containers) over a
  recent window and targets ``ceil(demand) + burst_buffer`` warm
  containers, pre-warming the shortfall while memory allows;
* idle containers above the target are deactivated;
* under direct pressure, eviction is LRU;
* scaling is cold-start-only (no busy-container reuse).
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Tuple

from repro.policies.base import OrchestrationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.request import Request
    from repro.sim.worker import Worker


class EnsurePolicy(OrchestrationPolicy):
    """Traffic-driven autoscaling with burst buffers (FnScale-like).

    Parameters
    ----------
    window_ms:
        Traffic-estimation window.
    burst_buffer:
        Extra warm containers reserved on top of the Little's-law demand.
    max_reserved_fraction:
        The autoscaler stops pre-warming once the worker is this full,
        keeping room for reactive cold starts.
    """

    name = "ENSURE"

    def __init__(self, window_ms: float = 60_000.0, burst_buffer: int = 1,
                 control_interval_ms: float = 5_000.0,
                 max_reserved_fraction: float = 0.9):
        super().__init__()
        self.window_ms = window_ms
        self.burst_buffer = burst_buffer
        self.maintenance_interval_ms = control_interval_ms
        self.max_reserved_fraction = max_reserved_fraction
        #: (arrival time, exec time) samples per function.
        self._samples: Dict[str, Deque[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------

    def on_request_complete(self, container: "Container",
                            request: "Request", now: float) -> None:
        super().on_request_complete(container, request, now)
        samples = self._samples.setdefault(request.func, deque())
        samples.append((now, request.exec_ms))
        cutoff = now - self.window_ms
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def target_pool(self, func: str, now: float) -> int:
        """Little's law demand plus burst buffer."""
        samples = self._samples.get(func)
        if not samples:
            return 0
        cutoff = now - self.window_ms
        while samples and samples[0][0] < cutoff:
            samples.popleft()
        if not samples:
            return 0
        rate_per_ms = len(samples) / self.window_ms
        avg_exec = sum(e for _, e in samples) / len(samples)
        demand = rate_per_ms * avg_exec
        return int(math.ceil(demand)) + self.burst_buffer

    # ------------------------------------------------------------------

    def on_maintenance(self, now: float) -> None:
        assert self.ctx is not None
        # shard: cross-worker maintenance sweeps every worker's containers
        for worker in self.ctx.workers():
            funcs = set(worker.all_funcs()) | set(self._samples)
            # Sorted: scale-up order decides container creation order and
            # memory admission, so it must not follow set hash order.
            for func in sorted(funcs):
                target = self.target_pool(func, now)
                warm = worker.warm_count(func) \
                    + worker.provisioning_count(func)
                if warm < target:
                    self._scale_up(worker, func, target - warm, now)
                elif warm > target:
                    self._scale_down(worker, func, warm - target)

    def _scale_up(self, worker: "Worker", func: str, count: int,
                  now: float) -> None:
        assert self.ctx is not None
        spec = self.ctx.spec_of(func)
        for _ in range(count):
            budget = worker.capacity_mb * self.max_reserved_fraction
            if worker.used_mb + spec.memory_mb > budget:
                return  # reservation failed: memory too tight (§5.1)
            if not self.ctx.prewarm(spec, worker):
                return

    def _scale_down(self, worker: "Worker", func: str, count: int) -> None:
        assert self.ctx is not None
        idle = sorted(worker.idle_of(func), key=lambda c: c.last_used_ms)
        for container in idle[:count]:
            self.ctx.evict(container)
