"""Hybrid histogram keep-alive — "Serverless in the Wild" [ATC '20].

An extension baseline (not part of the paper's comparison, but the
canonical production keep-alive policy from Shahrad et al., whose Azure
trace the paper evaluates on). The policy tracks each function's idle-time
(inter-arrival) distribution in a minute-granularity histogram and derives
a per-function *keep-alive window*:

* containers are kept warm until the histogram's ``keep_percentile``
  (default 99th) of idle times has passed since the last invocation, then
  released;
* once released, a container is *pre-warmed* again shortly before the next
  invocation is expected — at the histogram's ``prewarm_percentile``
  (default 5th) — so that predictable functions sleep through their idle
  gaps without paying cold starts;
* functions with too little history or too erratic a pattern fall back to
  a fixed TTL (the "out-of-bounds" path of the original system).

Like the paper's other caching-based baselines, it never reuses busy
containers, so heavy concurrency still forces cold starts — which is
exactly the gap CIDRE targets.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional

from repro.policies.base import OrchestrationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.request import Request
    from repro.sim.worker import Worker

MINUTE_MS = 60_000.0


class _IdleHistogram:
    """Minute-granularity histogram of one function's inter-arrival times."""

    __slots__ = ("bins", "count", "last_arrival_ms")

    def __init__(self, max_minutes: int):
        self.bins = [0] * (max_minutes + 1)
        self.count = 0
        self.last_arrival_ms: Optional[float] = None

    def observe(self, now: float) -> None:
        if self.last_arrival_ms is not None:
            minutes = int((now - self.last_arrival_ms) // MINUTE_MS)
            minutes = min(minutes, len(self.bins) - 1)
            self.bins[minutes] += 1
            self.count += 1
        self.last_arrival_ms = now

    def percentile_minutes(self, q: float) -> Optional[int]:
        """The ``q``-th percentile bin (None without samples)."""
        if self.count == 0:
            return None
        target = math.ceil(self.count * q / 100.0)
        running = 0
        for minute, hits in enumerate(self.bins):
            running += hits
            if running >= target:
                return minute
        return len(self.bins) - 1  # pragma: no cover - defensive

    def is_out_of_bounds(self) -> bool:
        """True when the tail bin dominates (unpredictable pattern)."""
        if self.count == 0:
            return True
        return self.bins[-1] / self.count > 0.5


class HybridHistogramPolicy(OrchestrationPolicy):
    """Histogram-driven keep-alive + pre-warming windows.

    Parameters
    ----------
    keep_percentile / prewarm_percentile:
        Histogram percentiles bounding the keep-alive window.
    min_samples:
        Below this many inter-arrival samples, fall back to the TTL.
    fallback_ttl_ms:
        Keep-alive used for unpredictable / young functions.
    max_minutes:
        Histogram range; longer idle times land in the overflow bin.
    """

    name = "HybridHistogram"

    def __init__(self, keep_percentile: float = 99.0,
                 prewarm_percentile: float = 5.0,
                 min_samples: int = 10,
                 fallback_ttl_ms: float = 10 * MINUTE_MS,
                 max_minutes: int = 240,
                 scan_interval_ms: float = 1_000.0):
        super().__init__()
        if not 0 < prewarm_percentile < keep_percentile <= 100:
            raise ValueError("need 0 < prewarm < keep <= 100 percentiles")
        self.keep_percentile = keep_percentile
        self.prewarm_percentile = prewarm_percentile
        self.min_samples = min_samples
        self.fallback_ttl_ms = fallback_ttl_ms
        self.max_minutes = max_minutes
        self.maintenance_interval_ms = scan_interval_ms
        self._hist: Dict[str, _IdleHistogram] = {}

    # ------------------------------------------------------------------

    def _histogram(self, func: str) -> _IdleHistogram:
        hist = self._hist.get(func)
        if hist is None:
            hist = self._hist[func] = _IdleHistogram(self.max_minutes)
        return hist

    def on_request_arrival(self, request: "Request", worker: "Worker",
                           now: float) -> None:
        super().on_request_arrival(request, worker, now)
        self._histogram(request.func).observe(now)

    def keep_alive_ms(self, func: str) -> float:
        """Current keep-alive window for ``func``."""
        hist = self._hist.get(func)
        if (hist is None or hist.count < self.min_samples
                or hist.is_out_of_bounds()):
            return self.fallback_ttl_ms
        minutes = hist.percentile_minutes(self.keep_percentile)
        # Keep through the whole percentile bin (+1 minute margin, as the
        # original system pads its windows).
        return (minutes + 1) * MINUTE_MS

    def prewarm_at_ms(self, func: str) -> Optional[float]:
        """Absolute time to pre-warm ``func``, or ``None``.

        Pre-warming happens one histogram bin *before* the
        ``prewarm_percentile`` of the idle-time distribution, so the
        container is warm when the predicted arrival lands (the original
        system pads its windows the same way).
        """
        hist = self._hist.get(func)
        if (hist is None or hist.count < self.min_samples
                or hist.is_out_of_bounds()
                or hist.last_arrival_ms is None):
            return None
        minutes = hist.percentile_minutes(self.prewarm_percentile)
        if minutes is None or minutes < 2:
            return None   # short gaps: plain keep-alive already covers it
        return hist.last_arrival_ms + (minutes - 1) * MINUTE_MS

    def release_after_ms(self, func: str) -> float:
        """How long an idle container of ``func`` is kept before release.

        Predictable functions with multi-minute gaps sleep between the
        release point and the pre-warm point — that is the policy's whole
        memory saving; everything else keeps the full window.
        """
        if self.prewarm_at_ms(func) is not None:
            return MINUTE_MS
        return self.keep_alive_ms(func)

    # ------------------------------------------------------------------
    # Eviction order under direct pressure: shortest remaining window.

    def priority(self, container: "Container", now: float) -> float:
        window = self.keep_alive_ms(container.spec.name)
        return (container.last_used_ms + window) - now

    # ------------------------------------------------------------------

    def on_maintenance(self, now: float) -> None:
        assert self.ctx is not None
        # shard: cross-worker maintenance sweeps every worker's containers
        for worker in self.ctx.workers():
            # Release containers whose keep-alive / release window expired.
            for container in list(worker.evictable()):
                window = self.release_after_ms(container.spec.name)
                if now - container.last_used_ms >= window:
                    self.ctx.evict(container)
            # Pre-warm functions approaching their predicted next call.
            for func, hist in self._hist.items():
                when = self.prewarm_at_ms(func)
                if when is None or not (when <= now
                                        <= when + 2
                                        * self.maintenance_interval_ms):
                    continue
                if worker.func_count(func):
                    continue  # already has a container (any state)
                self.ctx.prewarm(self.ctx.spec_of(func), worker)
