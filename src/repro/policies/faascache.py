"""FaasCache (GDSF) keep-alive and the paper's what-if variants.

FaasCache [Fuerst & Sharma, ASPLOS '21] treats function keep-alive as
Greedy-Dual-Size-Frequency caching. Each warm container carries a priority

    Priority(c) = Clock(c) + Freq(f) * Cost(f) / Size(f)          (Eq. 1)

where ``Clock`` is a logical clock capturing recency (set to the global
clock value each time the container is touched), ``Freq`` is the aggregate
number of invocations the function has received, ``Cost`` the provisioning
latency, and ``Size`` the memory footprint. On eviction the global clock is
raised to the victim's priority, so long-idle containers age out.

Two variants from the paper's motivation study (§2.4) live here too:

* :class:`FaasCacheCPolicy` — "FaasCache-C" (Fig. 8), which divides by the
  function's warm-container count ``K`` (Eq. 2), making functions hoarding
  many containers more evictable;
* :class:`BoundedQueueFaasCache` — the Fig. 7 what-if, which lets each busy
  warm container queue up to ``L`` outstanding requests (committed,
  per-container queues) before falling back to a cold start.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.policies.base import (OrchestrationPolicy, ScalingDecision)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.request import Request
    from repro.sim.worker import Worker


class FaasCachePolicy(OrchestrationPolicy):
    """GDSF-based keep-alive (the FaasCache baseline)."""

    name = "FaasCache"

    def __init__(self) -> None:
        super().__init__()
        #: Global GDSF logical clock; raised to each victim's priority.
        self.global_clock = 0.0
        #: Aggregate invocation count per function (GDSF frequency).
        self.freq: Dict[str, int] = {}

    # -- frequency bookkeeping ------------------------------------------

    def on_request_arrival(self, request: "Request", worker: "Worker",
                           now: float) -> None:
        super().on_request_arrival(request, worker, now)
        self.freq[request.func] = self.freq.get(request.func, 0) + 1

    # -- clock bookkeeping ----------------------------------------------

    def _touch(self, container: "Container") -> None:
        container.clock = self.global_clock

    def on_warm_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        super().on_warm_start(container, request, now)
        self._touch(container)

    def on_delayed_start(self, container: "Container", request: "Request",
                         now: float) -> None:
        super().on_delayed_start(container, request, now)
        self._touch(container)

    def on_cold_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        super().on_cold_start(container, request, now)
        self._touch(container)

    def on_provision_started(self, container: "Container",
                             now: float) -> None:
        super().on_provision_started(container, now)
        container.clock = self.global_clock

    def on_eviction(self, victims, now: float) -> None:
        super().on_eviction(victims, now)
        for victim in victims:
            self.global_clock = max(self.global_clock,
                                    self.priority(victim, now))

    # -- priority ---------------------------------------------------------

    def priority(self, container: "Container", now: float) -> float:
        spec = container.spec
        freq = self.freq.get(spec.name, 1)
        return (container.clock
                + freq * spec.cold_start_ms / max(spec.memory_mb, 1e-9))


class FaasCacheCPolicy(FaasCachePolicy):
    """FaasCache-C (Eq. 2): GDSF with a concurrency-aware denominator.

    ``Priority = Clock + Freq * Cost / (Size * K)`` where ``K`` is the
    number of warm containers currently cached for the function. Functions
    with many containers become more evictable, producing the balanced
    evictions of Fig. 8.
    """

    name = "FaasCache-C"

    def priority(self, container: "Container", now: float) -> float:
        spec = container.spec
        freq = self.freq.get(spec.name, 1)
        worker = container.worker
        k = max(worker.warm_count(spec.name), 1) if worker is not None else 1
        return (container.clock
                + freq * spec.cold_start_ms / (max(spec.memory_mb, 1e-9) * k))

    def priorities(self, containers, now: float):
        """Batch form: compute each function's ``K`` once."""
        counts: Dict[str, int] = {}
        out = []
        for container in containers:
            func = container.spec.name
            if func not in counts:
                worker = container.worker
                counts[func] = max(worker.warm_count(func), 1) \
                    if worker is not None else 1
            spec = container.spec
            out.append(container.clock
                       + self.freq.get(func, 1) * spec.cold_start_ms
                       / (max(spec.memory_mb, 1e-9) * counts[func]))
        return out


class BoundedQueueFaasCache(FaasCachePolicy):
    """The Fig. 7 what-if: FaasCache with per-container request queues.

    ``queue_length = 0`` reproduces vanilla FaasCache (always cold start
    when no idle container). With ``queue_length = L``, a request missing
    idle capacity *commits* to the busy warm container with the fewest
    queued requests, as long as that container has fewer than ``L``
    outstanding; only when all busy containers' queues are full does the
    request fall back to a cold start.

    The committed (rather than work-conserving) queues are the point of the
    experiment: with ``L = 2`` a request can get stuck behind two long
    executions even though another container freed up earlier, which is why
    the paper finds ``L = 1`` helps but ``L = 2`` hurts.
    """

    def __init__(self, queue_length: int = 1):
        super().__init__()
        if queue_length < 0:
            raise ValueError("queue_length must be >= 0")
        self.queue_length = queue_length
        self.name = f"FaasCache-L{queue_length}"
        #: Outstanding committed requests per container id.
        self._qlen: Dict[int, int] = {}

    def scale(self, request: "Request", worker: "Worker",
              now: float) -> ScalingDecision:
        if self.queue_length == 0:
            return ScalingDecision.cold()
        best: Optional["Container"] = None
        best_q = self.queue_length  # must be strictly below to qualify
        for container in worker.busy_of(request.func):
            q = self._qlen.get(container.container_id, 0)
            if q < best_q:
                best, best_q = container, q
        if best is None:
            return ScalingDecision.cold()
        self._qlen[best.container_id] = best_q + 1
        return ScalingDecision.queue(target=best)

    def on_delayed_start(self, container: "Container", request: "Request",
                         now: float) -> None:
        super().on_delayed_start(container, request, now)
        queued = self._qlen.get(container.container_id, 0)
        if queued > 0:
            self._qlen[container.container_id] = queued - 1

    def on_eviction(self, victims, now: float) -> None:
        super().on_eviction(victims, now)
        for victim in victims:
            self._qlen.pop(victim.container_id, None)
