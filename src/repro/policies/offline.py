"""Offline — the future-knowledge oracle baseline (§4).

The Offline policy sees the whole trace in advance and therefore bounds
what any online policy can achieve:

* **Eviction** is a concurrency-aware Belady MIN. Containers are ranked by
  the future arrival that would actually need *them*: a function's
  most-recently-used container is ranked by the function's next arrival,
  its second container by the second-next arrival, and so on. Plain
  per-function Belady would keep a hot function's entire container fleet
  alive (its next use is always imminent) — exactly the compound-object
  blindness the paper's §2.3 describes — so the oracle must account for
  *how many* containers the future workload can use concurrently.
* **Scaling** compares the actual time at which a busy warm container of
  the function will become available for this request (accounting for the
  waiters already queued ahead of it) against the actual cold-start
  completion time. When the delayed warm start is strictly cheaper the
  request only queues (no container is wasted); otherwise the oracle
  *races* both paths, which realizes the paper's "exhaustive search over
  the current and future cache state": the request executes at the true
  minimum of the two completion times even when in-flight work makes the
  static estimate stale.

The oracle must be constructed with the request list it will replay
(:meth:`for_trace` or the ``requests`` constructor argument).
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.policies.base import OrchestrationPolicy, ScalingDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.request import Request
    from repro.sim.worker import Worker

_FAR_FUTURE = float("inf")


class OfflinePolicy(OrchestrationPolicy):
    """Belady MIN eviction + future-knowledge scaling."""

    name = "Offline"

    def __init__(self, requests: Iterable["Request"]):
        super().__init__()
        self._future: Dict[str, List[float]] = {}
        for req in requests:
            self._future.setdefault(req.func, []).append(req.arrival_ms)
        for arrivals in self._future.values():
            arrivals.sort()

    @classmethod
    def for_trace(cls, requests: Iterable["Request"]) -> "OfflinePolicy":
        return cls(requests)

    # ------------------------------------------------------------------
    # Future knowledge

    def next_use_ms(self, func: str, now: float, k: int = 1) -> float:
        """Arrival time of the ``k``-th next request of ``func`` strictly
        after ``now`` (``inf`` when fewer than ``k`` remain)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        arrivals = self._future.get(func)
        if not arrivals:
            return _FAR_FUTURE
        idx = bisect.bisect_right(arrivals, now) + k - 1
        if idx >= len(arrivals):
            return _FAR_FUTURE
        return arrivals[idx]

    # ------------------------------------------------------------------
    # Concurrency-aware Belady MIN: the k-th container of a function is
    # ranked by the k-th future arrival; furthest-needed evicted first.

    def priority(self, container: "Container", now: float) -> float:
        rank = self._recency_rank(container)
        return -self.next_use_ms(container.spec.name, now, k=rank)

    def priorities(self, containers, now: float):
        """Batch form: compute each function's recency ranking once
        instead of one O(|F|) scan per container."""
        by_func: Dict[str, List["Container"]] = {}
        for c in containers:
            worker = c.worker
            peers = worker.of_func(c.spec.name) if worker else [c]
            by_func.setdefault(c.spec.name, peers if worker else [c])
        ranks: Dict[int, int] = {}
        for func, peers in by_func.items():
            warm = sorted((p for p in peers if not p.is_provisioning),
                          key=lambda p: -p.last_used_ms)
            for i, p in enumerate(warm):
                ranks[p.container_id] = i + 1
        out = []
        for c in containers:
            rank = ranks.get(c.container_id, 1)
            out.append(-self.next_use_ms(c.spec.name, now, k=rank))
        return out

    def _recency_rank(self, container: "Container") -> int:
        """1-based recency rank among the function's warm containers
        (1 = most recently used)."""
        worker = container.worker
        if worker is None:
            return 1
        fresher = sum(
            1 for peer in worker.of_func(container.spec.name)
            if peer is not container and not peer.is_provisioning
            and peer.last_used_ms > container.last_used_ms)
        return fresher + 1

    # ------------------------------------------------------------------
    # Oracle scaling

    def scale(self, request: "Request", worker: "Worker",
              now: float) -> ScalingDecision:
        assert self.ctx is not None
        func = request.func
        free_times: List[float] = []
        for container in worker.busy_of(func):
            # With the simulator's deterministic execution, a busy
            # container frees when its in-flight requests complete.
            done = max((r.start_ms + r.exec_ms for r in container.active),
                       default=now)
            free_times.append(done)
        for container in worker.provisioning_of(func):
            # A provisioning container will also take queued waiters.
            free_times.append(container.created_ms
                              + container.spec.cold_start_ms)
        free_times.sort()
        # Requests already queued ahead of this one will absorb the
        # earliest slots.
        ahead = self.ctx.outstanding_waiters(func)
        if ahead < len(free_times):
            t_delayed = free_times[ahead]
        else:
            t_delayed = _FAR_FUTURE
        t_cold = now + self.ctx.spec_of(func).cold_start_ms
        if t_delayed <= t_cold:
            # The delayed warm start is provably no worse: just queue and
            # spare the container (Belady keeps the cache clean).
            return ScalingDecision.queue()
        # Otherwise race both paths: the request executes at the true
        # minimum of the two completion times, which is what the paper's
        # exhaustive current-and-future search would pick.
        return ScalingDecision.speculate()
