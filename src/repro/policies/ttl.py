"""TTL keep-alive — OpenLambda's default policy.

Containers are kept alive for a fixed period after their last use
(10 minutes by default, the paper's §4 setting) and reclaimed when the
lifespan expires. Under memory pressure TTL additionally falls back to
evicting the longest-idle containers so that new provisions are not starved
(capacity-triggered expiry), matching how TTL systems behave when the cache
is smaller than the working set.

TTL never reuses busy containers: every request that misses idle capacity
pays a full cold start.
"""

from __future__ import annotations

import math

from typing import TYPE_CHECKING, Optional

from repro.policies.base import OrchestrationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container

TEN_MINUTES_MS = 10 * 60 * 1_000.0


class TTLPolicy(OrchestrationPolicy):
    """Fixed-lifespan keep-alive (OpenLambda default)."""

    name = "TTL"

    def __init__(self, ttl_ms: float = TEN_MINUTES_MS,
                 scan_interval_ms: float = 1_000.0):
        super().__init__()
        if ttl_ms <= 0:
            raise ValueError("ttl_ms must be positive")
        self.ttl_ms = ttl_ms
        self.maintenance_interval_ms = scan_interval_ms

    def priority(self, container: "Container", now: float) -> float:
        # Under pressure, reclaim the container closest to expiry first.
        return container.last_used_ms

    def on_maintenance(self, now: float) -> None:
        assert self.ctx is not None
        # shard: cross-worker TTL maintenance sweeps every worker's containers
        for worker in self.ctx.workers():
            expired = [c for c in worker.evictable()
                       if now - c.last_used_ms >= self.ttl_ms]
            for container in expired:
                self.ctx.evict(container)

    def maintenance_horizon(self, now: float) -> Optional[float]:
        """First possible expiry: the scan evicts nothing until the oldest
        evictable container's lifespan runs out (an evictable container's
        recency is frozen — using it leaves the evictable set)."""
        if self.ctx is None:
            return None
        horizon = math.inf
        # shard: cross-worker horizon scan over every worker's expiry times
        for worker in self.ctx.workers():
            oldest = worker.oldest_evictable_ms()
            if oldest is not None and oldest + self.ttl_ms < horizon:
                horizon = oldest + self.ttl_ms
        return horizon
