"""Flame — centralized, skew-aware cache control [ASPLOS '23].

Flame observes that FaaS workloads are heavily skewed: a small set of hot
functions receives most invocations while a long tail of rarely invoked
("cold") functions wastes keep-alive memory. Its centralized cache
controller periodically reclaims containers of rarely invoked functions and
sizes each hot function's warm pool to its recent demand.

Model:

* a global controller runs every ``control_interval_ms``: it computes each
  function's invocation rate over a recent window, reclaims *all* idle
  containers of functions whose rate falls below ``cold_rate_per_min``, and
  trims hot functions' idle pools down to their observed peak concurrent
  demand;
* under direct memory pressure, victims are ranked by function rate (the
  skew signal) and recency within a function — rarely invoked functions go
  first;
* scaling is cold-start-only (Flame does not reuse busy containers), which
  is why it trails CIDRE "under high concurrency and high load" (§5.1).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict

from repro.core.window import MINUTES_MS
from repro.policies.base import OrchestrationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.request import Request
    from repro.sim.worker import Worker


class FlamePolicy(OrchestrationPolicy):
    """Centralized rate-based cache controller.

    Parameters
    ----------
    window_ms:
        Rate-estimation window for the controller.
    cold_rate_per_min:
        Functions invoked less often than this are treated as cold and
        their idle containers reclaimed by the controller.
    headroom:
        Idle containers kept per hot function on top of its observed peak
        in-window concurrency.
    """

    name = "Flame"

    def __init__(self, window_ms: float = 60_000.0,
                 cold_rate_per_min: float = 1.0,
                 headroom: int = 1,
                 control_interval_ms: float = 5_000.0):
        super().__init__()
        self.window_ms = window_ms
        self.cold_rate_per_min = cold_rate_per_min
        self.headroom = headroom
        self.maintenance_interval_ms = control_interval_ms
        #: Recent arrival timestamps per function.
        self._arrivals: Dict[str, Deque[float]] = {}
        #: Peak concurrent busy containers per function (in-window proxy).
        self._peak_busy: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def on_request_arrival(self, request: "Request", worker: "Worker",
                           now: float) -> None:
        super().on_request_arrival(request, worker, now)
        arrivals = self._arrivals.setdefault(request.func, deque())
        arrivals.append(now)
        cutoff = now - self.window_ms
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()
        busy = worker.busy_count(request.func)
        if busy > self._peak_busy.get(request.func, 0):
            self._peak_busy[request.func] = busy

    def rate_per_min(self, func: str, now: float) -> float:
        arrivals = self._arrivals.get(func)
        if not arrivals:
            return 0.0
        cutoff = now - self.window_ms
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()
        return len(arrivals) / (self.window_ms / MINUTES_MS)

    # ------------------------------------------------------------------
    # Pressure eviction: rarely invoked functions go first

    def priority(self, container: "Container", now: float) -> float:
        rate = self.rate_per_min(container.spec.name, now)
        # Rate dominates; recency breaks ties within a function. The
        # recency term is scaled into [0, 1) so it never outweighs rate.
        recency = 1.0 / (1.0 + max(now - container.last_used_ms, 0.0))
        return rate + recency

    # ------------------------------------------------------------------
    # Controller

    def on_maintenance(self, now: float) -> None:
        assert self.ctx is not None
        # shard: cross-worker maintenance sweeps every worker's containers
        for worker in self.ctx.workers():
            for func in list(worker.all_funcs()):
                idle = worker.idle_of(func)
                if not idle:
                    continue
                rate = self.rate_per_min(func, now)
                if rate < self.cold_rate_per_min:
                    for container in idle:
                        self.ctx.evict(container)
                    self._peak_busy.pop(func, None)
                    continue
                # Trim hot functions' idle pools to peak demand + headroom.
                allowed = self._peak_busy.get(func, 0) + self.headroom
                excess = len(idle) + worker.busy_count(func) - allowed
                if excess > 0:
                    victims = sorted(idle, key=lambda c: c.last_used_ms)
                    for container in victims[:excess]:
                        self.ctx.evict(container)
            # Peak concurrency decays each control round so pools shrink
            # after bursts pass.
            for func in list(self._peak_busy):
                self._peak_busy[func] = max(
                    worker.busy_count(func),
                    self._peak_busy[func] // 2)
