"""LRU keep-alive.

Containers stay warm until memory pressure, at which point the least
recently used idle containers are evicted. Like all traditional
caching-based keep-alive policies, LRU never reuses busy containers — a
request that finds no idle container always pays a cold start.

This is exactly the default behaviour of
:class:`~repro.policies.base.OrchestrationPolicy`; the subclass exists for
a stable name and an explicit anchor for the paper's LRU baseline.
"""

from __future__ import annotations

from repro.policies.base import OrchestrationPolicy


class LRUPolicy(OrchestrationPolicy):
    """Least-recently-used eviction, cold-start-only scaling."""

    name = "LRU"
