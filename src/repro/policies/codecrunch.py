"""CodeCrunch — container compression under memory pressure [ASPLOS '24].

CodeCrunch keeps more function state resident by *compressing* idle
containers instead of evicting them when memory runs short: a compressed
container's footprint shrinks to a fraction of the original, and reusing it
costs a decompression latency that is much smaller than a full cold start.
(The original also places warmup-heavy functions on beefier servers; as
with IceBreaker, the paper's homogeneous testbed neutralizes that part.)

Model:

* ``make_room`` first compresses idle containers (GDSF order, lowest
  priority first), freeing ``1 - compressed_fraction`` of each footprint;
  only when everything compressible is compressed does it evict compressed
  containers outright.
* A request that finds no idle container but a compressed one pays
  ``decompress_fraction * cold_start_ms`` instead of the full cold start.
  Mechanically this is a short bound provision on the restored container.
* Like all caching-based baselines, CodeCrunch never reuses busy
  containers.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from repro.policies.faascache import FaasCachePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.function import FunctionSpec
    from repro.sim.worker import Worker


class CodeCrunchPolicy(FaasCachePolicy):
    """Compression-based keep-alive over a GDSF substrate.

    Parameters
    ----------
    compressed_fraction:
        Footprint of a compressed container relative to the original.
    decompress_fraction:
        Restore latency relative to the function's full cold start.
    """

    name = "CodeCrunch"

    #: Orchestrator capability flag: requests may reuse compressed
    #: containers by paying :meth:`restore_cost_ms`.
    reuse_compressed = True

    def __init__(self, compressed_fraction: float = 0.35,
                 decompress_fraction: float = 0.25):
        super().__init__()
        if not 0 < compressed_fraction < 1:
            raise ValueError("compressed_fraction must be in (0, 1)")
        if not 0 < decompress_fraction <= 1:
            raise ValueError("decompress_fraction must be in (0, 1]")
        self.compressed_fraction = compressed_fraction
        self.decompress_fraction = decompress_fraction

    def restore_cost_ms(self, spec: "FunctionSpec") -> float:
        """Latency to decompress a compressed container of ``spec``."""
        return spec.cold_start_ms * self.decompress_fraction

    def make_room(self, worker: "Worker", need_mb: float, now: float,
                  for_func: Optional[str] = None) -> bool:
        assert self.ctx is not None
        if worker.free_mb >= need_mb:
            return True
        if worker.naive:
            return self._make_room_reference(worker, need_mb, now, for_func)
        if worker.free_mb + worker.evictable_mb() < need_mb:
            return False  # even evicting everything would not fit
        # Phase 1: compress idle (uncompressed) containers, lowest GDSF
        # priority first. Never compress containers of the function being
        # provisioned — a request may be about to restore one. Ranked
        # through a (priority, container_id) min-heap popped only as far
        # as needed — identical victims/order to the reference's stable
        # sort over ascending-id candidates.
        idle = [(self.priority(c, now), c.container_id, c)
                for c in worker.evictable_items()
                if c.is_idle and c.spec.name != for_func]
        heapq.heapify(idle)
        while idle and worker.free_mb < need_mb:
            _, _, container = heapq.heappop(idle)
            self.ctx.compress(container, self.compressed_fraction)
        if worker.free_mb >= need_mb:
            return True
        # Phase 2: evict compressed containers outright.
        squeezed = [(self.priority(c, now), c.container_id, c)
                    for c in worker.evictable_items()]
        heapq.heapify(squeezed)
        while squeezed and worker.free_mb < need_mb:
            _, _, container = heapq.heappop(squeezed)
            self.ctx.evict(container)
        return worker.free_mb >= need_mb

    def _make_room_reference(self, worker: "Worker", need_mb: float,
                             now: float, for_func: Optional[str]) -> bool:
        """Pre-index implementation: full sort per phase."""
        assert self.ctx is not None
        evictable_mb = sum(c.memory_mb for c in worker.evictable())
        if worker.free_mb + evictable_mb < need_mb:
            return False
        idle = sorted(
            (c for c in worker.evictable()
             if c.is_idle and c.spec.name != for_func),
            key=lambda c: self.priority(c, now))
        for container in idle:
            if worker.free_mb >= need_mb:
                return True
            self.ctx.compress(container, self.compressed_fraction)
        if worker.free_mb >= need_mb:
            return True
        squeezed = sorted((c for c in worker.evictable()),
                          key=lambda c: self.priority(c, now))
        for container in squeezed:
            if worker.free_mb >= need_mb:
                return True
            self.ctx.evict(container)
        return worker.free_mb >= need_mb
