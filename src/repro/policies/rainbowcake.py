"""RainbowCake — layer-wise container caching and sharing [ASPLOS '24].

RainbowCake splits a container into three stacked layers: ``bare`` (base OS,
shareable across all functions), ``lang`` (language runtime, shareable
across functions with the same runtime tag), and ``user`` (function code,
private). Instead of evicting whole containers, it *decays* them: on
keep-alive expiry or pressure the private user layer is dropped but the
lang/bare layers return to a shared warm-layer pool, so a later cold start
of any function with a matching runtime only pays for the layers it is
missing.

The model here keeps the essential behaviour the paper's comparison relies
on (§5.1, §5.4):

* low memory usage at low concurrency (shared layers amortize footprint);
* reduced cold-start *cost* whenever a matching warm layer is available;
* degraded behaviour under high concurrency: concurrent requests cannot
  find enough idle shared layers, so they pay (partial) provisioning and
  the layer pool stops helping — RainbowCake still never reuses a busy
  container.

Layer keep-alive uses per-kind TTLs (user < lang < bare), standing in for
RainbowCake's histogram-sized per-layer keep-alive windows.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.policies.base import OrchestrationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.function import FunctionSpec
    from repro.sim.worker import Worker


@dataclass
class _WarmLayer:
    """One warm layer waiting in the shared pool."""

    kind: Tuple[str, str]      # ("bare", "") or ("lang", runtime)
    mem_mb: float
    cost_ms: float
    cached_at: float


@dataclass
class _LayerPool:
    """Per-worker pool of decayed warm layers."""

    layers: List[_WarmLayer] = field(default_factory=list)

    def total_mb(self) -> float:
        return sum(layer.mem_mb for layer in self.layers)

    def take(self, kind: Tuple[str, str]) -> Optional[_WarmLayer]:
        for i, layer in enumerate(self.layers):
            if layer.kind == kind:
                return self.layers.pop(i)
        return None

    def drop_oldest(self) -> Optional[_WarmLayer]:
        if not self.layers:
            return None
        oldest = min(range(len(self.layers)),
                     key=lambda i: self.layers[i].cached_at)
        return self.layers.pop(oldest)

    def expire(self, now: float, ttl_by_kind) -> List[_WarmLayer]:
        expired = [l for l in self.layers
                   if now - l.cached_at >= ttl_by_kind(l.kind)]
        self.layers = [l for l in self.layers
                       if now - l.cached_at < ttl_by_kind(l.kind)]
        return expired


class RainbowCakePolicy(OrchestrationPolicy):
    """Layer-wise keep-alive and sharing.

    Parameters
    ----------
    user_ttl_ms / lang_ttl_ms / bare_ttl_ms:
        Keep-alive windows: the whole container (user layer on top) expires
        first, then its lang layer, then the bare layer.
    max_pool_fraction:
        Cap on the fraction of worker memory the shared layer pool may
        occupy; beyond it the oldest layers are dropped.
    """

    name = "RainbowCake"

    def __init__(self, user_ttl_ms: float = 60_000.0,
                 lang_ttl_ms: float = 300_000.0,
                 bare_ttl_ms: float = 600_000.0,
                 max_pool_fraction: float = 0.3,
                 scan_interval_ms: float = 1_000.0):
        super().__init__()
        self.user_ttl_ms = user_ttl_ms
        self.lang_ttl_ms = lang_ttl_ms
        self.bare_ttl_ms = bare_ttl_ms
        self.max_pool_fraction = max_pool_fraction
        self.maintenance_interval_ms = scan_interval_ms
        self._pools: Dict[int, _LayerPool] = {}

    # ------------------------------------------------------------------

    def _pool(self, worker: "Worker") -> _LayerPool:
        pool = self._pools.get(worker.worker_id)
        if pool is None:
            pool = self._pools[worker.worker_id] = _LayerPool()
        return pool

    def _ttl_of(self, kind: Tuple[str, str]) -> float:
        return self.bare_ttl_ms if kind[0] == "bare" else self.lang_ttl_ms

    def _sync_reservation(self, worker: "Worker") -> None:
        worker.reserve("rainbowcake-layers", self._pool(worker).total_mb())

    # ------------------------------------------------------------------
    # Cost model: pay only for missing layers

    def provision_cost_ms(self, spec: "FunctionSpec", worker: "Worker",
                          now: float) -> float:
        pool = self._pool(worker)
        cost = spec.layer_cost_ms("user")
        lang = pool.take(("lang", spec.runtime))
        if lang is None:
            cost += spec.layer_cost_ms("lang")
        bare = pool.take(("bare", ""))
        if bare is None:
            cost += spec.layer_cost_ms("bare")
        # Consumed layers become part of the container; stop reserving them.
        self._sync_reservation(worker)
        return cost

    # ------------------------------------------------------------------
    # Eviction: decay to layers instead of discarding everything

    def priority(self, container: "Container", now: float) -> float:
        return container.last_used_ms  # recency within the warm set

    def make_room(self, worker: "Worker", need_mb: float, now: float,
                  for_func: Optional[str] = None) -> bool:
        assert self.ctx is not None
        pool = self._pool(worker)
        # First shrink the shared pool (cheapest capacity to give back).
        while worker.free_mb < need_mb and pool.layers:
            pool.drop_oldest()
            self._sync_reservation(worker)
        if worker.free_mb >= need_mb:
            return True
        if worker.naive:
            victim_mb = sum(c.memory_mb for c in worker.evictable())
        else:
            victim_mb = worker.evictable_mb()
        if worker.free_mb + victim_mb < need_mb:
            return False  # even full eviction would not fit
        # Then decay idle containers, oldest first. Decay keeps shareable
        # layers warm when the pool has headroom — that is RainbowCake's
        # core trade: each decayed container frees only its user layer at
        # first, so more containers decay, but later cold starts get
        # cheaper. The pool shrink above reclaims layers when memory truly
        # runs out.
        if worker.naive:
            victims = sorted(worker.evictable(),
                             key=lambda c: self.priority(c, now))
            for victim in victims:
                self._decay(victim, worker, now, keep_layers=True)
                if worker.free_mb >= need_mb:
                    return True
        else:
            # (priority, container_id) min-heap popped as far as needed —
            # same victims/order as the reference's stable sort over
            # ascending-id candidates.
            ranked = [(self.priority(c, now), c.container_id, c)
                      for c in worker.evictable_items()]
            heapq.heapify(ranked)
            while ranked:
                _, _, victim = heapq.heappop(ranked)
                self._decay(victim, worker, now, keep_layers=True)
                if worker.free_mb >= need_mb:
                    return True
        # Last resort: give back pooled layers kept during this pass.
        while worker.free_mb < need_mb and pool.layers:
            pool.drop_oldest()
            self._sync_reservation(worker)
        return worker.free_mb >= need_mb

    def _decay(self, container: "Container", worker: "Worker", now: float,
               keep_layers: bool) -> None:
        """Evict ``container``; optionally keep its shareable layers warm.

        Pressure-driven decay (``keep_layers=False``) releases everything —
        RainbowCake cannot afford to keep layers when memory is needed
        immediately. TTL-driven decay keeps lang/bare warm in the pool
        subject to the pool-size cap.
        """
        assert self.ctx is not None
        spec = container.spec
        self.ctx.evict(container)
        if not keep_layers:
            return
        pool = self._pool(worker)
        cap = worker.capacity_mb * self.max_pool_fraction
        for kind, layer_name in ((("lang", spec.runtime), "lang"),
                                 (("bare", ""), "bare")):
            mem = spec.layer_mem_mb(layer_name)
            if pool.total_mb() + mem > cap:
                continue
            if mem > worker.free_mb:
                continue
            pool.layers.append(_WarmLayer(kind, mem,
                                          spec.layer_cost_ms(layer_name),
                                          now))
        self._sync_reservation(worker)

    # ------------------------------------------------------------------
    # Maintenance: per-layer TTL expiry

    def on_maintenance(self, now: float) -> None:
        assert self.ctx is not None
        # shard: cross-worker maintenance sweeps every worker's layer pools
        for worker in self.ctx.workers():
            pool = self._pool(worker)
            pool.expire(now, self._ttl_of)
            self._sync_reservation(worker)
            expired = [c for c in worker.evictable()
                       if now - c.last_used_ms >= self.user_ttl_ms]
            for container in expired:
                self._decay(container, worker, now, keep_layers=True)
