"""Keep-alive / scaling baselines the paper compares against."""

from repro.policies.base import (OrchestrationPolicy, ScalingAction,
                                 ScalingDecision)
from repro.policies.codecrunch import CodeCrunchPolicy
from repro.policies.ensure import EnsurePolicy
from repro.policies.faascache import (BoundedQueueFaasCache,
                                      FaasCacheCPolicy, FaasCachePolicy)
from repro.policies.flame import FlamePolicy
from repro.policies.hybrid_histogram import HybridHistogramPolicy
from repro.policies.icebreaker import IceBreakerPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.offline import OfflinePolicy
from repro.policies.rainbowcake import RainbowCakePolicy
from repro.policies.ttl import TTLPolicy

__all__ = [
    "BoundedQueueFaasCache", "CodeCrunchPolicy", "EnsurePolicy",
    "FaasCacheCPolicy", "FaasCachePolicy", "FlamePolicy",
    "HybridHistogramPolicy", "IceBreakerPolicy", "LRUPolicy",
    "OfflinePolicy", "OrchestrationPolicy",
    "RainbowCakePolicy", "ScalingAction", "ScalingDecision", "TTLPolicy",
]
