"""Policy interfaces: scaling (cold vs delayed-warm) and eviction.

An :class:`OrchestrationPolicy` plugs into the simulator's control plane
(:mod:`repro.sim.orchestrator`) at two decision points:

1. **Scaling** — when a request finds no idle warm container, the policy
   chooses among:

   * ``COLD``      — provision a container bound to this request (the
     vanilla keep-alive behaviour: TTL, LRU, FaasCache, ...);
   * ``QUEUE``     — wait for a busy warm container (a delayed warm start),
     optionally committed to one specific container (the bounded-queue
     what-if of Fig. 7);
   * ``SPECULATE`` — do both simultaneously and take whichever becomes
     available first (CIDRE's speculative scaling, §3.2).

2. **Eviction** — when provisioning needs memory, :meth:`make_room` frees
   capacity. The default implementation evicts idle containers in
   ascending :meth:`priority` order (the paper's ``REPLACE`` subroutine);
   policies may override either the priority (GDSF, CIP, LRU, ...) or the
   whole procedure (CodeCrunch compresses instead of evicting).

Policies observe the container lifecycle through ``on_*`` hooks; they never
mutate simulator state directly except through the :class:`PolicyContext`
facade handed to them at bind time.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.function import FunctionSpec
    from repro.sim.request import Request
    from repro.sim.worker import Worker


class ScalingAction(enum.Enum):
    COLD = "cold"
    QUEUE = "queue"
    SPECULATE = "speculate"


@dataclass
class ScalingDecision:
    """Outcome of :meth:`OrchestrationPolicy.scale`.

    ``target`` commits a ``QUEUE`` decision to one specific busy container
    (per-container queues, Fig. 7); when ``None`` the request joins the
    work-conserving per-function FIFO and is served by whichever container
    of the function frees up first.
    """

    action: ScalingAction
    target: Optional["Container"] = None

    @classmethod
    def cold(cls) -> "ScalingDecision":
        return cls(ScalingAction.COLD)

    @classmethod
    def queue(cls, target: Optional["Container"] = None) -> "ScalingDecision":
        return cls(ScalingAction.QUEUE, target)

    @classmethod
    def speculate(cls) -> "ScalingDecision":
        return cls(ScalingAction.SPECULATE)


class PolicyContext(Protocol):
    """The orchestrator facade available to policies.

    Only maintenance-style actions are exposed; request routing stays with
    the orchestrator.
    """

    @property
    def now(self) -> float: ...

    def evict(self, container: "Container",
              decision_id: Optional[int] = None) -> None:
        """Reclaim an evictable container immediately.

        ``decision_id`` ties the eviction to its audited REPLACE decision
        (base ``make_room`` passes it through); policy-direct calls omit
        it and the orchestrator mints a ``scale_down`` audit record
        instead, so every eviction stays attributable."""

    def compress(self, container: "Container", mem_fraction: float) -> None:
        """Shrink an idle container to ``mem_fraction`` of its footprint."""

    def prewarm(self, spec: "FunctionSpec", worker: "Worker") -> bool:
        """Provision a container ahead of demand; returns False when memory
        cannot be freed."""

    def workers(self) -> List["Worker"]: ...

    def spec_of(self, func: str) -> "FunctionSpec": ...

    def outstanding_waiters(self, func: str) -> int:
        """Unserved queued requests of ``func`` (delayed-warm-start queue)."""

    def oldest_waiter_age_ms(self, func: str) -> float:
        """Age of the oldest unserved queued request of ``func`` (0 when
        the queue is empty) — the live delayed-warm-start cost signal."""

    def provisions_in_flight(self, func: str) -> int:
        """Containers of ``func`` currently provisioning or queued for
        memory to start provisioning."""

    def speculate_for(self, func: str) -> bool:
        """Provision one unbound speculative container for ``func``."""

    def waiting_functions(self) -> List[str]:
        """Functions that currently have unserved queued requests."""


class OrchestrationPolicy:
    """Base policy: always cold-start, evict by recency (LRU-like).

    Subclasses override the pieces they change; the defaults are chosen so
    that a bare ``OrchestrationPolicy`` behaves like a sane caching-based
    keep-alive system.
    """

    #: Human-readable name used in result tables.
    name = "base"

    #: Optional observability attachments (:mod:`repro.obs`), set by the
    #: orchestrator before :meth:`bind`. Strictly read-only: policies feed
    #: them but never consult them, so attaching either leaves runs
    #: bit-identical (pinned by ``tests/obs/test_audit_differential.py``).
    audit = None
    metrics = None

    #: Container ids the base ``make_room`` must never evict. Set only by
    #: counterfactual replays (:mod:`repro.analysis.attribution`) that
    #: suppress one audited eviction decision to measure its realized
    #: regret; ``None`` (the default) takes the unmodified hot path.
    #: Protecting containers that factually survived up to the pinned
    #: decision provably leaves every earlier REPLACE decision unchanged
    #: (a survivor is never in a chosen-victim prefix), so decision ids
    #: stay aligned between the factual and counterfactual replays.
    protected_cids = None

    def __init__(self) -> None:
        self.ctx: Optional[PolicyContext] = None

    # ------------------------------------------------------------------
    # Wiring

    def bind(self, ctx: PolicyContext) -> None:
        """Called once by the orchestrator before the run starts."""
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Scaling

    def scale(self, request: "Request", worker: "Worker",
              now: float) -> ScalingDecision:
        """Choose how to serve a request with no idle container available."""
        return ScalingDecision.cold()

    # ------------------------------------------------------------------
    # Eviction

    def priority(self, container: "Container", now: float) -> float:
        """Keep-alive priority; lower values are evicted first.

        The default is pure recency (LRU): the least recently used
        container has the lowest priority.
        """
        return container.last_used_ms

    def priorities(self, containers: List["Container"],
                   now: float) -> List[float]:
        """Batch priority computation (hot path of ``make_room``).

        The default delegates to :meth:`priority`; policies whose priority
        needs per-function aggregates (CIP's ``|F(c)|``, FaasCache-C's
        ``K``) override this to precompute them once per batch.
        """
        return [self.priority(c, now) for c in containers]

    def priority_components(self, container: "Container",
                            now: float) -> dict:
        """Decomposition of :meth:`priority` for audit records.

        The base policy's priority is a single recency term, so there is
        nothing to decompose; CIP overrides this with the full Eq. 3
        breakdown (``clock``, ``freq_per_min``, ``cost_ms``, ``size_mb``,
        ``warm_count``).
        """
        return {"priority": self.priority(container, now)}

    def make_room(self, worker: "Worker", need_mb: float, now: float,
                  for_func: Optional[str] = None) -> bool:
        """Free at least ``need_mb`` on ``worker``; returns success.

        Default: evict evictable containers in ascending priority order —
        the paper's ``REPLACE`` subroutine. ``for_func`` names the function
        being provisioned so policies can avoid evicting its own reusable
        containers.

        The fast path ranks victims through a min-heap keyed on
        ``(priority, container_id)`` and pops only until enough memory is
        freed, instead of fully sorting every candidate. This selects the
        exact same victims in the exact same order as the retained
        sort-based reference: the reference's ``sorted`` is stable over
        candidates listed in ascending container id, so its tie-break *is*
        ascending container id — precisely the heap's secondary key.
        """
        assert self.ctx is not None, "policy not bound"
        if worker.free_mb >= need_mb:
            return True
        if self.protected_cids:
            return self._make_room_filtered(worker, need_mb, now, for_func)
        if worker.naive:
            return self._make_room_reference(worker, need_mb, now, for_func)
        # O(1) infeasibility check before ranking anything: under a burst
        # most capacity is busy and reclaiming everything still would not
        # fit — skip the priority ranking entirely.
        if worker.free_mb + worker.evictable_mb() < need_mb:
            return False
        candidates = list(worker.evictable_items())
        ranked = self.priorities(candidates, now)
        heap = [(priority, c.container_id, c)
                for priority, c in zip(ranked, candidates)]
        heapq.heapify(heap)
        freed = worker.free_mb
        chosen: List["Container"] = []
        while freed < need_mb:
            _, _, victim = heapq.heappop(heap)
            chosen.append(victim)
            freed += victim.memory_mb
        did = None
        if self.audit is not None or self.metrics is not None:
            did = self._note_replace(worker, candidates, ranked, chosen,
                                     need_mb, now, for_func)
        for victim in chosen:
            self.ctx.evict(victim, decision_id=did)
        return True

    def _make_room_reference(self, worker: "Worker", need_mb: float,
                             now: float,
                             for_func: Optional[str] = None) -> bool:
        """Pre-index REPLACE: full stable sort of every candidate."""
        candidates = worker.evictable()
        if worker.free_mb + sum(c.memory_mb for c in candidates) < need_mb:
            return False
        priorities = self.priorities(candidates, now)
        ranked = sorted(zip(priorities, candidates),
                        key=lambda pair: pair[0])
        freed = worker.free_mb
        chosen: List["Container"] = []
        for _, victim in ranked:
            chosen.append(victim)
            freed += victim.memory_mb
            if freed >= need_mb:
                break
        if freed < need_mb:
            return False
        did = None
        if self.audit is not None or self.metrics is not None:
            did = self._note_replace(worker, candidates, priorities, chosen,
                                     need_mb, now, for_func)
        for victim in chosen:
            self.ctx.evict(victim, decision_id=did)
        return True

    def _make_room_filtered(self, worker: "Worker", need_mb: float,
                            now: float,
                            for_func: Optional[str] = None) -> bool:
        """REPLACE with :attr:`protected_cids` excluded from eviction.

        Counterfactual-only slow path shared by both replay modes: rank
        the unprotected candidates with an explicit
        ``(priority, container_id)`` sort — the exact victim order of
        both the heap hot path and the stable reference sort — and
        re-check feasibility on the filtered pool (the O(1)
        ``evictable_mb`` precheck would overcount protected memory).
        """
        protected = self.protected_cids
        pool = (worker.evictable() if worker.naive
                else list(worker.evictable_items()))
        candidates = [c for c in pool if c.container_id not in protected]
        if worker.free_mb + sum(c.memory_mb for c in candidates) < need_mb:
            return False
        priorities = self.priorities(candidates, now)
        ranked = sorted(zip(priorities, candidates),
                        key=lambda pair: (pair[0], pair[1].container_id))
        freed = worker.free_mb
        chosen: List["Container"] = []
        for _, victim in ranked:
            chosen.append(victim)
            freed += victim.memory_mb
            if freed >= need_mb:
                break
        did = None
        if self.audit is not None or self.metrics is not None:
            did = self._note_replace(worker, candidates, priorities, chosen,
                                     need_mb, now, for_func)
        for victim in chosen:
            self.ctx.evict(victim, decision_id=did)
        return True

    def _note_replace(self, worker: "Worker", candidates: List["Container"],
                      priorities: List[float], chosen: List["Container"],
                      need_mb: float, now: float,
                      for_func: Optional[str]) -> Optional[int]:
        """Feed metrics/audit for one REPLACE decision (read-only).
        Returns the audit ``decision_id`` (``None`` with no audit).

        Runs *before* the victims are evicted so the Eq. 3 components are
        the values the ranking actually used (eviction updates the running
        clock). Only the base ``make_room`` flows through here; policies
        that override the whole procedure (CodeCrunch's compression,
        RainbowCake's layer decay) do their reclaiming off-audit.
        """
        if self.metrics is not None:
            self.metrics.counter(
                "repro_replace_decisions_total",
                "make_room REPLACE decisions that evicted containers").inc()
            self.metrics.counter(
                "repro_replace_victims_total",
                "Containers evicted by REPLACE decisions").inc(len(chosen))
        if self.audit is None:
            return None
        victims = []
        for victim in chosen:
            entry = {"cid": victim.container_id, "func": victim.spec.name,
                     "mem_mb": victim.memory_mb}
            entry.update(self.priority_components(victim, now))
            victims.append(entry)
        chosen_ids = {c.container_id for c in chosen}
        survivors = sorted(
            ({"cid": c.container_id, "func": c.spec.name, "priority": p}
             for p, c in zip(priorities, candidates)
             if c.container_id not in chosen_ids),
            key=lambda s: (s["priority"], s["cid"]))
        record = {
            "kind": "eviction_decision",
            "t": now,
            "wid": worker.worker_id,
            "need_mb": need_mb,
            "freed_mb": sum(v["mem_mb"] for v in victims),
            "victims": victims,
            "survivors": survivors,
        }
        if for_func is not None:
            record["for_func"] = for_func
        return self.audit.emit(record)

    # ------------------------------------------------------------------
    # Cost model

    def provision_cost_ms(self, spec: "FunctionSpec", worker: "Worker",
                          now: float) -> float:
        """Latency of provisioning a fresh container of ``spec``.

        Layer-aware policies (RainbowCake) override this to discount the
        cost when warm layers are already resident.
        """
        return spec.cold_start_ms

    # ------------------------------------------------------------------
    # Lifecycle hooks (no-ops by default)

    def on_request_arrival(self, request: "Request", worker: "Worker",
                           now: float) -> None:
        """Every arrival, before routing."""

    def on_warm_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        """Request dispatched to an idle container with zero wait."""

    def on_delayed_start(self, container: "Container", request: "Request",
                         now: float) -> None:
        """Request served by a previously busy container after queuing."""

    def on_cold_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        """Request served by a freshly provisioned container."""

    def on_provision_started(self, container: "Container",
                             now: float) -> None:
        """A cold start began (memory charged, latency running)."""

    def on_container_ready(self, container: "Container", now: float) -> None:
        """Provisioning finished; the container is warm."""

    def on_request_complete(self, container: "Container",
                            request: "Request", now: float) -> None:
        """A request finished executing."""

    def on_eviction(self, victims: List["Container"], now: float) -> None:
        """Containers were reclaimed (capacity pressure or maintenance)."""

    def on_worker_crash(self, worker: "Worker", victims: List["Container"],
                        now: float) -> None:
        """A worker crashed (fault injection), destroying ``victims`` in
        every state — busy and provisioning included, unlike a normal
        eviction. Default: account them like evictions so priority
        bookkeeping (GDSF/CIP clocks, idle-window tracking) stays
        consistent; override for crash-specific behaviour."""
        if victims:
            self.on_eviction(victims, now)

    def on_worker_restart(self, worker: "Worker", now: float) -> None:
        """A crashed worker rejoined with an empty cache."""

    # ------------------------------------------------------------------
    # Periodic maintenance

    #: When not ``None``, :meth:`on_maintenance` runs every this many ms.
    maintenance_interval_ms: Optional[float] = None

    def on_maintenance(self, now: float) -> None:
        """Periodic housekeeping (TTL expiry, pre-warming, autoscaling)."""

    def maintenance_horizon(self, now: float) -> Optional[float]:
        """Earliest future time at which :meth:`on_maintenance` could have
        any observable effect, or ``None`` when unknown.

        Consulted by the idle fast-forward
        (``SimulationConfig.fast_forward``): maintenance ticks strictly
        before the horizon may be replayed as no-ops. The default
        ``None`` disables skipping entirely — only policies that can
        *prove* their maintenance inert over a gap override this.
        ``math.inf`` means inert until further notice; the horizon is
        re-queried at every skip opportunity, so it only needs to hold
        while no other event fires.
        """
        return None

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
