"""Policy interfaces: scaling (cold vs delayed-warm) and eviction.

An :class:`OrchestrationPolicy` plugs into the simulator's control plane
(:mod:`repro.sim.orchestrator`) at two decision points:

1. **Scaling** — when a request finds no idle warm container, the policy
   chooses among:

   * ``COLD``      — provision a container bound to this request (the
     vanilla keep-alive behaviour: TTL, LRU, FaasCache, ...);
   * ``QUEUE``     — wait for a busy warm container (a delayed warm start),
     optionally committed to one specific container (the bounded-queue
     what-if of Fig. 7);
   * ``SPECULATE`` — do both simultaneously and take whichever becomes
     available first (CIDRE's speculative scaling, §3.2).

2. **Eviction** — when provisioning needs memory, :meth:`make_room` frees
   capacity. The default implementation evicts idle containers in
   ascending :meth:`priority` order (the paper's ``REPLACE`` subroutine);
   policies may override either the priority (GDSF, CIP, LRU, ...) or the
   whole procedure (CodeCrunch compresses instead of evicting).

Policies observe the container lifecycle through ``on_*`` hooks; they never
mutate simulator state directly except through the :class:`PolicyContext`
facade handed to them at bind time.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.container import Container
    from repro.sim.function import FunctionSpec
    from repro.sim.request import Request
    from repro.sim.worker import Worker


class ScalingAction(enum.Enum):
    COLD = "cold"
    QUEUE = "queue"
    SPECULATE = "speculate"


@dataclass
class ScalingDecision:
    """Outcome of :meth:`OrchestrationPolicy.scale`.

    ``target`` commits a ``QUEUE`` decision to one specific busy container
    (per-container queues, Fig. 7); when ``None`` the request joins the
    work-conserving per-function FIFO and is served by whichever container
    of the function frees up first.
    """

    action: ScalingAction
    target: Optional["Container"] = None

    @classmethod
    def cold(cls) -> "ScalingDecision":
        return cls(ScalingAction.COLD)

    @classmethod
    def queue(cls, target: Optional["Container"] = None) -> "ScalingDecision":
        return cls(ScalingAction.QUEUE, target)

    @classmethod
    def speculate(cls) -> "ScalingDecision":
        return cls(ScalingAction.SPECULATE)


class PolicyContext(Protocol):
    """The orchestrator facade available to policies.

    Only maintenance-style actions are exposed; request routing stays with
    the orchestrator.
    """

    @property
    def now(self) -> float: ...

    def evict(self, container: "Container") -> None:
        """Reclaim an evictable container immediately."""

    def compress(self, container: "Container", mem_fraction: float) -> None:
        """Shrink an idle container to ``mem_fraction`` of its footprint."""

    def prewarm(self, spec: "FunctionSpec", worker: "Worker") -> bool:
        """Provision a container ahead of demand; returns False when memory
        cannot be freed."""

    def workers(self) -> List["Worker"]: ...

    def spec_of(self, func: str) -> "FunctionSpec": ...

    def outstanding_waiters(self, func: str) -> int:
        """Unserved queued requests of ``func`` (delayed-warm-start queue)."""

    def oldest_waiter_age_ms(self, func: str) -> float:
        """Age of the oldest unserved queued request of ``func`` (0 when
        the queue is empty) — the live delayed-warm-start cost signal."""

    def provisions_in_flight(self, func: str) -> int:
        """Containers of ``func`` currently provisioning or queued for
        memory to start provisioning."""

    def speculate_for(self, func: str) -> bool:
        """Provision one unbound speculative container for ``func``."""

    def waiting_functions(self) -> List[str]:
        """Functions that currently have unserved queued requests."""


class OrchestrationPolicy:
    """Base policy: always cold-start, evict by recency (LRU-like).

    Subclasses override the pieces they change; the defaults are chosen so
    that a bare ``OrchestrationPolicy`` behaves like a sane caching-based
    keep-alive system.
    """

    #: Human-readable name used in result tables.
    name = "base"

    def __init__(self) -> None:
        self.ctx: Optional[PolicyContext] = None

    # ------------------------------------------------------------------
    # Wiring

    def bind(self, ctx: PolicyContext) -> None:
        """Called once by the orchestrator before the run starts."""
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Scaling

    def scale(self, request: "Request", worker: "Worker",
              now: float) -> ScalingDecision:
        """Choose how to serve a request with no idle container available."""
        return ScalingDecision.cold()

    # ------------------------------------------------------------------
    # Eviction

    def priority(self, container: "Container", now: float) -> float:
        """Keep-alive priority; lower values are evicted first.

        The default is pure recency (LRU): the least recently used
        container has the lowest priority.
        """
        return container.last_used_ms

    def priorities(self, containers: List["Container"],
                   now: float) -> List[float]:
        """Batch priority computation (hot path of ``make_room``).

        The default delegates to :meth:`priority`; policies whose priority
        needs per-function aggregates (CIP's ``|F(c)|``, FaasCache-C's
        ``K``) override this to precompute them once per batch.
        """
        return [self.priority(c, now) for c in containers]

    def make_room(self, worker: "Worker", need_mb: float, now: float,
                  for_func: Optional[str] = None) -> bool:
        """Free at least ``need_mb`` on ``worker``; returns success.

        Default: evict evictable containers in ascending priority order —
        the paper's ``REPLACE`` subroutine. ``for_func`` names the function
        being provisioned so policies can avoid evicting its own reusable
        containers.

        The fast path ranks victims through a min-heap keyed on
        ``(priority, container_id)`` and pops only until enough memory is
        freed, instead of fully sorting every candidate. This selects the
        exact same victims in the exact same order as the retained
        sort-based reference: the reference's ``sorted`` is stable over
        candidates listed in ascending container id, so its tie-break *is*
        ascending container id — precisely the heap's secondary key.
        """
        assert self.ctx is not None, "policy not bound"
        if worker.free_mb >= need_mb:
            return True
        if worker.naive:
            return self._make_room_reference(worker, need_mb, now)
        # O(1) infeasibility check before ranking anything: under a burst
        # most capacity is busy and reclaiming everything still would not
        # fit — skip the priority ranking entirely.
        if worker.free_mb + worker.evictable_mb() < need_mb:
            return False
        candidates = list(worker.evictable_items())
        heap = [(priority, c.container_id, c)
                for priority, c in zip(self.priorities(candidates, now),
                                       candidates)]
        heapq.heapify(heap)
        freed = worker.free_mb
        chosen: List["Container"] = []
        while freed < need_mb:
            _, _, victim = heapq.heappop(heap)
            chosen.append(victim)
            freed += victim.memory_mb
        for victim in chosen:
            self.ctx.evict(victim)
        return True

    def _make_room_reference(self, worker: "Worker", need_mb: float,
                             now: float) -> bool:
        """Pre-index REPLACE: full stable sort of every candidate."""
        candidates = worker.evictable()
        if worker.free_mb + sum(c.memory_mb for c in candidates) < need_mb:
            return False
        ranked = sorted(zip(self.priorities(candidates, now), candidates),
                        key=lambda pair: pair[0])
        freed = worker.free_mb
        chosen: List["Container"] = []
        for _, victim in ranked:
            chosen.append(victim)
            freed += victim.memory_mb
            if freed >= need_mb:
                break
        if freed < need_mb:
            return False
        for victim in chosen:
            self.ctx.evict(victim)
        return True

    # ------------------------------------------------------------------
    # Cost model

    def provision_cost_ms(self, spec: "FunctionSpec", worker: "Worker",
                          now: float) -> float:
        """Latency of provisioning a fresh container of ``spec``.

        Layer-aware policies (RainbowCake) override this to discount the
        cost when warm layers are already resident.
        """
        return spec.cold_start_ms

    # ------------------------------------------------------------------
    # Lifecycle hooks (no-ops by default)

    def on_request_arrival(self, request: "Request", worker: "Worker",
                           now: float) -> None:
        """Every arrival, before routing."""

    def on_warm_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        """Request dispatched to an idle container with zero wait."""

    def on_delayed_start(self, container: "Container", request: "Request",
                         now: float) -> None:
        """Request served by a previously busy container after queuing."""

    def on_cold_start(self, container: "Container", request: "Request",
                      now: float) -> None:
        """Request served by a freshly provisioned container."""

    def on_provision_started(self, container: "Container",
                             now: float) -> None:
        """A cold start began (memory charged, latency running)."""

    def on_container_ready(self, container: "Container", now: float) -> None:
        """Provisioning finished; the container is warm."""

    def on_request_complete(self, container: "Container",
                            request: "Request", now: float) -> None:
        """A request finished executing."""

    def on_eviction(self, victims: List["Container"], now: float) -> None:
        """Containers were reclaimed (capacity pressure or maintenance)."""

    # ------------------------------------------------------------------
    # Periodic maintenance

    #: When not ``None``, :meth:`on_maintenance` runs every this many ms.
    maintenance_interval_ms: Optional[float] = None

    def on_maintenance(self, now: float) -> None:
        """Periodic housekeeping (TTL expiry, pre-warming, autoscaling)."""

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
