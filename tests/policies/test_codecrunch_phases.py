"""Unit tests for CodeCrunch's two-phase make_room and accounting."""

import pytest

from repro.policies.codecrunch import CodeCrunchPolicy
from repro.sim.config import SimulationConfig
from repro.sim.container import Container
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import Request

GB = 1024.0


def setup(capacity_mb=1000.0, funcs=("a", "b", "c")):
    functions = [FunctionSpec(f, memory_mb=300.0, cold_start_ms=600.0)
                 for f in funcs]
    policy = CodeCrunchPolicy(compressed_fraction=0.5,
                              decompress_fraction=0.25)
    orch = Orchestrator(functions, policy,
                        SimulationConfig(capacity_gb=capacity_mb / GB))
    return policy, orch, {f.name: f for f in functions}


def idle(orch, spec):
    worker = orch.workers()[0]
    c = Container(spec, orch.now)
    worker.add(c)
    c.mark_ready(orch.now)
    return c


class TestMakeRoomPhases:
    def test_phase1_compresses_before_evicting(self):
        policy, orch, specs = setup()
        worker = orch.workers()[0]
        a = idle(orch, specs["a"])
        b = idle(orch, specs["b"])
        # 600/1000 used (400 free). Need 650 free -> compressing both
        # (frees 150 each) reaches 700 free without evicting anything.
        assert policy.make_room(worker, 650.0, 0.0)
        assert a.is_compressed and b.is_compressed
        assert len(worker.containers) == 2
        assert worker.free_mb >= 650.0

    def test_phase2_evicts_compressed(self):
        policy, orch, specs = setup(capacity_mb=700.0)
        worker = orch.workers()[0]
        a = idle(orch, specs["a"])
        b = idle(orch, specs["b"])
        # 600/700 used; need 600 free: compressing both frees 300
        # (100 + 300 = 400 free) — still short, so evict compressed ones.
        assert policy.make_room(worker, 600.0, 0.0)
        assert worker.free_mb >= 600.0
        assert len(worker.containers) < 2

    def test_for_func_containers_not_compressed(self):
        policy, orch, specs = setup()
        worker = orch.workers()[0]
        a = idle(orch, specs["a"])
        idle(orch, specs["b"])
        # Making room for "a" must not compress a's own idle container.
        assert policy.make_room(worker, 500.0, 0.0, for_func="a")
        assert not a.is_compressed or a.worker is None

    def test_infeasible_fails_cleanly(self):
        policy, orch, specs = setup(capacity_mb=400.0)
        worker = orch.workers()[0]
        a = idle(orch, specs["a"])
        req = Request("a", 0.0, 1.0)
        req.start_ms = 0.0
        a.start_request(req, 0.0)   # busy: nothing reclaimable
        assert not policy.make_room(worker, 300.0, 0.0)


class TestProvisionedAccounting:
    def test_provisioned_mb_counts_cold_starts(self):
        from repro.policies.lru import LRUPolicy
        from repro.sim.orchestrator import simulate
        spec = FunctionSpec("fn", memory_mb=200.0, cold_start_ms=100.0)
        reqs = [Request("fn", 0.0, 1_000.0),
                Request("fn", 10.0, 1_000.0)]   # two concurrent colds
        result = simulate([spec], reqs, LRUPolicy(),
                          SimulationConfig(capacity_gb=1.0))
        assert result.provisioned_mb == pytest.approx(400.0)
        assert result.cold_starts_begun == 2
