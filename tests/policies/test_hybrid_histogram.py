"""Tests for the HybridHistogram (Serverless in the Wild) extension."""

import pytest

from repro.policies.hybrid_histogram import (MINUTE_MS, HybridHistogramPolicy,
                                             _IdleHistogram)
from repro.sim.config import SimulationConfig
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator, simulate
from repro.sim.request import Request, StartType


def spec(name="fn", mem=100.0, cold=500.0):
    return FunctionSpec(name, memory_mb=mem, cold_start_ms=cold)


class TestHistogram:
    def test_observe_records_inter_arrivals(self):
        hist = _IdleHistogram(10)
        hist.observe(0.0)
        hist.observe(2 * MINUTE_MS)      # 2-minute gap
        hist.observe(2 * MINUTE_MS + 30_000.0)   # sub-minute gap
        assert hist.count == 2
        assert hist.bins[2] == 1
        assert hist.bins[0] == 1

    def test_percentiles(self):
        hist = _IdleHistogram(10)
        hist.observe(0.0)
        for gap_min in (1, 1, 1, 1, 1, 1, 1, 1, 1, 5):
            hist.observe(hist.last_arrival_ms + gap_min * MINUTE_MS)
        assert hist.percentile_minutes(50) == 1
        assert hist.percentile_minutes(99) == 5

    def test_empty_percentile_none(self):
        assert _IdleHistogram(10).percentile_minutes(99) is None

    def test_overflow_bin_marks_out_of_bounds(self):
        hist = _IdleHistogram(2)
        hist.observe(0.0)
        for _ in range(3):
            hist.observe(hist.last_arrival_ms + 100 * MINUTE_MS)
        assert hist.is_out_of_bounds()


class TestPolicy:
    def test_invalid_percentiles(self):
        with pytest.raises(ValueError):
            HybridHistogramPolicy(keep_percentile=5.0,
                                  prewarm_percentile=99.0)

    def test_fallback_ttl_without_history(self):
        policy = HybridHistogramPolicy(fallback_ttl_ms=123.0)
        assert policy.keep_alive_ms("new-fn") == 123.0
        assert policy.prewarm_at_ms("new-fn") is None

    def test_keep_alive_from_histogram(self):
        policy = HybridHistogramPolicy(min_samples=3)
        orch = Orchestrator([spec()], policy,
                            SimulationConfig(capacity_gb=1.0))
        worker = orch.workers()[0]
        t = 0.0
        for _ in range(6):
            policy.on_request_arrival(Request("fn", t, 1.0), worker, t)
            t += 2 * MINUTE_MS
        # All gaps are 2 minutes: keep-alive = (2 + 1) minutes.
        assert policy.keep_alive_ms("fn") == 3 * MINUTE_MS

    def test_releases_and_prewarms_periodic_function(self):
        """A strictly periodic function (period 4 min) should see warm
        starts after the histogram trains, with the container released
        in between (memory saved) and pre-warmed before each arrival."""
        period = 4 * MINUTE_MS
        reqs = [Request("fn", float(i) * period, 100.0)
                for i in range(1, 14)]
        policy = HybridHistogramPolicy(min_samples=5,
                                       keep_percentile=60.0,
                                       prewarm_percentile=50.0,
                                       fallback_ttl_ms=30_000.0)
        result = simulate([spec()], reqs, policy,
                          SimulationConfig(capacity_gb=1.0))
        trained = [r for r in result.requests
                   if r.arrival_ms >= 8 * period]
        warm = sum(1 for r in trained
                   if r.start_type is StartType.WARM)
        assert result.prewarm_starts > 0
        assert warm >= len(trained) - 1
        assert result.evictions > 0   # windows released between calls

    def test_concurrency_still_hurts_it(self):
        """Unlike CIDRE, the histogram policy cold-starts bursts."""
        reqs = [Request("fn", 60_000.0 + float(i), 500.0)
                for i in range(20)]   # one concurrent burst
        policy = HybridHistogramPolicy()
        result = simulate([spec()], reqs, policy,
                          SimulationConfig(capacity_gb=10.0))
        assert result.cold_start_ratio > 0.9
