"""Deeper unit tests for the IceBreaker predictor and Flame controller."""

import pytest

from repro.policies.flame import FlamePolicy
from repro.policies.icebreaker import IceBreakerPolicy, _ArrivalModel
from repro.sim.config import SimulationConfig
from repro.sim.container import Container
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator, simulate
from repro.sim.request import Request, StartType


def spec(name="fn", mem=100.0, cold=500.0):
    return FunctionSpec(name, memory_mb=mem, cold_start_ms=cold)


class TestArrivalModel:
    def test_first_observation_no_prediction(self):
        model = _ArrivalModel(alpha=0.5)
        model.observe(1_000.0)
        assert model.predicted_next_ms() is None

    def test_ewma_converges_to_period(self):
        model = _ArrivalModel(alpha=0.5)
        for i in range(20):
            model.observe(float(i) * 10_000.0)
        assert model.ewma_iat_ms == pytest.approx(10_000.0)
        assert model.predicted_next_ms() == pytest.approx(200_000.0)

    def test_ewma_weights_recent(self):
        model = _ArrivalModel(alpha=0.9)
        model.observe(0.0)
        model.observe(10_000.0)   # IAT 10 s
        model.observe(11_000.0)   # IAT 1 s (recent)
        assert model.ewma_iat_ms < 3_000.0


class TestIceBreakerPriority:
    def test_benefit_per_byte_ordering(self):
        policy = IceBreakerPolicy()
        orch = Orchestrator([spec("cheap"), spec("hot")], policy,
                            SimulationConfig(capacity_gb=2.0))
        worker = orch.workers()[0]
        cheap = Container(FunctionSpec("cheap", 1000, 100), 0.0)
        hot = Container(FunctionSpec("hot", 100, 1000), 0.0)
        for c in (cheap, hot):
            worker.add(c)
            c.mark_ready(0.0)
        policy._freq.update(cheap=1, hot=10)
        assert policy.priority(hot, 1_000.0) \
            > policy.priority(cheap, 1_000.0)

    def test_burst_not_prewarmed(self):
        """A one-off concurrent burst defeats the EWMA predictor — the
        weakness CIDRE exploits (§5.1)."""
        reqs = [Request("fn", 300_000.0 + float(i), 200.0)
                for i in range(15)]
        result = simulate([spec()], reqs, IceBreakerPolicy(),
                          SimulationConfig(capacity_gb=10.0))
        # No inter-arrival history before the burst: almost all cold.
        assert result.cold_start_ratio > 0.8
        assert result.prewarm_starts == 0


class TestFlameController:
    def test_trims_hot_function_pool_to_peak(self):
        """After a burst passes, the controller shrinks the function's
        idle pool toward its current demand."""
        reqs = [Request("fn", float(i % 10) * 5.0 + (i // 10) * 2_000.0,
                        400.0) for i in range(50)]
        reqs.append(Request("fn", 120_000.0, 50.0))   # stay above rate cut
        policy = FlamePolicy(window_ms=30_000.0, cold_rate_per_min=0.1,
                             headroom=1)
        result = simulate([spec()], reqs, policy,
                          SimulationConfig(capacity_gb=10.0))
        assert result.evictions > 0

    def test_priority_orders_by_rate_then_recency(self):
        policy = FlamePolicy(window_ms=60_000.0)
        orch = Orchestrator([spec("busy"), spec("quiet")], policy,
                            SimulationConfig(capacity_gb=1.0))
        worker = orch.workers()[0]
        busy = Container(spec("busy"), 0.0)
        quiet = Container(spec("quiet"), 0.0)
        for c in (busy, quiet):
            worker.add(c)
            c.mark_ready(0.0)
        for i in range(30):
            policy.on_request_arrival(Request("busy", float(i) * 100.0,
                                              1.0), worker,
                                      float(i) * 100.0)
        policy.on_request_arrival(Request("quiet", 0.0, 1.0), worker, 0.0)
        assert policy.priority(quiet, 3_000.0) \
            < policy.priority(busy, 3_000.0)

    def test_recency_breaks_ties_within_function(self):
        policy = FlamePolicy()
        orch = Orchestrator([spec()], policy,
                            SimulationConfig(capacity_gb=1.0))
        worker = orch.workers()[0]
        older = Container(spec(), 0.0)
        newer = Container(spec(), 0.0)
        for c in (older, newer):
            worker.add(c)
            c.mark_ready(0.0)
        older.last_used_ms = 100.0
        newer.last_used_ms = 5_000.0
        assert policy.priority(older, 10_000.0) \
            < policy.priority(newer, 10_000.0)
