"""Unit tests for the policy base class and its REPLACE machinery."""

import pytest

from repro.policies.base import (OrchestrationPolicy, ScalingAction,
                                 ScalingDecision)
from repro.sim.config import SimulationConfig
from repro.sim.container import Container
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import Request


def spec(name="fn", mem=100.0, cold=500.0):
    return FunctionSpec(name, memory_mb=mem, cold_start_ms=cold)


def bound_policy(capacity_mb=1000.0, functions=None):
    policy = OrchestrationPolicy()
    orch = Orchestrator(functions or [spec()], policy,
                        SimulationConfig(capacity_gb=capacity_mb / 1024.0))
    return policy, orch.workers()[0]


def idle_container(worker, s, now=0.0, last_used=None):
    c = Container(s, now)
    worker.add(c)
    c.mark_ready(now)
    if last_used is not None:
        c.last_used_ms = last_used
    return c


class TestScalingDecision:
    def test_constructors(self):
        assert ScalingDecision.cold().action is ScalingAction.COLD
        assert ScalingDecision.queue().action is ScalingAction.QUEUE
        assert ScalingDecision.queue().target is None
        assert ScalingDecision.speculate().action is ScalingAction.SPECULATE

    def test_queue_with_target(self):
        sentinel = object()
        decision = ScalingDecision.queue(target=sentinel)
        assert decision.target is sentinel


class TestMakeRoom:
    def test_noop_when_space_available(self):
        policy, worker = bound_policy()
        assert policy.make_room(worker, 500.0, 0.0)
        assert worker.used_mb == 0.0

    def test_evicts_lowest_priority_first(self):
        functions = [spec("a"), spec("b"), spec("c")]
        policy, worker = bound_policy(300.0, functions)
        a = idle_container(worker, functions[0], last_used=10.0)
        b = idle_container(worker, functions[1], last_used=5.0)  # LRU
        c = idle_container(worker, functions[2], last_used=20.0)
        assert policy.make_room(worker, 100.0, 30.0)
        assert b.worker is None          # evicted
        assert a.worker is worker and c.worker is worker

    def test_evicts_just_enough(self):
        functions = [spec("a"), spec("b"), spec("c")]
        policy, worker = bound_policy(300.0, functions)
        for i, s in enumerate(functions):
            idle_container(worker, s, last_used=float(i))
        assert policy.make_room(worker, 200.0, 30.0)
        assert len(worker.containers) == 1   # two evicted, one kept

    def test_fails_when_infeasible(self):
        policy, worker = bound_policy(300.0)
        busy = idle_container(worker, spec("fn", mem=300.0))
        req = Request("fn", 0.0, 100.0)
        req.start_ms = 0.0
        busy.start_request(req, 0.0)     # busy: not evictable
        assert not policy.make_room(worker, 200.0, 0.0)
        assert busy.worker is worker     # nothing evicted

    def test_partial_infeasible_keeps_everything(self):
        """If even evicting all idles cannot fit, nothing is touched."""
        functions = [spec("a", mem=100.0), spec("big", mem=900.0)]
        policy, worker = bound_policy(1000.0, functions)
        a = idle_container(worker, functions[0])
        busy = idle_container(worker, functions[1])
        req = Request("big", 0.0, 1.0)
        req.start_ms = 0.0
        busy.start_request(req, 0.0)
        # Need 200 free; only a's 100 MB is reclaimable.
        assert not policy.make_room(worker, 200.0, 0.0)
        assert a.worker is worker

    def test_default_scale_is_cold(self):
        policy, worker = bound_policy()
        decision = policy.scale(Request("fn", 0.0, 1.0), worker, 0.0)
        assert decision.action is ScalingAction.COLD

    def test_batch_priorities_default_delegates(self):
        functions = [spec("a"), spec("b")]
        policy, worker = bound_policy(1000.0, functions)
        containers = [idle_container(worker, s, last_used=float(i))
                      for i, s in enumerate(functions)]
        assert policy.priorities(containers, 0.0) \
            == [policy.priority(c, 0.0) for c in containers]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(capacity_gb=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(workers=0)
        with pytest.raises(ValueError):
            SimulationConfig(threads_per_container=0)
        with pytest.raises(ValueError):
            SimulationConfig(dispatch="random")

    def test_capacity_split(self):
        config = SimulationConfig(capacity_gb=10.0, workers=4)
        assert config.capacity_mb == 10.0 * 1024.0
        assert config.per_worker_mb == 2.5 * 1024.0
