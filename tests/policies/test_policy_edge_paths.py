"""Edge-path coverage for the prewarming/autoscaling baselines."""

import pytest

from repro.policies.ensure import EnsurePolicy
from repro.policies.hybrid_histogram import (MINUTE_MS,
                                             HybridHistogramPolicy)
from repro.policies.icebreaker import IceBreakerPolicy
from repro.sim.config import SimulationConfig
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import Request

GB = 1024.0


def spec(name="fn", mem=100.0, cold=500.0):
    return FunctionSpec(name, memory_mb=mem, cold_start_ms=cold)


class TestHybridHistogramOOB:
    def test_unpredictable_pattern_falls_back_to_ttl(self):
        policy = HybridHistogramPolicy(min_samples=2, max_minutes=3,
                                       fallback_ttl_ms=77_000.0)
        orch = Orchestrator([spec()], policy,
                            SimulationConfig(capacity_gb=1.0))
        worker = orch.workers()[0]
        # Gaps far beyond the histogram range -> overflow bin dominates.
        t = 0.0
        for _ in range(6):
            policy.on_request_arrival(Request("fn", t, 1.0), worker, t)
            t += 100 * MINUTE_MS
        assert policy.keep_alive_ms("fn") == 77_000.0
        assert policy.prewarm_at_ms("fn") is None

    def test_subminute_gaps_use_keep_alive_not_prewarm(self):
        policy = HybridHistogramPolicy(min_samples=2)
        orch = Orchestrator([spec()], policy,
                            SimulationConfig(capacity_gb=1.0))
        worker = orch.workers()[0]
        t = 0.0
        for _ in range(10):
            policy.on_request_arrival(Request("fn", t, 1.0), worker, t)
            t += 10_000.0   # 10-second gaps: bin 0
        assert policy.prewarm_at_ms("fn") is None   # nothing to sleep over
        assert policy.keep_alive_ms("fn") == 1 * MINUTE_MS


class TestEnsureBudget:
    def test_scale_up_respects_reserved_fraction(self):
        policy = EnsurePolicy(window_ms=10_000.0, burst_buffer=10,
                              max_reserved_fraction=0.5)
        orch = Orchestrator([spec(mem=200.0)], policy,
                            SimulationConfig(capacity_gb=1_000.0 / GB))
        # Demand history implying a large target pool.
        for i in range(10):
            req = Request("fn", float(i) * 1_000.0, 5_000.0)
            req.start_ms = req.arrival_ms
            req.end_ms = req.arrival_ms + 5_000.0
            policy.on_request_complete(None, req, req.end_ms)
        policy.on_maintenance(9_000.0)
        # Budget: 50% of 1000 MB = 500 MB -> at most 2 x 200 MB prewarmed.
        assert orch.metrics.prewarm_starts <= 2


class TestIceBreakerGuards:
    def test_no_prewarm_when_already_warming(self):
        policy = IceBreakerPolicy(horizon_ms=100 * MINUTE_MS)
        orch = Orchestrator([spec()], policy,
                            SimulationConfig(capacity_gb=1.0))
        worker = orch.workers()[0]
        # Train a periodic model.
        for i in range(5):
            policy.on_request_arrival(Request("fn", float(i) * 10_000.0,
                                              1.0), worker,
                                      float(i) * 10_000.0)
        policy._maybe_prewarm(worker, "fn", 41_000.0)
        first = orch.metrics.prewarm_starts
        policy._maybe_prewarm(worker, "fn", 41_500.0)
        # The in-flight provisioning container suppresses a duplicate.
        assert orch.metrics.prewarm_starts == first == 1

    def test_no_prewarm_without_model(self):
        policy = IceBreakerPolicy()
        orch = Orchestrator([spec()], policy,
                            SimulationConfig(capacity_gb=1.0))
        policy._maybe_prewarm(orch.workers()[0], "fn", 1_000.0)
        assert orch.metrics.prewarm_starts == 0
