"""Unit tests for RainbowCake's internal layer pool."""

import pytest

from repro.policies.rainbowcake import (RainbowCakePolicy, _LayerPool,
                                        _WarmLayer)
from repro.sim.config import SimulationConfig
from repro.sim.function import FunctionSpec, LayerStack
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import Request


class TestLayerPool:
    def test_take_matching_kind(self):
        pool = _LayerPool()
        lang = _WarmLayer(("lang", "python3.8"), 40.0, 100.0, 0.0)
        bare = _WarmLayer(("bare", ""), 30.0, 50.0, 0.0)
        pool.layers = [lang, bare]
        assert pool.take(("lang", "python3.8")) is lang
        assert pool.take(("lang", "python3.8")) is None   # consumed
        assert pool.total_mb() == 30.0

    def test_take_wrong_runtime(self):
        pool = _LayerPool()
        pool.layers = [_WarmLayer(("lang", "python3.8"), 40.0, 100.0, 0.0)]
        assert pool.take(("lang", "nodejs14")) is None

    def test_drop_oldest(self):
        pool = _LayerPool()
        newer = _WarmLayer(("bare", ""), 30.0, 50.0, cached_at=10.0)
        older = _WarmLayer(("bare", ""), 30.0, 50.0, cached_at=5.0)
        pool.layers = [newer, older]
        assert pool.drop_oldest() is older
        assert pool.drop_oldest() is newer
        assert pool.drop_oldest() is None

    def test_expire_by_kind(self):
        pool = _LayerPool()
        pool.layers = [
            _WarmLayer(("bare", ""), 30.0, 50.0, cached_at=0.0),
            _WarmLayer(("lang", "python3.8"), 40.0, 100.0, cached_at=0.0),
        ]
        # lang TTL 100 ms, bare TTL 1000 ms; at t=500 only lang expires.
        ttl = lambda kind: 1000.0 if kind[0] == "bare" else 100.0
        expired = pool.expire(500.0, ttl)
        assert [l.kind[0] for l in expired] == ["lang"]
        assert [l.kind[0] for l in pool.layers] == ["bare"]


class TestLayerStack:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            LayerStack(bare_cost_fraction=0.5, lang_cost_fraction=0.5,
                       user_cost_fraction=0.5)

    def test_layer_accessors(self):
        spec = FunctionSpec("f", memory_mb=200, cold_start_ms=1000)
        total_cost = sum(spec.layer_cost_ms(l)
                         for l in ("bare", "lang", "user"))
        total_mem = sum(spec.layer_mem_mb(l)
                        for l in ("bare", "lang", "user"))
        assert total_cost == pytest.approx(1000.0)
        assert total_mem == pytest.approx(200.0)


class TestPoolCap:
    def test_pool_respects_cap(self):
        """With a tiny pool cap, decayed layers are dropped, not kept."""
        spec = FunctionSpec("f", memory_mb=400, cold_start_ms=500)
        policy = RainbowCakePolicy(user_ttl_ms=1_000.0,
                                   max_pool_fraction=0.01)
        orch = Orchestrator([spec], policy,
                            SimulationConfig(capacity_gb=1.0))
        orch.run([Request("f", 0.0, 10.0), Request("f", 30_000.0, 10.0)])
        worker = orch.workers()[0]
        # Cap is 1% of 1 GB = ~10 MB < any layer of a 400 MB container.
        assert worker.reservation("rainbowcake-layers") == 0.0
