"""Unit tests for GDSF (FaasCache) priorities and variants."""

import pytest

from repro.policies.faascache import (BoundedQueueFaasCache,
                                      FaasCacheCPolicy, FaasCachePolicy)
from repro.sim.container import Container
from repro.sim.function import FunctionSpec
from repro.sim.request import Request
from repro.sim.worker import Worker


def make(policy_cls=FaasCachePolicy):
    policy = policy_cls()
    worker = Worker(0, capacity_mb=10_000)
    return policy, worker


def warm_container(worker, spec, now=0.0):
    c = Container(spec, now)
    worker.add(c)
    c.mark_ready(now)
    return c


class TestGDSFPriority:
    def test_priority_formula(self):
        policy, worker = make()
        spec = FunctionSpec("fn", memory_mb=200, cold_start_ms=600)
        c = warm_container(worker, spec)
        policy.freq["fn"] = 4
        # clock 0 + 4 * 600 / 200 = 12
        assert policy.priority(c, 0.0) == pytest.approx(12.0)

    def test_eviction_raises_global_clock(self):
        policy, worker = make()
        spec = FunctionSpec("fn", memory_mb=100, cold_start_ms=100)
        c = warm_container(worker, spec)
        policy.freq["fn"] = 5
        policy.on_eviction([c], 0.0)
        assert policy.global_clock == pytest.approx(5.0)
        # Clock never decreases.
        low = warm_container(worker, FunctionSpec("g", 100, 1))
        policy.on_eviction([low, ], 0.0)
        assert policy.global_clock >= 5.0

    def test_touch_inherits_global_clock(self):
        policy, worker = make()
        spec = FunctionSpec("fn", memory_mb=100, cold_start_ms=100)
        c = warm_container(worker, spec)
        policy.global_clock = 42.0
        policy.on_warm_start(c, Request("fn", 0.0, 1.0), 0.0)
        assert c.clock == 42.0

    def test_frequency_counts_arrivals(self):
        policy, worker = make()
        for _ in range(3):
            policy.on_request_arrival(Request("fn", 0.0, 1.0), worker, 0.0)
        assert policy.freq["fn"] == 3

    def test_cost_size_tradeoff_orders_victims(self):
        policy, worker = make()
        cheap = warm_container(worker, FunctionSpec("cheap", 1000, 100))
        pricey = warm_container(worker, FunctionSpec("pricey", 100, 1000))
        policy.freq.update(cheap=1, pricey=1)
        assert (policy.priority(cheap, 0.0)
                < policy.priority(pricey, 0.0))

    def test_batch_priorities_match_scalar(self):
        policy, worker = make()
        containers = [warm_container(worker,
                                     FunctionSpec(f"f{i}", 100 + i, 50 * i
                                                  + 1))
                      for i in range(5)]
        for i in range(5):
            policy.freq[f"f{i}"] = i + 1
        batch = policy.priorities(containers, 0.0)
        scalar = [policy.priority(c, 0.0) for c in containers]
        assert batch == pytest.approx(scalar)


class TestFaasCacheC:
    def test_k_denominator(self):
        policy, worker = make(FaasCacheCPolicy)
        spec = FunctionSpec("fn", memory_mb=100, cold_start_ms=400)
        c1 = warm_container(worker, spec)
        policy.freq["fn"] = 2
        p_single = policy.priority(c1, 0.0)
        warm_container(worker, spec)   # K becomes 2
        p_double = policy.priority(c1, 0.0)
        assert p_double == pytest.approx(p_single / 2)

    def test_batch_matches_scalar(self):
        policy, worker = make(FaasCacheCPolicy)
        spec = FunctionSpec("fn", memory_mb=100, cold_start_ms=400)
        containers = [warm_container(worker, spec) for _ in range(3)]
        policy.freq["fn"] = 7
        assert policy.priorities(containers, 0.0) == pytest.approx(
            [policy.priority(c, 0.0) for c in containers])


class TestBoundedQueue:
    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            BoundedQueueFaasCache(-1)

    def test_name_includes_length(self):
        assert BoundedQueueFaasCache(2).name == "FaasCache-L2"

    def test_scale_commits_to_least_queued(self):
        policy, worker = make(lambda: BoundedQueueFaasCache(2))
        spec = FunctionSpec("fn", memory_mb=100, cold_start_ms=400)
        c1 = warm_container(worker, spec)
        c2 = warm_container(worker, spec)
        for c in (c1, c2):
            c.start_request(Request("fn", 0.0, 100.0), 0.0)
        d1 = policy.scale(Request("fn", 1.0, 1.0), worker, 1.0)
        assert d1.target in (c1, c2)
        first_target = d1.target
        d2 = policy.scale(Request("fn", 2.0, 1.0), worker, 2.0)
        assert d2.target is not first_target  # balance across queues

    def test_scale_cold_when_full(self):
        policy, worker = make(lambda: BoundedQueueFaasCache(1))
        spec = FunctionSpec("fn", memory_mb=100, cold_start_ms=400)
        c = warm_container(worker, spec)
        c.start_request(Request("fn", 0.0, 100.0), 0.0)
        assert policy.scale(Request("fn", 1.0, 1.0), worker,
                            1.0).target is c
        decision = policy.scale(Request("fn", 2.0, 1.0), worker, 2.0)
        assert decision.target is None  # queue full -> cold
