"""Focused tests for the TTL and LRU baselines."""

import pytest

from repro.policies.lru import LRUPolicy
from repro.policies.ttl import TTLPolicy
from repro.sim.config import SimulationConfig
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import simulate
from repro.sim.request import Request, StartType

GB = 1024.0


def spec(name="fn", mem=100.0):
    return FunctionSpec(name, memory_mb=mem, cold_start_ms=500.0)


class TestTTL:
    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            TTLPolicy(ttl_ms=0.0)

    def test_expiry_is_sliding(self):
        """The lifespan restarts on each use (keep-alive semantics)."""
        reqs = [Request("fn", float(i) * 40_000.0, 10.0)
                for i in range(5)]   # used every 40 s, TTL 60 s
        result = simulate([spec()], reqs, TTLPolicy(ttl_ms=60_000.0),
                          SimulationConfig(capacity_gb=1.0))
        warm = [r for r in result.requests if r.arrival_ms > 0]
        assert all(r.start_type is StartType.WARM for r in warm)

    def test_pressure_eviction_before_expiry(self):
        """Under memory pressure TTL still reclaims (capacity-triggered),
        oldest first."""
        functions = [spec("a"), spec("b"), spec("c")]
        reqs = [Request("a", 0.0, 10.0), Request("b", 1_000.0, 10.0),
                Request("c", 2_000.0, 10.0)]   # only 2 fit
        result = simulate(functions, reqs,
                          TTLPolicy(ttl_ms=600_000.0),
                          SimulationConfig(capacity_gb=200.0 / GB))
        assert result.evictions == 1
        assert result.total == 3

    def test_no_expiry_within_ttl(self):
        reqs = [Request("fn", 0.0, 10.0), Request("fn", 5_000.0, 10.0)]
        result = simulate([spec()], reqs, TTLPolicy(ttl_ms=600_000.0),
                          SimulationConfig(capacity_gb=1.0))
        assert result.evictions == 0


class TestLRU:
    def test_never_reuses_busy(self):
        reqs = [Request("fn", 0.0, 5_000.0), Request("fn", 100.0, 10.0)]
        result = simulate([spec()], reqs, LRUPolicy(),
                          SimulationConfig(capacity_gb=1.0))
        assert result.delayed_start_ratio == 0.0
        assert result.cold_start_ratio == 1.0

    def test_recency_over_frequency(self):
        """LRU keeps the recently used container even if another function
        was historically hotter — the classic LRU-vs-LFU distinction."""
        functions = [spec("hot"), spec("recent"), spec("new")]
        reqs = [Request("hot", float(i) * 100.0, 10.0)
                for i in range(20)]          # hot: many uses, ends early
        reqs.append(Request("recent", 50_000.0, 10.0))
        reqs.append(Request("new", 51_000.0, 10.0))    # forces eviction
        reqs.append(Request("recent", 52_000.0, 10.0))  # should be warm
        result = simulate(functions, reqs, LRUPolicy(),
                          SimulationConfig(capacity_gb=200.0 / GB))
        last = max(result.requests, key=lambda r: r.arrival_ms)
        assert last.func == "recent"
        assert last.start_type is StartType.WARM
