"""Behavioural tests for the remaining baseline policies."""

import pytest

from repro.policies.codecrunch import CodeCrunchPolicy
from repro.policies.ensure import EnsurePolicy
from repro.policies.flame import FlamePolicy
from repro.policies.icebreaker import IceBreakerPolicy
from repro.policies.offline import OfflinePolicy
from repro.policies.rainbowcake import RainbowCakePolicy
from repro.sim.config import SimulationConfig
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator, simulate
from repro.sim.request import Request, StartType

GB = 1024.0


def spec(name="fn", mem=100.0, cold=500.0, runtime="python3.8"):
    return FunctionSpec(name, memory_mb=mem, cold_start_ms=cold,
                        runtime=runtime)


def config(mb=1000.0, **kw):
    return SimulationConfig(capacity_gb=mb / GB, **kw)


class TestRainbowCake:
    def test_layer_sharing_reduces_cold_cost(self):
        """After a container of one function decays via TTL, a function
        with the same runtime pays only the missing layers."""
        specs = [spec("a"), spec("b")]
        reqs = [
            Request("a", 0.0, 10.0),
            # a's container decays at its 5 s user TTL; then b cold-starts
            # and reuses a's lang+bare layers from the pool.
            Request("b", 30_000.0, 10.0),
        ]
        policy = RainbowCakePolicy(user_ttl_ms=5_000.0)
        result = simulate(specs, reqs, policy, config(mb=10_000.0))
        rb = [r for r in result.requests if r.func == "b"][0]
        assert rb.start_type is StartType.COLD
        # Full cold is 500 ms; the user layer alone is 55% = 275 ms.
        assert rb.wait_ms == pytest.approx(275.0)

    def test_no_sharing_across_runtimes(self):
        specs = [spec("a", runtime="python3.8"),
                 spec("b", runtime="nodejs14")]
        reqs = [Request("a", 0.0, 10.0), Request("b", 30_000.0, 10.0)]
        policy = RainbowCakePolicy(user_ttl_ms=5_000.0)
        result = simulate(specs, reqs, policy, config(mb=10_000.0))
        rb = [r for r in result.requests if r.func == "b"][0]
        # Only the bare layer (15%) is shared: 55% user + 30% lang = 425.
        assert rb.wait_ms == pytest.approx(425.0)

    def test_pool_memory_is_reserved(self):
        # a (python) decays into the pool; b (nodejs) consumes only the
        # bare layer, leaving a's lang layer reserved in the pool.
        specs = [spec("a"), spec("b", runtime="nodejs14")]
        reqs = [Request("a", 0.0, 10.0), Request("b", 30_000.0, 10.0)]
        policy = RainbowCakePolicy(user_ttl_ms=5_000.0)
        orchestrator = Orchestrator(specs, policy, config(mb=10_000.0))
        orchestrator.run(reqs)
        worker = orchestrator.workers()[0]
        assert worker.reservation("rainbowcake-layers") == pytest.approx(
            100.0 * 0.35)

    def test_layers_expire(self):
        specs = [spec("a"), spec("b")]
        reqs = [Request("a", 0.0, 10.0),
                Request("b", 1_000_000.0, 10.0)]  # far beyond layer TTLs
        policy = RainbowCakePolicy(user_ttl_ms=5_000.0,
                                   lang_ttl_ms=60_000.0,
                                   bare_ttl_ms=120_000.0)
        result = simulate(specs, reqs, policy, config(mb=10_000.0))
        rb = [r for r in result.requests if r.func == "b"][0]
        assert rb.wait_ms == pytest.approx(500.0)  # full cold start


class TestIceBreaker:
    def test_prewarms_periodic_function(self):
        """Regular 10 s traffic: after warm-up the predictor prewarms and
        the request sees a warm container even after its own expired."""
        reqs = [Request("fn", float(i) * 10_000.0, 100.0)
                for i in range(1, 12)]
        policy = IceBreakerPolicy(deactivate_factor=0.5)  # expire fast
        result = simulate([spec()], reqs, policy, config(mb=10_000.0))
        later = [r for r in result.requests if r.arrival_ms >= 50_000.0]
        warm = sum(1 for r in later if r.start_type is StartType.WARM)
        assert warm >= len(later) // 2
        assert result.prewarm_starts > 0

    def test_deactivates_idle_containers(self):
        reqs = [Request("fn", float(i) * 1_000.0, 50.0) for i in range(5)]
        reqs.append(Request("fn", 600_000.0, 50.0))  # long silence
        policy = IceBreakerPolicy(deactivate_factor=3.0)
        result = simulate([spec()], reqs, policy, config(mb=10_000.0))
        last = max(result.requests, key=lambda r: r.arrival_ms)
        # The pool was deactivated during the silence; prewarming may have
        # revived it just before the predicted arrival, but eviction
        # certainly happened.
        assert result.evictions > 0
        assert last.completed


class TestCodeCrunch:
    def test_compresses_then_restores(self):
        specs = [spec("a", mem=600.0), spec("b", mem=600.0)]
        reqs = [
            Request("a", 0.0, 10.0),
            Request("b", 2_000.0, 10.0),   # pressure -> a compressed
            Request("a", 4_000.0, 10.0),   # restore from compressed
        ]
        policy = CodeCrunchPolicy(compressed_fraction=0.35,
                                  decompress_fraction=0.25)
        result = simulate(specs, reqs, policy, config(mb=1_000.0))
        third = max(result.requests, key=lambda r: r.arrival_ms)
        # Restoring costs 25% of the 500 ms cold start.
        assert third.wait_ms == pytest.approx(125.0)
        assert result.restores == 1

    def test_restore_cheaper_than_cold(self):
        policy = CodeCrunchPolicy()
        s = spec()
        assert policy.restore_cost_ms(s) < s.cold_start_ms

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            CodeCrunchPolicy(compressed_fraction=1.5)
        with pytest.raises(ValueError):
            CodeCrunchPolicy(decompress_fraction=0.0)


class TestFlame:
    def test_reclaims_rarely_invoked_functions(self):
        specs = [spec("hot"), spec("cold_fn")]
        reqs = [Request("hot", float(i) * 500.0, 50.0) for i in range(60)]
        reqs.append(Request("cold_fn", 0.0, 50.0))
        policy = FlamePolicy(cold_rate_per_min=5.0)
        result = simulate(specs, reqs, policy, config(mb=10_000.0))
        assert result.evictions > 0  # the cold function's container went

    def test_rate_computation(self):
        policy = FlamePolicy(window_ms=60_000.0)
        o = Orchestrator([spec()], policy, config(mb=10_000.0))
        worker = o.workers()[0]
        for i in range(30):
            policy.on_request_arrival(Request("fn", float(i) * 1_000.0,
                                              1.0), worker,
                                      float(i) * 1_000.0)
        assert policy.rate_per_min("fn", 29_000.0) == pytest.approx(30.0)


class TestEnsure:
    def test_target_pool_follows_demand(self):
        policy = EnsurePolicy(window_ms=10_000.0, burst_buffer=1)
        Orchestrator([spec()], policy, config(mb=10_000.0))
        # 10 completions of 1 s executions in a 10 s window: Little's law
        # demand = 1 req/s * 1 s = 1 concurrent + 1 buffer.
        for i in range(10):
            req = Request("fn", float(i) * 1_000.0, 1_000.0)
            req.start_ms = req.arrival_ms
            req.end_ms = req.arrival_ms + 1_000.0
            policy.on_request_complete(None, req, req.end_ms)
        assert policy.target_pool("fn", 9_500.0) == 2

    def test_prewarms_to_target(self):
        """When recent traffic implies more warm containers than exist,
        the autoscaler pre-warms the shortfall."""
        policy = EnsurePolicy(window_ms=10_000.0, burst_buffer=2)
        orchestrator = Orchestrator([spec()], policy, config(mb=10_000.0))
        for i in range(10):
            req = Request("fn", float(i) * 1_000.0, 2_000.0)
            req.start_ms = req.arrival_ms
            req.end_ms = req.arrival_ms + 2_000.0
            policy.on_request_complete(None, req, req.end_ms)
        policy.on_maintenance(9_500.0)
        assert orchestrator.metrics.prewarm_starts \
            == policy.target_pool("fn", 9_500.0) > 0

    def test_scales_down_excess_idle(self):
        reqs = [Request("fn", float(i) * 200.0, 150.0) for i in range(100)]
        policy = EnsurePolicy()
        result = simulate([spec()], reqs, policy, config(mb=10_000.0))
        # The initial cold-start burst over-provisions; the autoscaler
        # trims the pool back to the Little's-law target.
        assert result.evictions > 0

    def test_empty_history_target_zero(self):
        policy = EnsurePolicy()
        assert policy.target_pool("ghost", 0.0) == 0


class TestOffline:
    def test_belady_evicts_furthest_future_use(self):
        specs = [spec("near"), spec("far"), spec("filler")]
        reqs = [
            Request("near", 0.0, 10.0),
            Request("far", 1_000.0, 10.0),
            Request("filler", 2_000.0, 10.0),   # forces one eviction
            Request("near", 3_000.0, 10.0),     # near reused soon
            Request("far", 60_000.0, 10.0),     # far reused late
        ]
        policy = OfflinePolicy(reqs)
        result = simulate(specs, reqs, policy, config(mb=250.0))
        near_2nd = [r for r in result.requests
                    if r.func == "near"][1]
        far_2nd = [r for r in result.requests if r.func == "far"][1]
        # Belady keeps "near" warm and sacrifices "far".
        assert near_2nd.start_type is StartType.WARM
        assert far_2nd.start_type is StartType.COLD

    def test_next_use_lookup(self):
        reqs = [Request("fn", 100.0, 1.0), Request("fn", 500.0, 1.0)]
        policy = OfflinePolicy(reqs)
        assert policy.next_use_ms("fn", 0.0) == 100.0
        assert policy.next_use_ms("fn", 100.0) == 500.0
        assert policy.next_use_ms("fn", 500.0) == float("inf")
        assert policy.next_use_ms("ghost", 0.0) == float("inf")

    def test_scaling_prefers_shorter_path(self):
        # Busy container frees at 300; cold start would take 500.
        reqs = [Request("fn", 0.0, 300.0), Request("fn", 600.0, 100.0)]
        policy = OfflinePolicy(reqs)
        result = simulate([spec()], reqs, policy, config(mb=10_000.0))
        second = max(result.requests, key=lambda r: r.arrival_ms)
        assert second.start_type is StartType.DELAYED

    def test_scaling_prefers_cold_when_busy_is_long(self):
        reqs = [Request("fn", 0.0, 10_000.0), Request("fn", 600.0, 100.0)]
        policy = OfflinePolicy(reqs)
        result = simulate([spec()], reqs, policy, config(mb=10_000.0))
        second = max(result.requests, key=lambda r: r.arrival_ms)
        assert second.start_type is StartType.COLD
