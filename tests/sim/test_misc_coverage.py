"""Miscellaneous behavioural coverage across the simulation substrate."""

import pytest

from repro.experiments.suites import (ABLATION_POLICIES, FIG12_POLICIES,
                                      policy_factories)
from repro.policies.codecrunch import CodeCrunchPolicy
from repro.sim.config import SimulationConfig
from repro.sim.container import Container
from repro.sim.eventlog import EventKind, EventLog
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator, simulate
from repro.sim.request import Request, StartType
from repro.sim.worker import Worker

GB = 1024.0


def spec(name="fn", mem=100.0, cold=500.0):
    return FunctionSpec(name, memory_mb=mem, cold_start_ms=cold)


class TestSlotAvailability:
    def test_compressed_containers_are_not_slots(self):
        worker = Worker(0, 1_000.0)
        c = Container(spec(), 0.0)
        worker.add(c)
        c.mark_ready(0.0)
        c.compress(0.5)
        assert worker.slot_available("fn") is None

    def test_provisioning_containers_are_not_slots(self):
        worker = Worker(0, 1_000.0)
        c = Container(spec(), 0.0)
        worker.add(c)
        assert worker.slot_available("fn") is None


class TestRestoreEventLogging:
    def test_restore_event_recorded(self):
        log = EventLog()
        functions = [spec("a", mem=600.0), spec("b", mem=600.0)]
        orch = Orchestrator(functions, CodeCrunchPolicy(),
                            SimulationConfig(capacity_gb=1_000.0 / GB),
                            event_log=log)
        orch.run([
            Request("a", 0.0, 10.0),
            Request("b", 2_000.0, 10.0),    # compresses a
            Request("a", 4_000.0, 10.0),    # restores a
        ])
        assert len(log.of_kind(EventKind.COMPRESSION)) >= 1
        assert len(log.of_kind(EventKind.RESTORE_START)) == 1


class TestSuitesContent:
    def test_fig12_has_eleven_policies(self):
        assert len(FIG12_POLICIES) == 11
        assert FIG12_POLICIES[-1] == "Offline"

    def test_ablation_ladder(self):
        assert ABLATION_POLICIES == ["FaasCache", "CIP_alone", "BSS_alone",
                                     "CSS_alone", "CIDRE"]

    def test_all_factories_produce_named_policies(self):
        trace_like = type("T", (), {"requests": []})()
        for name, factory in policy_factories().items():
            policy = factory(trace_like)
            assert policy.name == name or name in ("FaasCache-C",) \
                or policy.name.startswith(name)


class TestZeroDurationRequests:
    def test_zero_exec_requests_complete(self):
        reqs = [Request("fn", float(i) * 10.0, 0.0) for i in range(10)]
        result = simulate([spec()], reqs,
                          policy_factories()["CIDRE"](None),
                          SimulationConfig(capacity_gb=1.0))
        assert result.total == 10
        assert all(r.completed for r in result.requests)

    def test_simultaneous_arrivals_deterministic(self):
        reqs = [Request("fn", 100.0, 50.0) for _ in range(5)]
        a = simulate([spec()], [Request(r.func, r.arrival_ms, r.exec_ms)
                                for r in reqs],
                     policy_factories()["FaasCache"](None),
                     SimulationConfig(capacity_gb=1.0))
        b = simulate([spec()], [Request(r.func, r.arrival_ms, r.exec_ms)
                                for r in reqs],
                     policy_factories()["FaasCache"](None),
                     SimulationConfig(capacity_gb=1.0))
        assert [r.start_ms for r in a.requests] \
            == [r.start_ms for r in b.requests]


class TestWarmupPhaseSemantics:
    def test_warm_start_reuses_most_recent_container(self):
        """MRU preference: the most recently used container serves next
        (older ones age toward eviction)."""
        reqs = [
            Request("fn", 0.0, 1_000.0),     # cold -> c0
            Request("fn", 100.0, 1_000.0),   # cold -> c1 (c0 busy)
            Request("fn", 5_000.0, 10.0),    # warm on the MRU container
        ]
        result = simulate([spec()], reqs,
                          policy_factories()["LRU"](None),
                          SimulationConfig(capacity_gb=1.0))
        ordered = sorted(result.requests, key=lambda r: r.arrival_ms)
        # c1 finished last (used more recently), so it takes the request.
        assert ordered[2].container_id == ordered[1].container_id
