"""Unit tests for request records and metric aggregation."""

import numpy as np
import pytest

from repro.sim.metrics import MemorySample, MetricsCollector, SimulationResult
from repro.sim.request import Request, StartType


def done(func="fn", arrival=0.0, start=10.0, exec_ms=40.0,
         start_type=StartType.COLD):
    r = Request(func, arrival, exec_ms)
    r.start_ms = start
    r.end_ms = start + exec_ms
    r.start_type = start_type
    return r


class TestRequest:
    def test_wait_and_service(self):
        r = done(arrival=5.0, start=25.0, exec_ms=75.0)
        assert r.wait_ms == 20.0
        assert r.service_ms == 95.0
        assert r.completed

    def test_overhead_ratio(self):
        r = done(arrival=0.0, start=100.0, exec_ms=300.0)
        assert r.overhead_ratio == pytest.approx(0.25)

    def test_zero_duration_ratio(self):
        r = Request("fn", 0.0, 0.0)
        r.start_ms = 0.0
        r.end_ms = 0.0
        assert r.overhead_ratio == 0.0

    def test_unstarted_raises(self):
        r = Request("fn", 0.0, 1.0)
        with pytest.raises(ValueError):
            _ = r.wait_ms
        with pytest.raises(ValueError):
            _ = r.service_ms

    def test_negative_exec_rejected(self):
        with pytest.raises(ValueError):
            Request("fn", 0.0, -1.0)


class TestSimulationResult:
    @pytest.fixture
    def result(self):
        requests = [
            done(start_type=StartType.WARM, start=0.0, exec_ms=100.0),
            done(start_type=StartType.WARM, start=0.0, exec_ms=100.0),
            done(start_type=StartType.DELAYED, start=50.0, exec_ms=50.0),
            done(start_type=StartType.COLD, start=300.0, exec_ms=100.0),
        ]
        return SimulationResult(requests)

    def test_ratios_sum_to_one(self, result):
        assert (result.cold_start_ratio + result.warm_start_ratio
                + result.delayed_start_ratio) == pytest.approx(1.0)
        assert result.cold_start_ratio == 0.25
        assert result.warm_start_ratio == 0.5
        assert result.delayed_start_ratio == 0.25

    def test_avg_overhead_ratio(self, result):
        # ratios: 0, 0, 0.5, 0.75
        assert result.avg_overhead_ratio == pytest.approx(0.3125)

    def test_avg_wait(self, result):
        assert result.avg_wait_ms == pytest.approx((0 + 0 + 50 + 300) / 4)

    def test_percentiles_monotone(self, result):
        assert result.wait_percentile(50) <= result.wait_percentile(99)
        assert result.service_percentile(10) <= result.service_percentile(90)

    def test_empty_result(self):
        empty = SimulationResult([])
        assert empty.total == 0
        assert empty.avg_overhead_ratio == 0.0
        assert empty.cold_start_ratio == 0.0
        assert empty.avg_memory_mb == 0.0

    def test_per_function_split(self):
        reqs = [done(func="a"), done(func="b"), done(func="a")]
        split = SimulationResult(reqs).per_function()
        assert split["a"].total == 2
        assert split["b"].total == 1

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in ("cold_ratio", "warm_ratio", "delayed_ratio",
                    "avg_overhead_ratio", "avg_wait_ms", "requests"):
            assert key in summary

    def test_empty_percentiles_are_zero(self):
        # Regression: np.percentile raised IndexError on empty runs.
        empty = SimulationResult([])
        assert empty.wait_percentile(50) == 0.0
        assert empty.wait_percentile(99) == 0.0
        assert empty.service_percentile(90) == 0.0

    def test_empty_summary(self):
        summary = SimulationResult([]).summary()
        assert summary["p50_wait_ms"] == 0.0
        assert summary["p99_wait_ms"] == 0.0
        assert summary["requests"] == 0.0

    def test_collector_roundtrip(self):
        collector = MetricsCollector()
        collector.record_request(done())
        collector.record_memory(0.0, 512.0)
        collector.cold_starts_begun = 3
        collector.wasted_cold_starts = 1
        result = collector.result()
        assert result.total == 1
        assert result.avg_memory_mb == 512.0
        assert result.peak_memory_mb == 512.0
        assert result.cold_starts_begun == 3
        assert result.wasted_cold_starts == 1


class TestAvgMemory:
    @staticmethod
    def result_for(points):
        return SimulationResult(
            [], memory_samples=[MemorySample(t, v) for t, v in points])

    def test_time_weighted_not_sample_weighted(self):
        # Regression: 100 MB held for 1000 ms then dropping to 0 over a
        # final 10 ms sliver must average near 100, not the unweighted
        # sample mean of ~66.7.
        res = self.result_for([(0.0, 100.0), (1000.0, 100.0), (1010.0, 0.0)])
        expected = (100.0 * 1000.0 + 50.0 * 10.0) / 1010.0
        assert res.avg_memory_mb == pytest.approx(expected)
        assert res.avg_memory_mb > 95.0

    def test_uniform_samples_match_trapezoid(self):
        # On a uniform grid the trapezoid mean is exactly
        # np.trapezoid / span, and for a linear ramp it equals the
        # plain sample mean — the old behaviour is preserved there.
        times = [0.0, 1000.0, 2000.0, 3000.0]
        values = [10.0, 30.0, 50.0, 70.0]
        res = self.result_for(zip(times, values))
        assert res.avg_memory_mb == pytest.approx(
            float(np.trapezoid(values, times)) / 3000.0)
        assert res.avg_memory_mb == pytest.approx(float(np.mean(values)))

    def test_constant_series_is_the_constant(self):
        res = self.result_for([(t, 42.0) for t in (0.0, 5.0, 1000.0)])
        assert res.avg_memory_mb == 42.0

    def test_degenerate_inputs(self):
        assert self.result_for([(5.0, 7.0)]).avg_memory_mb == 7.0
        # All samples at one instant: fall back to the plain mean.
        same_t = self.result_for([(1.0, 4.0), (1.0, 8.0)])
        assert same_t.avg_memory_mb == pytest.approx(6.0)
        assert self.result_for([]).avg_memory_mb == 0.0
