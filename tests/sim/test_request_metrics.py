"""Unit tests for request records and metric aggregation."""

import pytest

from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.sim.request import Request, StartType


def done(func="fn", arrival=0.0, start=10.0, exec_ms=40.0,
         start_type=StartType.COLD):
    r = Request(func, arrival, exec_ms)
    r.start_ms = start
    r.end_ms = start + exec_ms
    r.start_type = start_type
    return r


class TestRequest:
    def test_wait_and_service(self):
        r = done(arrival=5.0, start=25.0, exec_ms=75.0)
        assert r.wait_ms == 20.0
        assert r.service_ms == 95.0
        assert r.completed

    def test_overhead_ratio(self):
        r = done(arrival=0.0, start=100.0, exec_ms=300.0)
        assert r.overhead_ratio == pytest.approx(0.25)

    def test_zero_duration_ratio(self):
        r = Request("fn", 0.0, 0.0)
        r.start_ms = 0.0
        r.end_ms = 0.0
        assert r.overhead_ratio == 0.0

    def test_unstarted_raises(self):
        r = Request("fn", 0.0, 1.0)
        with pytest.raises(ValueError):
            _ = r.wait_ms
        with pytest.raises(ValueError):
            _ = r.service_ms

    def test_negative_exec_rejected(self):
        with pytest.raises(ValueError):
            Request("fn", 0.0, -1.0)


class TestSimulationResult:
    @pytest.fixture
    def result(self):
        requests = [
            done(start_type=StartType.WARM, start=0.0, exec_ms=100.0),
            done(start_type=StartType.WARM, start=0.0, exec_ms=100.0),
            done(start_type=StartType.DELAYED, start=50.0, exec_ms=50.0),
            done(start_type=StartType.COLD, start=300.0, exec_ms=100.0),
        ]
        return SimulationResult(requests)

    def test_ratios_sum_to_one(self, result):
        assert (result.cold_start_ratio + result.warm_start_ratio
                + result.delayed_start_ratio) == pytest.approx(1.0)
        assert result.cold_start_ratio == 0.25
        assert result.warm_start_ratio == 0.5
        assert result.delayed_start_ratio == 0.25

    def test_avg_overhead_ratio(self, result):
        # ratios: 0, 0, 0.5, 0.75
        assert result.avg_overhead_ratio == pytest.approx(0.3125)

    def test_avg_wait(self, result):
        assert result.avg_wait_ms == pytest.approx((0 + 0 + 50 + 300) / 4)

    def test_percentiles_monotone(self, result):
        assert result.wait_percentile(50) <= result.wait_percentile(99)
        assert result.service_percentile(10) <= result.service_percentile(90)

    def test_empty_result(self):
        empty = SimulationResult([])
        assert empty.total == 0
        assert empty.avg_overhead_ratio == 0.0
        assert empty.cold_start_ratio == 0.0
        assert empty.avg_memory_mb == 0.0

    def test_per_function_split(self):
        reqs = [done(func="a"), done(func="b"), done(func="a")]
        split = SimulationResult(reqs).per_function()
        assert split["a"].total == 2
        assert split["b"].total == 1

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in ("cold_ratio", "warm_ratio", "delayed_ratio",
                    "avg_overhead_ratio", "avg_wait_ms", "requests"):
            assert key in summary

    def test_collector_roundtrip(self):
        collector = MetricsCollector()
        collector.record_request(done())
        collector.record_memory(0.0, 512.0)
        collector.cold_starts_begun = 3
        collector.wasted_cold_starts = 1
        result = collector.result()
        assert result.total == 1
        assert result.avg_memory_mb == 512.0
        assert result.peak_memory_mb == 512.0
        assert result.cold_starts_begun == 3
        assert result.wasted_cold_starts == 1
