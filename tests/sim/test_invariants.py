"""Property-based invariants of the whole simulation.

These run randomized workloads through every policy family and check the
conservation laws any correct FaaS simulator must satisfy, regardless of
policy behaviour:

* every request completes exactly once, and never before its arrival;
* execution durations are preserved (end - start == exec);
* start types partition the requests;
* a worker's committed memory never exceeds capacity;
* BSS's worst-case guarantee: no request waits (materially) longer than
  the memory-unconstrained cold start of its function.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.cidre import CIDREBSSPolicy, CIDREPolicy
from repro.policies.codecrunch import CodeCrunchPolicy
from repro.policies.faascache import FaasCachePolicy
from repro.policies.lru import LRUPolicy
from repro.policies.rainbowcake import RainbowCakePolicy
from repro.sim.config import SimulationConfig
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import Request, StartType

POLICIES = (LRUPolicy, FaasCachePolicy, CIDREBSSPolicy, CIDREPolicy,
            RainbowCakePolicy, CodeCrunchPolicy)


def workload(seed, n_functions, n_requests):
    rng = np.random.default_rng(seed)
    specs = [
        FunctionSpec(f"f{i}",
                     memory_mb=float(rng.integers(64, 512)),
                     cold_start_ms=float(rng.integers(50, 2_000)))
        for i in range(n_functions)
    ]
    requests = [
        Request(f"f{rng.integers(0, n_functions)}",
                float(rng.uniform(0, 60_000)),
                float(rng.exponential(200.0) + 1.0))
        for _ in range(n_requests)
    ]
    return specs, requests


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       policy_idx=st.integers(min_value=0, max_value=len(POLICIES) - 1),
       capacity_mb=st.sampled_from([600.0, 1_500.0, 8_000.0]))
def test_conservation_invariants(seed, policy_idx, capacity_mb):
    specs, requests = workload(seed, n_functions=6, n_requests=60)
    policy = POLICIES[policy_idx]()
    config = SimulationConfig(capacity_gb=capacity_mb / 1024.0)
    orch = Orchestrator(specs, policy, config)
    result = orch.run(requests)

    assert result.total == 60
    for req in result.requests:
        assert req.completed
        assert req.start_ms >= req.arrival_ms
        assert req.end_ms == req.start_ms + req.exec_ms
        assert req.start_type in (StartType.WARM, StartType.DELAYED,
                                  StartType.COLD)
        if req.start_type is StartType.WARM:
            assert req.wait_ms == 0.0
        else:
            assert req.wait_ms >= 0.0
    # Memory accounting: committed never exceeded capacity at any sample.
    for sample in result.memory_samples:
        assert sample.used_mb <= config.capacity_mb + 1e-6
    for worker in orch.workers():
        assert 0.0 <= worker.used_mb <= worker.capacity_mb + 1e-6


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_bss_worst_case_guarantee(seed):
    """With ample memory, BSS never waits longer than one cold start."""
    specs, requests = workload(seed, n_functions=4, n_requests=50)
    cold = {s.name: s.cold_start_ms for s in specs}
    config = SimulationConfig(capacity_gb=64.0)   # no memory pressure
    orch = Orchestrator(specs, CIDREBSSPolicy(), config)
    result = orch.run(requests)
    for req in result.requests:
        assert req.wait_ms <= cold[req.func] + 1e-6


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_determinism_same_seed_same_outcome(seed):
    specs, requests_a = workload(seed, n_functions=5, n_requests=40)
    _, requests_b = workload(seed, n_functions=5, n_requests=40)
    config = SimulationConfig(capacity_gb=1.0)
    res_a = Orchestrator(specs, CIDREPolicy(), config).run(requests_a)
    res_b = Orchestrator(specs, CIDREPolicy(), config).run(requests_b)
    for a, b in zip(sorted(res_a.requests, key=lambda r: r.req_id),
                    sorted(res_b.requests, key=lambda r: r.req_id)):
        assert (a.start_ms, a.end_ms, a.start_type) \
            == (b.start_ms, b.end_ms, b.start_type)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_warm_starts_follow_completions(seed):
    """A WARM start implies the function had a container that finished
    provisioning before the request arrived."""
    specs, requests = workload(seed, n_functions=4, n_requests=40)
    config = SimulationConfig(capacity_gb=1.0)
    result = Orchestrator(specs, FaasCachePolicy(), config).run(requests)
    first_arrival = {}
    for req in sorted(result.requests, key=lambda r: r.arrival_ms):
        if req.func not in first_arrival:
            first_arrival[req.func] = req
            # The very first request of a function can never be warm.
            assert req.start_type is not StartType.WARM


def test_blocked_provision_retried_when_provisioning_completes():
    """Regression: a cold provision blocked while every other container
    was still PROVISIONING must be retried when those containers come
    up idle (newly evictable memory), not only on exec_end/eviction.

    Falsifying example originally found by hypothesis: with CIDRE_BSS at
    600 MB, request 59 (f0, 437 MB) arrived at t=58606 while the only
    other containers on the worker were three provisioning speculative
    containers; once they became ready no further event fired and the
    blocked provision was stuck forever.
    """
    specs, requests = workload(7628, n_functions=6, n_requests=60)
    config = SimulationConfig(capacity_gb=600.0 / 1024.0)
    result = Orchestrator(specs, CIDREBSSPolicy(), config).run(requests)
    assert result.total == 60
    for req in result.requests:
        assert req.completed
