"""Property-based simulation invariants over random synthetic traces.

Seeded stdlib ``random`` drives the trace parameters (no new deps);
each sampled workload is replayed under TTL, FaasCache and CIDRE, and
conservation laws that must hold for *every* (trace, policy, config)
triple are asserted:

* every request finishes exactly once;
* warm + cold + delayed-warm starts sum to the request count;
* committed memory never exceeds ``capacity_gb``;
* time only moves forward: arrival <= start <= end for each request;
* the per-worker state indexes survive the run self-consistent
  (``Worker.check_integrity``) and the engine's O(1) liveness counters
  match a full heap scan;
* replaying with ``reference_impl=True`` (pre-index scanning/sorting
  implementations) produces a bit-identical summary.
"""

import dataclasses

import random

import numpy as np
import pytest

from repro.core.cidre import CIDREPolicy
from repro.policies.faascache import FaasCachePolicy
from repro.policies.ttl import TTLPolicy
from repro.sim.config import SimulationConfig
from repro.sim.contention import ContentionModel
from repro.sim.faults import RetryPolicy, random_plan
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import StartType
from repro.traces.synth import ArrivalModel, synth_trace

N_SAMPLES = 5
POLICIES = {
    "TTL": lambda: TTLPolicy(ttl_ms=20_000),
    "FaasCache": FaasCachePolicy,
    "CIDRE": CIDREPolicy,
}


def sample_case(rng: random.Random):
    """One random (trace, config) pair from a seeded stdlib generator."""
    trace_seed = rng.randrange(2**31)
    n_functions = rng.randint(4, 12)
    total_requests = rng.randint(300, 800)
    duration_ms = rng.uniform(60_000.0, 180_000.0)
    arrivals = ArrivalModel(
        burst_size_p=rng.uniform(0.3, 0.8),
        heavy_tail_prob=rng.uniform(0.0, 0.05),
        burst_spread_ms=rng.uniform(50.0, 400.0),
        steady_fraction=rng.uniform(0.1, 0.6),
    )
    trace = synth_trace(f"prop-{trace_seed}",
                        np.random.default_rng(trace_seed),
                        n_functions=n_functions,
                        duration_ms=duration_ms,
                        total_requests=total_requests,
                        arrivals=arrivals)
    # Keep a real chance of memory pressure: the floor is the largest
    # single function footprint (the orchestrator rejects anything less).
    floor_gb = max(f.memory_mb for f in trace.functions) / 1024.0
    capacity_gb = max(rng.uniform(1.0, 4.0), floor_gb * rng.uniform(1.0, 2.0))
    config = SimulationConfig(capacity_gb=capacity_gb,
                              seed=rng.randrange(2**31))
    return trace, config


CASES = [sample_case(random.Random(1000 + i)) for i in range(N_SAMPLES)]


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("case_idx", range(N_SAMPLES))
def test_conservation_invariants(case_idx, policy_name):
    trace, config = CASES[case_idx]
    policy = POLICIES[policy_name]()
    orchestrator = Orchestrator(trace.functions, policy, config)
    result = orchestrator.run(trace.fresh_requests())

    # Every request finishes exactly once.
    assert result.total == trace.num_requests
    assert all(r.completed for r in result.requests)
    assert sorted(r.req_id for r in result.requests) \
        == list(range(trace.num_requests))

    # Start types partition the requests.
    counted = sum(result.count(t) for t in
                  (StartType.WARM, StartType.COLD, StartType.DELAYED))
    assert counted == result.total

    # Causality per request.
    for r in result.requests:
        assert r.arrival_ms <= r.start_ms <= r.end_ms
        assert r.wait_ms >= 0.0

    # Committed memory never exceeds the configured capacity
    # (provisioning claims memory up front; REPLACE must make room
    # before a container is admitted).
    capacity_mb = config.capacity_mb
    for sample in result.memory_samples:
        assert sample.used_mb <= capacity_mb + 1e-6, (
            f"{policy_name} oversubscribed: {sample.used_mb} MB "
            f"> {capacity_mb} MB at t={sample.time_ms}")

    # Final worker state is also within budget, and the incremental
    # state indexes the run relied on are still self-consistent.
    for worker in orchestrator.workers():
        assert worker.used_mb <= config.per_worker_mb + 1e-6
        worker.check_integrity()

    # Engine liveness counters agree with a full heap scan.
    sim = orchestrator.sim
    assert sim._scan_counts() == (sim._live, sim._real)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("case_idx", range(N_SAMPLES))
def test_reference_impl_bit_identical(case_idx, policy_name):
    """Indexed and pre-index reference replays agree exactly.

    The exhaustive event-sequence comparison lives in
    ``test_differential_golden``; here every random property case gets
    the cheaper summary + per-request check under both implementations.
    """
    trace, config = CASES[case_idx]
    results = {}
    for reference in (False, True):
        cfg = dataclasses.replace(config, reference_impl=reference)
        orchestrator = Orchestrator(trace.functions,
                                    POLICIES[policy_name](), cfg)
        result = orchestrator.run(trace.fresh_requests())
        results[reference] = (
            result.summary(),
            [(r.req_id, r.start_type, r.start_ms, r.end_ms, r.wait_ms)
             for r in result.requests])
    assert results[False] == results[True]


# ======================================================================
# Chaos properties: the same laws under random fault plans


def sample_chaos_case(rng: random.Random):
    """A random (trace, config) pair with a multi-worker cluster and a
    seeded random fault plan (crashes, stragglers, heterogeneity)."""
    trace, base = sample_case(rng)
    workers = rng.randint(2, 3)
    # Every spec must fit every worker's share (crashes mean any function
    # can land anywhere), with headroom kept tight enough for pressure.
    floor_gb = max(f.memory_mb for f in trace.functions) / 1024.0
    capacity_gb = floor_gb * workers * rng.uniform(1.1, 1.6)
    plan = random_plan(rng.randrange(2**31), workers=workers,
                       horizon_ms=trace.duration_ms,
                       retry=RetryPolicy(max_retries=rng.randint(0, 3)))
    config = dataclasses.replace(base, capacity_gb=capacity_gb,
                                 workers=workers, faults=plan)
    return trace, config


CHAOS_CASES = [sample_chaos_case(random.Random(2000 + i))
               for i in range(N_SAMPLES)]


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("case_idx", range(N_SAMPLES))
def test_chaos_conservation_invariants(case_idx, policy_name):
    """Crashes reshuffle work but never lose it: every arrival ends up
    either completed or explicitly failed, exactly once."""
    trace, config = CHAOS_CASES[case_idx]
    policy = POLICIES[policy_name]()
    orchestrator = Orchestrator(trace.functions, policy, config)
    result = orchestrator.run(trace.fresh_requests())

    # Arrivals partition into completions and accounted failures.
    assert len(result.requests) + len(result.failed_requests) \
        == trace.num_requests
    assert all(r.completed and not r.failed for r in result.requests)
    assert all(r.failed and not r.completed
               for r in result.failed_requests)
    finished = sorted(r.req_id for r in result.requests)
    failed = sorted(r.req_id for r in result.failed_requests)
    assert sorted(finished + failed) == list(range(trace.num_requests))

    # Start types still partition the completions.
    counted = sum(result.count(t) for t in
                  (StartType.WARM, StartType.COLD, StartType.DELAYED))
    assert counted == result.total

    # Causality per completed request; retries stay within budget.
    budget = config.faults.retry.max_retries
    for r in result.requests:
        assert r.arrival_ms <= r.start_ms <= r.end_ms
        assert 0 <= r.retries <= budget

    # Reassignment accounting: every orphan either re-entered or failed;
    # rescued/rebound waiters may add reassignments beyond the orphans.
    assert result.reassigned_requests + len(result.failed_requests) \
        >= result.orphaned_requests

    # Memory stays within the configured envelope throughout.
    capacity_mb = config.capacity_mb
    for sample in result.memory_samples:
        assert sample.used_mb <= capacity_mb + 1e-6

    # Crash teardown left the per-worker indexes self-consistent.
    for worker in orchestrator.workers():
        assert worker.check_integrity()
    sim = orchestrator.sim
    assert sim._scan_counts() == (sim._live, sim._real)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("case_idx", range(N_SAMPLES))
def test_chaos_reference_impl_bit_identical(case_idx, policy_name):
    """Indexed and reference replays agree exactly under chaos too."""
    trace, config = CHAOS_CASES[case_idx]
    results = {}
    for reference in (False, True):
        cfg = dataclasses.replace(config, reference_impl=reference)
        orchestrator = Orchestrator(trace.functions,
                                    POLICIES[policy_name](), cfg)
        result = orchestrator.run(trace.fresh_requests())
        results[reference] = (
            result.summary(),
            [(r.req_id, r.start_type, r.start_ms, r.end_ms, r.retries)
             for r in result.requests],
            [(r.req_id, r.retries) for r in result.failed_requests])
    assert results[False] == results[True]


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("case_idx", range(N_SAMPLES))
def test_chaos_packed_replay_bit_identical(case_idx, policy_name):
    """The packed arrival stream (and the idle fast-forward) survive
    chaos: crashes defer batched arrivals, retries re-enter the heap —
    outcomes must still match the classic request-list replay exactly."""
    trace, config = CHAOS_CASES[case_idx]
    outcomes = {}
    for label, workload_packed, fast_forward in (
            ("classic", False, False),
            ("packed", True, False),
            ("packed+ff", True, True)):
        cfg = dataclasses.replace(config, fast_forward=fast_forward)
        orchestrator = Orchestrator(trace.functions,
                                    POLICIES[policy_name](), cfg)
        workload = (trace.packed() if workload_packed
                    else trace.fresh_requests())
        result = orchestrator.run(workload)
        outcomes[label] = (
            result.summary(),
            [(r.req_id, r.start_type, r.start_ms, r.end_ms, r.retries)
             for r in result.requests],
            [(r.req_id, r.retries) for r in result.failed_requests])
        sim = orchestrator.sim
        assert sim._scan_counts() == (sim._live, sim._real)
    assert outcomes["packed"] == outcomes["classic"]
    assert outcomes["packed+ff"] == outcomes["classic"]


def test_chaos_cases_exercise_faults():
    """The sampled chaos grid is not vacuous."""
    crashes = sum(c.faults.crashes != () for _, c in CHAOS_CASES)
    stragglers = sum(c.faults.stragglers != () for _, c in CHAOS_CASES)
    assert crashes == N_SAMPLES
    assert stragglers == N_SAMPLES


# ======================================================================
# Contention properties: the same laws under progress-based completions


def sample_contention_case(rng: random.Random):
    """A random (trace, config) pair with a CPU-contention model tight
    enough (few cores, few workers, multi-threaded containers) that
    executions overlap and the progress machinery actually retimes."""
    trace, base = sample_case(rng)
    workers = rng.randint(1, 2)
    floor_gb = max(f.memory_mb for f in trace.functions) / 1024.0
    capacity_gb = max(base.capacity_gb, floor_gb * workers * 1.1)
    # Few cores so the sampled bursts actually exceed the budget.
    model = ContentionModel(cores=rng.randint(1, 2),
                            alpha=rng.uniform(0.5, 2.0))
    config = dataclasses.replace(base, capacity_gb=capacity_gb,
                                 workers=workers,
                                 threads_per_container=rng.randint(1, 3),
                                 contention=model)
    return trace, config


CONTENTION_CASES = [sample_contention_case(random.Random(3000 + i))
                    for i in range(N_SAMPLES)]


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("case_idx", range(N_SAMPLES))
def test_contention_conservation_invariants(case_idx, policy_name):
    """Progress-based completions slow requests down but never lose,
    duplicate or time-travel them."""
    trace, config = CONTENTION_CASES[case_idx]
    policy = POLICIES[policy_name]()
    orchestrator = Orchestrator(trace.functions, policy, config)
    result = orchestrator.run(trace.fresh_requests())

    assert result.total == trace.num_requests
    assert all(r.completed for r in result.requests)
    assert sorted(r.req_id for r in result.requests) \
        == list(range(trace.num_requests))

    counted = sum(result.count(t) for t in
                  (StartType.WARM, StartType.COLD, StartType.DELAYED))
    assert counted == result.total

    # Causality, and contention only ever stretches executions: realized
    # wall time is never shorter than the trace's service demand.
    for r in result.requests:
        assert r.arrival_ms <= r.start_ms <= r.end_ms
        assert r.end_ms - r.start_ms >= r.exec_ms - 1e-9

    capacity_mb = config.capacity_mb
    for sample in result.memory_samples:
        assert sample.used_mb <= capacity_mb + 1e-6

    # Progress ledgers and rate-boundary events fully retired, worker
    # indexes self-consistent, liveness counters exact despite every
    # reschedule leaving a stale heap entry behind.
    assert not orchestrator._execs
    assert not orchestrator._worker_execs or \
        all(not t for t in orchestrator._worker_execs.values())
    assert not orchestrator._rate_events
    for worker in orchestrator.workers():
        assert worker.check_integrity()
    sim = orchestrator.sim
    assert sim._scan_counts() == (sim._live, sim._real)


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("case_idx", range(N_SAMPLES))
def test_contention_packed_replay_bit_identical(case_idx, policy_name):
    """Packed arrivals and the idle fast-forward replay contention runs
    exactly: rescheduled completions are real heap events, so the
    analytic skip can never jump over a retiming."""
    trace, config = CONTENTION_CASES[case_idx]
    outcomes = {}
    for label, workload_packed, fast_forward in (
            ("classic", False, False),
            ("packed", True, False),
            ("packed+ff", True, True)):
        cfg = dataclasses.replace(config, fast_forward=fast_forward)
        orchestrator = Orchestrator(trace.functions,
                                    POLICIES[policy_name](), cfg)
        workload = (trace.packed() if workload_packed
                    else trace.fresh_requests())
        result = orchestrator.run(workload)
        outcomes[label] = (
            result.summary(),
            [(r.req_id, r.start_type, r.start_ms, r.end_ms)
             for r in result.requests])
        sim = orchestrator.sim
        assert sim._scan_counts() == (sim._live, sim._real)
    assert outcomes["packed"] == outcomes["classic"]
    assert outcomes["packed+ff"] == outcomes["classic"]


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("case_idx", range(N_SAMPLES))
def test_inert_contention_bit_identical_to_none(case_idx, policy_name):
    """alpha=0 keeps every slowdown at exactly 1.0, so the progress path
    must reproduce the classic path bit for bit."""
    trace, config = CONTENTION_CASES[case_idx]
    inert = dataclasses.replace(
        config, contention=ContentionModel(
            cores=config.contention.cores, alpha=0.0))
    off = dataclasses.replace(config, contention=None)
    results = {}
    for label, cfg in (("inert", inert), ("off", off)):
        orchestrator = Orchestrator(trace.functions,
                                    POLICIES[policy_name](), cfg)
        result = orchestrator.run(trace.fresh_requests())
        results[label] = (
            result.summary(),
            [(r.req_id, r.start_type, r.start_ms, r.end_ms, r.wait_ms)
             for r in result.requests])
    assert results["inert"] == results["off"]


def test_contention_cases_exercise_slowdowns():
    """The sampled contention grid is not vacuous: under at least one
    policy every case stretches some execution past its service demand."""
    for trace, config in CONTENTION_CASES:
        orchestrator = Orchestrator(trace.functions, POLICIES["TTL"](),
                                    config)
        result = orchestrator.run(trace.fresh_requests())
        assert any(r.end_ms - r.start_ms > r.exec_ms + 1e-9
                   for r in result.requests), config.contention
