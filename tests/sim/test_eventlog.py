"""Tests for the structured event log."""

import pytest

from repro.policies.lru import LRUPolicy
from repro.sim.config import SimulationConfig
from repro.sim.eventlog import Event, EventKind, EventLog
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import Request


def run_logged(reqs, capacity_gb=1.0, functions=None):
    log = EventLog()
    functions = functions or [FunctionSpec("fn", 100.0, 500.0)]
    orch = Orchestrator(functions, LRUPolicy(),
                        SimulationConfig(capacity_gb=capacity_gb),
                        event_log=log)
    result = orch.run(reqs)
    return log, result


class TestEventLog:
    def test_lifecycle_events_recorded(self):
        log, _ = run_logged([Request("fn", 0.0, 100.0)])
        kinds = [e.kind for e in log]
        assert kinds == [EventKind.ARRIVAL, EventKind.PROVISION_START,
                         EventKind.CONTAINER_READY, EventKind.EXEC_START,
                         EventKind.EXEC_END]

    def test_warm_start_has_no_provision(self):
        log, _ = run_logged([Request("fn", 0.0, 100.0),
                             Request("fn", 1_000.0, 100.0)])
        assert len(log.of_kind(EventKind.PROVISION_START)) == 1
        starts = log.of_kind(EventKind.EXEC_START)
        assert starts[0].detail == "cold"
        assert starts[1].detail == "warm"

    def test_eviction_logged(self):
        functions = [FunctionSpec("a", 100.0, 500.0),
                     FunctionSpec("b", 100.0, 500.0)]
        log, _ = run_logged([Request("a", 0.0, 10.0),
                             Request("b", 1_000.0, 10.0)],
                            capacity_gb=100.0 / 1024.0,
                            functions=functions)
        evictions = log.of_kind(EventKind.EVICTION)
        assert len(evictions) == 1
        assert evictions[0].func == "a"

    def test_explain_request(self):
        log, result = run_logged([Request("fn", 0.0, 100.0)])
        story = log.explain_request(result.requests[0].req_id)
        kinds = [e.kind for e in story]
        assert EventKind.PROVISION_START in kinds
        assert EventKind.EXEC_START in kinds
        assert EventKind.EXEC_END in kinds

    def test_queries_by_func_and_container(self):
        log, result = run_logged([Request("fn", 0.0, 100.0)])
        assert len(log.of_func("fn")) == len(log)
        cid = result.requests[0].container_id
        assert any(e.kind is EventKind.CONTAINER_READY
                   for e in log.of_container(cid))

    def test_render_and_str(self):
        log, _ = run_logged([Request("fn", 0.0, 100.0)])
        text = log.render()
        assert "arrival" in text and "exec_start" in text
        assert str(log.events[0])

    def test_capacity_bound(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.record(float(i), EventKind.ARRIVAL, "f")
        assert len(log) <= 4 + 2
        assert log.dropped > 0

    def test_capacity_dropped_accounting(self):
        # Regression: the old purge-half implementation incremented
        # ``dropped`` by 1 while discarding capacity//2 events.
        log = EventLog(capacity=4)
        for i in range(10):
            log.record(float(i), EventKind.ARRIVAL, "f", req_id=i)
        assert len(log) == 4
        assert log.dropped == 6
        assert log.recorded == 10
        # Oldest events drop first; the newest survive in order.
        assert [e.req_id for e in log] == [6, 7, 8, 9]

    def test_capacity_zero_is_sink_only(self):
        log = EventLog(capacity=0)
        for i in range(3):
            log.record(float(i), EventKind.ARRIVAL, "f", req_id=i)
        assert len(log) == 0
        assert log.dropped == 3
        assert log.recorded == 3

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventLog(capacity=-1)

    def test_explain_request_orders_same_tick_by_lifecycle(self):
        # Regression: same-timestamp events were ordered by kind.value
        # (alphabetical), which puts eviction before exec_end. Record
        # a same-tick provision -> ready -> exec -> evict story in a
        # deliberately scrambled order and expect the causal order back.
        log = EventLog()
        t = 100.0
        log.record(t, EventKind.EVICTION, "f", container_id=1)
        log.record(t, EventKind.EXEC_END, "f", container_id=1, req_id=0)
        log.record(t, EventKind.EXEC_START, "f", container_id=1, req_id=0)
        log.record(t, EventKind.CONTAINER_READY, "f", container_id=1)
        log.record(t, EventKind.PROVISION_START, "f", container_id=1)
        log.record(t - 50.0, EventKind.ARRIVAL, "f", req_id=0)
        story = log.explain_request(0)
        assert [e.kind for e in story] == [
            EventKind.ARRIVAL, EventKind.PROVISION_START,
            EventKind.CONTAINER_READY, EventKind.EXEC_START,
            EventKind.EXEC_END, EventKind.EVICTION]

    def test_disabled_by_default(self):
        orch = Orchestrator([FunctionSpec("fn", 100.0, 500.0)],
                            LRUPolicy(),
                            SimulationConfig(capacity_gb=1.0))
        orch.run([Request("fn", 0.0, 10.0)])
        assert orch.event_log is None
