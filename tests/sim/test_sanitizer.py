"""SimSanitizer: bit-identity under guard, loud failure on mutation.

Two halves, mirroring the ISSUE contract:

* **differential** — a sanitized golden-trace run (write barrier armed,
  periodic consistency sweeps firing) produces results bit-identical to
  the unsanitized run, for CIDRE and TTL, bare and with the full
  observability stack attached;
* **detection** — a deliberately mutating sink/recorder is caught with a
  :class:`SanitizerError` naming the attribute written and the probe
  call site, while well-behaved probes (including ones that exercise
  the allowlisted lazy caches) never trip it.
"""

import pytest

from repro.experiments.runner import run_one
from repro.experiments.suites import policy_factories
from repro.obs import DecisionAudit
from repro.sim.config import SimulationConfig
from repro.sim.container import Container
from repro.sim.eventlog import EventLog
from repro.sim.orchestrator import Orchestrator
from repro.sim.sanitizer import (GUARDED_CLASSES, SanitizerError,
                                 SimSanitizer, _PATCH_STATE)
from repro.sim.telemetry import TimeSeriesRecorder
from repro.traces.azure import azure_trace

TRACE = azure_trace(seed=7, total_requests=800)
CONFIG_GB = 2.0


def _factory(name):
    return policy_factories()[name]


def _tuples(result):
    return [(r.req_id, r.start_type, r.start_ms, r.end_ms, r.wait_ms)
            for r in result.requests]


# ======================================================================
# Differential: sanitized == unsanitized, bit for bit


@pytest.mark.parametrize("policy", ["CIDRE", "TTL"])
def test_sanitized_run_bit_identical(policy):
    config = SimulationConfig(capacity_gb=CONFIG_GB)
    plain = run_one(TRACE, _factory(policy), config)
    sanitizer = SimSanitizer(check_interval=128)
    guarded = run_one(TRACE, _factory(policy), config,
                      sanitizer=sanitizer)

    assert plain.result.summary() == guarded.result.summary()
    assert _tuples(plain.result) == _tuples(guarded.result)
    # The guard actually did something — this was not a vacuous pass.
    assert sanitizer.events_seen > 0
    assert sanitizer.checks_run > 1  # periodic sweeps plus the final one


def test_sanitized_run_with_full_observability(tmp_path):
    """Sanitized + instrumented matches bare: no false positives from
    the real sinks/recorder/audit, and their outputs are unchanged."""
    config = SimulationConfig(capacity_gb=CONFIG_GB)
    bare = run_one(TRACE, _factory("CIDRE"), config)

    log = EventLog()
    recorder = TimeSeriesRecorder(interval_ms=2_000.0)
    audit = DecisionAudit()
    sanitizer = SimSanitizer(check_interval=64)
    guarded = run_one(TRACE, _factory("CIDRE"), config, event_log=log,
                      recorder=recorder, audit=audit,
                      sanitizer=sanitizer)

    assert bare.result.summary() == guarded.result.summary()
    assert _tuples(bare.result) == _tuples(guarded.result)
    assert log.recorded == sanitizer.events_seen > 0
    assert audit.recorded > 0
    assert len(recorder.cluster) > 0
    stats = sanitizer.stats()
    assert stats["checks_run"] == sanitizer.checks_run > 1


def test_uninstall_restores_classes():
    before = {cls: (cls.__setattr__, cls.__delattr__)
              for cls in GUARDED_CLASSES}
    config = SimulationConfig(capacity_gb=CONFIG_GB)
    run_one(TRACE, _factory("TTL"), config, sanitizer=SimSanitizer())
    assert _PATCH_STATE == {}
    for cls, (setter, deleter) in before.items():
        assert cls.__setattr__ is setter
        assert cls.__delattr__ is deleter


# ======================================================================
# Detection: mutating probes are caught, precisely


def _build(policy="CIDRE", **orch_kwargs):
    config = SimulationConfig(capacity_gb=CONFIG_GB)
    pol = _factory(policy)(TRACE)
    return Orchestrator(TRACE.functions, pol, config, **orch_kwargs)


def _run_guarded(orchestrator, sanitizer):
    sanitizer.install(orchestrator)
    try:
        orchestrator.run(TRACE.fresh_requests())
        sanitizer.finalize(orchestrator)
    finally:
        sanitizer.uninstall(orchestrator)


class MutatingSink:
    """Pretends to observe events but pokes a container timestamp."""

    def __init__(self, orchestrator):
        self.orchestrator = orchestrator

    def emit(self, event):
        for worker in self.orchestrator.workers():
            for container in worker.containers.values():
                container.last_used_ms = 0.0
                return


class MutatingRecorder:
    interval_ms = 1_000.0

    def note_start(self, func, start_type, now):
        pass

    def sample(self, orchestrator):
        orchestrator.sim.processed = 0

    def finish(self, orchestrator):
        pass


class ReadOnlySink:
    """Well-behaved: reads state, exercising the allowlisted lazy cache
    (``Worker.evictable_mb`` refreshes ``_evictable_mb_cache``)."""

    def __init__(self, orchestrator):
        self.orchestrator = orchestrator
        self.samples = []

    def emit(self, event):
        total_mb = 0.0
        for worker in self.orchestrator.workers():
            total_mb += worker.evictable_mb()
        self.samples.append((event.time_ms, total_mb))


def test_mutating_sink_caught_with_precise_error():
    log = EventLog()
    orchestrator = _build(event_log=log)
    log.attach(MutatingSink(orchestrator))
    sanitizer = SimSanitizer()
    with pytest.raises(SanitizerError) as excinfo:
        _run_guarded(orchestrator, sanitizer)
    message = str(excinfo.value)
    assert "MutatingSink.emit" in message       # the call site
    assert "Container.last_used_ms" in message  # the attribute
    assert "read-only" in message


def test_mutating_recorder_caught():
    orchestrator = _build(recorder=MutatingRecorder())
    with pytest.raises(SanitizerError) as excinfo:
        _run_guarded(orchestrator, SimSanitizer())
    message = str(excinfo.value)
    assert "MutatingRecorder.sample" in message
    assert "Simulator.processed" in message


def test_read_only_sink_not_flagged():
    log = EventLog()
    orchestrator = _build(event_log=log)
    sink = ReadOnlySink(orchestrator)
    log.attach(sink)
    sanitizer = SimSanitizer(check_interval=64)
    _run_guarded(orchestrator, sanitizer)  # must not raise
    assert sink.samples
    assert sanitizer.checks_run > 1


def test_mutation_outside_probe_window_allowed():
    """The barrier is scoped to probe callbacks: normal simulation-side
    writes pass through while the sanitizer is installed."""
    orchestrator = _build(event_log=EventLog())
    sanitizer = SimSanitizer()
    sanitizer.install(orchestrator)
    try:
        from repro.sim.function import FunctionSpec
        container = Container(FunctionSpec("probe-free", 64, 100.0), 0.0)
        container.last_used_ms = 42.0  # no probe active: fine
        assert container.last_used_ms == 42.0
    finally:
        sanitizer.uninstall(orchestrator)


def test_index_inconsistency_reported():
    orchestrator = _build(event_log=EventLog())
    sanitizer = SimSanitizer()
    sanitizer.install(orchestrator)
    try:
        orchestrator.run(TRACE.fresh_requests())
        # Corrupt a worker's incremental account, then sweep.
        worker = orchestrator.workers()[0]
        worker._used_mb += 123.0
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.run_checks(orchestrator)
        assert "index inconsistency" in str(excinfo.value)
    finally:
        sanitizer.uninstall(orchestrator)


def test_engine_counter_divergence_reported():
    orchestrator = _build(event_log=EventLog())
    sanitizer = SimSanitizer()
    sanitizer.install(orchestrator)
    try:
        orchestrator.run(TRACE.fresh_requests())
        orchestrator.sim._live += 1
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.run_checks(orchestrator)
        assert "counters diverged" in str(excinfo.value)
    finally:
        sanitizer.uninstall(orchestrator)


def test_double_install_rejected():
    orchestrator = _build()
    sanitizer = SimSanitizer()
    sanitizer.install(orchestrator)
    try:
        with pytest.raises(RuntimeError):
            sanitizer.install(orchestrator)
    finally:
        sanitizer.uninstall(orchestrator)
    # Idempotent uninstall.
    sanitizer.uninstall(orchestrator)


def test_check_interval_validated():
    with pytest.raises(ValueError):
        SimSanitizer(check_interval=0)
