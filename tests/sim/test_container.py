"""Unit tests for the container state machine."""

import pytest

from repro.sim.container import Container, ContainerState
from repro.sim.function import FunctionSpec
from repro.sim.request import Request


@pytest.fixture
def spec():
    return FunctionSpec("fn", memory_mb=256, cold_start_ms=500)


@pytest.fixture
def ready(spec):
    c = Container(spec, now=0.0)
    c.mark_ready(10.0)
    return c


class TestLifecycle:
    def test_starts_provisioning(self, spec):
        c = Container(spec, now=5.0)
        assert c.is_provisioning
        assert c.created_ms == 5.0
        assert c.ready_ms is None
        assert not c.is_evictable
        assert c.free_slots == 0

    def test_mark_ready(self, spec):
        c = Container(spec, now=0.0)
        c.mark_ready(500.0)
        assert c.is_idle
        assert c.ready_ms == 500.0
        assert c.is_evictable
        assert c.free_slots == 1

    def test_mark_ready_twice_rejected(self, ready):
        with pytest.raises(RuntimeError):
            ready.mark_ready(20.0)

    def test_start_and_finish_request(self, ready):
        req = Request("fn", arrival_ms=10.0, exec_ms=30.0)
        ready.start_request(req, 10.0)
        assert ready.is_busy
        assert not ready.is_evictable
        assert ready.free_slots == 0
        assert ready.reuse_count == 1
        ready.finish_request(req, 40.0)
        assert ready.is_idle
        assert ready.last_idle_ms == 40.0

    def test_no_free_slot_rejected(self, ready):
        ready.start_request(Request("fn", 0.0, 10.0), 0.0)
        with pytest.raises(RuntimeError):
            ready.start_request(Request("fn", 0.0, 10.0), 0.0)

    def test_multi_thread_slots(self, spec):
        c = Container(spec, now=0.0, threads=3)
        c.mark_ready(0.0)
        reqs = [Request("fn", 0.0, 10.0) for _ in range(3)]
        for r in reqs:
            c.start_request(r, 0.0)
        assert c.free_slots == 0
        assert c.is_busy
        c.finish_request(reqs[0], 5.0)
        assert c.free_slots == 1
        assert c.is_busy  # still two active
        c.finish_request(reqs[1], 6.0)
        c.finish_request(reqs[2], 7.0)
        assert c.is_idle

    def test_evict_busy_rejected(self, ready):
        ready.start_request(Request("fn", 0.0, 10.0), 0.0)
        with pytest.raises(RuntimeError):
            ready.mark_evicted()

    def test_evict_idle(self, ready):
        ready.mark_evicted()
        assert ready.state is ContainerState.EVICTED

    def test_unique_ids(self, spec):
        a, b = Container(spec, 0.0), Container(spec, 0.0)
        assert a.container_id != b.container_id

    def test_invalid_threads(self, spec):
        with pytest.raises(ValueError):
            Container(spec, 0.0, threads=0)


class TestCompression:
    def test_compress_shrinks_footprint(self, ready):
        ready.compress(0.4)
        assert ready.is_compressed
        assert ready.memory_mb == pytest.approx(256 * 0.4)
        assert ready.is_evictable
        assert ready.free_slots == 0

    def test_compress_requires_idle(self, ready):
        ready.start_request(Request("fn", 0.0, 10.0), 0.0)
        with pytest.raises(RuntimeError):
            ready.compress(0.4)

    def test_compress_fraction_bounds(self, ready):
        with pytest.raises(ValueError):
            ready.compress(0.0)
        with pytest.raises(ValueError):
            ready.compress(1.5)

    def test_decompress_restores(self, ready):
        ready.compress(0.4)
        ready.decompress()
        assert ready.is_idle
        assert ready.memory_mb == 256

    def test_decompress_requires_compressed(self, ready):
        with pytest.raises(RuntimeError):
            ready.decompress()

    def test_begin_restore(self, ready):
        ready.compress(0.4)
        ready.begin_restore(100.0)
        assert ready.is_provisioning
        assert ready.memory_mb == 256
        assert ready.created_ms == 100.0
        ready.mark_ready(150.0)
        assert ready.is_idle

    def test_begin_restore_requires_compressed(self, ready):
        with pytest.raises(RuntimeError):
            ready.begin_restore(0.0)


class TestSpeculativeTracking:
    def test_served_any_flips_on_use(self, spec):
        c = Container(spec, 0.0, speculative=True)
        c.mark_ready(1.0)
        assert not c.served_any
        c.start_request(Request("fn", 0.0, 10.0), 1.0)
        assert c.served_any
