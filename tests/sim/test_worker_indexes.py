"""Unit tests for the worker's incremental state indexes.

The indexed queries (``idle_of``/``busy_of``/..., the O(1) counts,
``evictable_mb``, ``slot_available``, ``state_mb``) must agree with the
``naive=True`` scanning implementations after any sequence of container
lifecycle transitions, and ``check_integrity`` must notice when they do
not. The differential golden tests cover whole replays; these cover the
index mechanics directly, transition by transition.
"""

import random

import pytest

from repro.sim.container import Container, ContainerState
from repro.sim.engine import Simulator
from repro.sim.function import FunctionSpec
from repro.sim.request import Request
from repro.sim.worker import Worker

SPECS = [FunctionSpec("f0", memory_mb=100, cold_start_ms=500),
         FunctionSpec("f1", memory_mb=150, cold_start_ms=400),
         FunctionSpec("f2", memory_mb=60, cold_start_ms=300)]


def paired_workers(capacity_mb=10_000):
    """An indexed worker and a naive twin fed identical transitions."""
    return (Worker(0, capacity_mb=capacity_mb),
            Worker(1, capacity_mb=capacity_mb, naive=True))


def assert_queries_agree(fast: Worker, naive: Worker) -> None:
    """Every public query agrees between the twins (ids aside).

    Containers are distinct objects per worker, so lists are compared on
    (function, state, memory) signatures; registration order is the same
    on both sides, which the signature comparison therefore verifies too.
    """
    def sig(containers):
        return [(c.spec.name, c.state, c.memory_mb) for c in containers]

    for spec in SPECS:
        f = spec.name
        assert sig(fast.of_func(f)) == sig(naive.of_func(f))
        assert sig(fast.idle_of(f)) == sig(naive.idle_of(f))
        assert sig(fast.busy_of(f)) == sig(naive.busy_of(f))
        assert sig(fast.provisioning_of(f)) == sig(naive.provisioning_of(f))
        assert sig(fast.compressed_of(f)) == sig(naive.compressed_of(f))
        assert fast.func_count(f) == len(naive.of_func(f))
        assert fast.idle_count(f) == len(naive.idle_of(f))
        assert fast.busy_count(f) == len(naive.busy_of(f))
        assert fast.provisioning_count(f) == len(naive.provisioning_of(f))
        assert fast.compressed_count(f) == len(naive.compressed_of(f))
        assert fast.warm_count(f) == naive.warm_count(f)
        a, b = fast.slot_available(f), naive.slot_available(f)
        assert (a is None) == (b is None)
        if a is not None:
            assert (a.spec.name, a.last_used_ms) == (b.spec.name,
                                                     b.last_used_ms)
    assert sig(fast.evictable()) == sig(naive.evictable())
    assert fast.evictable_mb() == naive.evictable_mb()
    assert fast.used_mb == naive.used_mb
    for state in ContainerState:
        assert fast.state_mb(state) == naive.state_mb(state)
    fast.check_integrity()
    naive.check_integrity()


def test_lifecycle_transitions_keep_twins_agreeing():
    """Drive both twins through every lifecycle edge, comparing at each."""
    fast, naive = paired_workers()
    pairs = []
    for i, spec in enumerate(SPECS * 2):
        pair = (Container(spec, 0.0), Container(spec, 0.0))
        for worker, c in zip((fast, naive), pair):
            worker.add(c)
        pairs.append(pair)
        assert_queries_agree(fast, naive)

    for t, pair in enumerate(pairs):
        for c in pair:
            c.mark_ready(float(t))
        assert_queries_agree(fast, naive)

    # Busy: start a request on half of them.
    for i, pair in enumerate(pairs[::2]):
        for c in pair:
            c.start_request(Request(c.spec.name, 0.0, 10.0, req_id=i), 10.0)
        assert_queries_agree(fast, naive)

    # Compress / restore / abort-restore on idle ones.
    idle_pairs = [p for p in pairs if p[0].is_idle]
    for c0, c1 in idle_pairs:
        old = c0.memory_mb
        for worker, c in zip((fast, naive), (c0, c1)):
            c.compress(0.4)
            worker.recharge(c, old)
        assert_queries_agree(fast, naive)
    # Aborted restore: footprint and state return to compressed exactly.
    # (No query checks mid-restore: memory is recharged only once room is
    # made, so the worker is transiently undercharged by design.)
    c0, c1 = idle_pairs[0]
    for c in (c0, c1):
        c.begin_restore(20.0)
        c.abort_restore(0.4)
    assert_queries_agree(fast, naive)
    # Successful restore: recharge to the full footprint, then ready.
    for worker, c in zip((fast, naive), idle_pairs[1]):
        old_mb = c.memory_mb
        c.begin_restore(21.0)
        worker.recharge(c, old_mb)
        c.mark_ready(22.0)
    assert_queries_agree(fast, naive)

    # Finish requests, then evict everything evictable.
    for pair in pairs[::2]:
        for c in pair:
            c.finish_request(c.active[0], 30.0)
        assert_queries_agree(fast, naive)
    while fast.evictable():
        fast.remove(fast.evictable()[0])
        naive.remove(naive.evictable()[0])
        assert_queries_agree(fast, naive)


def test_randomized_transition_storm():
    """A seeded random walk over the transition space stays consistent."""
    rng = random.Random(42)
    fast, naive = paired_workers(capacity_mb=2_000)
    pairs = []
    now = 0.0
    for step in range(400):
        now += rng.random() * 10.0
        roll = rng.random()
        if roll < 0.3 and len(pairs) < 12:
            spec = rng.choice(SPECS)
            pair = (Container(spec, now), Container(spec, now))
            try:
                fast.add(pair[0])
            except MemoryError:
                continue
            naive.add(pair[1])
            pairs.append(pair)
        elif pairs:
            pair = rng.choice(pairs)
            c0, c1 = pair
            if c0.is_provisioning and roll < 0.6:
                for c in pair:
                    c.mark_ready(now)
            elif c0.is_idle and roll < 0.5:
                for c in pair:
                    c.start_request(
                        Request(c.spec.name, now, 5.0, req_id=step), now)
            elif c0.is_idle and roll < 0.7:
                old = c0.memory_mb
                for worker, c in zip((fast, naive), pair):
                    c.compress(0.35)
                    worker.recharge(c, old)
            elif c0.is_busy and c0.active:
                for c in pair:
                    c.finish_request(c.active[0], now)
            elif c0.is_compressed:
                for worker, c in zip((fast, naive), pair):
                    old_mb = c.memory_mb
                    c.begin_restore(now)
                    worker.recharge(c, old_mb)
                    c.mark_ready(now + 1.0)
            elif c0.is_evictable and roll > 0.85:
                fast.remove(c0)
                naive.remove(c1)
                pairs.remove(pair)
        if step % 20 == 0:
            assert_queries_agree(fast, naive)
    assert_queries_agree(fast, naive)


def test_check_integrity_detects_corruption():
    worker, _ = paired_workers()
    c = Container(SPECS[0], 0.0)
    worker.add(c)
    c.mark_ready(0.0)
    worker.check_integrity()
    # Sabotage one index entry behind the bookkeeping's back.
    del worker._by_func["f0"].idle[c.container_id]
    with pytest.raises(AssertionError):
        worker.check_integrity()


def test_check_integrity_detects_memory_drift():
    worker, _ = paired_workers()
    c = Container(SPECS[0], 0.0)
    worker.add(c)
    c.mark_ready(0.0)
    worker._used_mb += 1.0
    with pytest.raises(AssertionError):
        worker.check_integrity()


def test_slot_available_strict_recency_tie_break():
    """Most recently used wins; exact ties go to the earlier-added one."""
    fast, naive = paired_workers()
    for worker in (fast, naive):
        for spec in (SPECS[0], SPECS[0], SPECS[0]):
            c = Container(spec, 0.0)
            worker.add(c)
            c.mark_ready(0.0)
    for worker in (fast, naive):
        a, b, c = worker.of_func("f0")
        a.last_used_ms = 5.0
        b.last_used_ms = 9.0
        c.last_used_ms = 9.0   # ties b: b (earlier id) must win
        assert worker.slot_available("f0") is b


def test_evictable_mb_tracks_membership():
    fast, naive = paired_workers()
    containers = []
    for worker_idx, worker in enumerate((fast, naive)):
        for spec in SPECS:
            c = Container(spec, 0.0)
            worker.add(c)
            c.mark_ready(0.0)
            if worker_idx == 0:
                containers.append(c)
    assert fast.evictable_mb() == naive.evictable_mb() == 310.0
    containers[0].start_request(
        Request("f0", 0.0, 5.0, req_id=0), 0.0)   # busy: not evictable
    assert fast.evictable_mb() == 210.0
    fast.remove(containers[2])
    assert fast.evictable_mb() == 150.0
    fast.check_integrity()


class TestEngineCounters:
    """O(1) liveness counters vs full-heap scans."""

    def test_counts_track_schedule_cancel_run(self):
        sim = Simulator()
        fired = []
        events = [sim.schedule(float(i), fired.append, i)
                  for i in range(10)]
        handle = sim.every(2.0, lambda: None)
        assert sim._scan_counts() == (sim._live, sim._real) == (11, 10)
        events[3].cancel()
        events[3].cancel()   # idempotent
        assert sim._scan_counts() == (sim._live, sim._real) == (10, 9)
        sim.run(until=4.0)
        assert sim._scan_counts() == (sim._live, sim._real)
        sim.run()
        assert (sim._live, sim._real) == (0, 0)
        assert sim._scan_counts() == (0, 0)
        assert fired == [0, 1, 2, 4, 5, 6, 7, 8, 9]
        handle.cancel()      # after the chain died: counters untouched
        assert (sim._live, sim._real) == (0, 0)

    def test_naive_mode_matches_counters(self):
        fast, naive = Simulator(), Simulator(naive=True)
        for sim in (fast, naive):
            events = [sim.schedule(float(i), lambda: None)
                      for i in range(6)]
            sim.every(1.5, lambda: None)
            events[2].cancel()
        assert fast.pending() == naive.pending() == 6
        assert fast._has_real_events() and naive._has_real_events()
        fast.run()
        naive.run()
        assert fast.pending() == naive.pending() == 0
        assert not fast._has_real_events()
        assert not naive._has_real_events()
        assert fast.processed == naive.processed

    def test_processed_counts_fired_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed == 5
