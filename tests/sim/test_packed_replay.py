"""Differential tests for the packed-trace replay fast path.

The batched arrival stream and the analytic idle fast-forward promise
*bit-identical* outcomes versus the classic schedule-everything-up-front
replay — same tie-breaking, same eviction order, same floats, same
event-log sequence. These tests replay the golden workload grid three
ways — classic reference (``reference_impl=True`` over
``fresh_requests()``), packed stream, and packed stream with
``fast_forward=True`` — and assert exact equality of summaries,
per-request tuples and the complete normalized event log.

Engine-level unit tests pin the stream merge rules documented in
:mod:`repro.sim.engine` (stream wins same-timestamp ties, equal rows
batch, liveness counts stream rows) and the ``advance_periodic``
contract the fast-forward is built on (seq burning, reschedule-by-reuse,
stopped/cancelled/unknown-callback edges).
"""

import numpy as np
import pytest

from repro.experiments.suites import policy_factories
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.eventlog import EventLog
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import Request
from repro.sim.sanitizer import SimSanitizer
from repro.traces.azure import azure_trace
from repro.traces.schema import Trace
from repro.traces.synth import ArrivalModel, synth_trace

POLICIES = ("TTL", "LRU", "FaasCache", "CIDRE", "CodeCrunch",
            "RainbowCake")


def _synth(seed: int, n_functions: int, total_requests: int,
           duration_ms: float, **arrivals):
    return synth_trace(f"golden-{seed}", np.random.default_rng(seed),
                       n_functions=n_functions,
                       total_requests=total_requests,
                       duration_ms=duration_ms,
                       arrivals=ArrivalModel(**arrivals))


def _cases():
    # Same golden grid as test_differential_golden (same seeds, same
    # pressure regimes) so the packed path is proven on exactly the
    # workloads the index work is proven on.
    yield "synth-bursty", _synth(101, 8, 900, 120_000.0,
                                 burst_size_p=0.4), 2.0
    yield "synth-steady", _synth(202, 12, 1_200, 180_000.0,
                                 steady_fraction=0.7), 2.0
    yield "synth-tail", _synth(303, 6, 700, 90_000.0,
                               heavy_tail_prob=0.05,
                               burst_spread_ms=300.0), 1.0
    yield "azure-sample", azure_trace(seed=5, total_requests=4_000), 2.0


CASES = {name: (trace, gb) for name, trace, gb in _cases()}


def _replay(trace, policy_name, capacity_gb, *, reference=False,
            fast_forward=False, packed=False, sanitizer=None,
            faults=None, contention=None):
    config = SimulationConfig(capacity_gb=capacity_gb,
                              reference_impl=reference,
                              fast_forward=fast_forward,
                              faults=faults, contention=contention)
    log = EventLog()
    policy = policy_factories()[policy_name](trace)
    orchestrator = Orchestrator(trace.functions, policy, config,
                                event_log=log)
    workload = trace.packed() if packed else trace.fresh_requests()
    if sanitizer is not None:
        sanitizer.install(orchestrator)
        try:
            result = orchestrator.run(workload)
            sanitizer.finalize(orchestrator)
        finally:
            sanitizer.uninstall(orchestrator)
    else:
        result = orchestrator.run(workload)
    return orchestrator, result, log


def _request_tuples(result):
    return [(r.req_id, r.start_type, r.start_ms, r.end_ms, r.wait_ms)
            for r in result.requests]


def _normalized_events(log):
    """Event tuples with container ids rebased to the run's first id."""
    base = None
    out = []
    for e in log:
        cid = None
        if e.container_id is not None:
            if base is None:
                base = e.container_id
            cid = e.container_id - base
        out.append((e.time_ms, e.kind.value, e.func, cid, e.req_id,
                    e.detail, e.worker_id))
    return out


# ======================================================================
# Golden differential: reference vs packed stream vs packed + ff


@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("case", sorted(CASES))
def test_packed_and_fast_forward_match_reference(case, policy_name):
    trace, capacity_gb = CASES[case]
    _, ref, ref_log = _replay(trace, policy_name, capacity_gb,
                              reference=True)
    ref_events = _normalized_events(ref_log)
    ref_tuples = _request_tuples(ref)
    ref_summary = ref.summary()

    for label, kwargs in (("packed", dict(packed=True)),
                          ("packed+ff", dict(packed=True,
                                             fast_forward=True))):
        orch, got, got_log = _replay(trace, policy_name, capacity_gb,
                                     **kwargs)
        assert got.summary() == ref_summary, f"{case}/{policy_name} {label}"
        assert _request_tuples(got) == ref_tuples, (
            f"{case}/{policy_name} {label}")
        got_events = _normalized_events(got_log)
        for i, (a, b) in enumerate(zip(got_events, ref_events)):
            assert a == b, (f"{case}/{policy_name} {label}: event {i} "
                            f"diverged:\n  {label}:    {a}\n"
                            f"  reference: {b}")
        assert len(got_events) == len(ref_events)
        # The streamed run must leave the engine counters consistent
        # (the stream is accounted outside the heap).
        assert orch.sim._scan_counts() == (orch.sim._live, orch.sim._real)
        assert orch.sim._stream_remaining() == 0


def test_fast_forward_disabled_with_recorder():
    """A time-series recorder samples idle gaps, so ff must stand down."""
    from repro.sim.telemetry import TimeSeriesRecorder
    trace, capacity_gb = CASES["synth-bursty"]
    config = SimulationConfig(capacity_gb=capacity_gb, fast_forward=True)
    policy = policy_factories()["TTL"](trace)
    orch = Orchestrator(trace.functions, policy, config,
                        recorder=TimeSeriesRecorder())
    orch.run(trace.packed())
    assert orch.sim.fast_forward_hook is None


def test_fast_forward_armed_without_recorder():
    trace, capacity_gb = CASES["synth-bursty"]
    config = SimulationConfig(capacity_gb=capacity_gb, fast_forward=True)
    policy = policy_factories()["TTL"](trace)
    orch = Orchestrator(trace.functions, policy, config)
    orch.run(trace.packed())
    assert orch.sim.fast_forward_hook is not None


def test_reference_impl_ignores_packed_stream():
    """Under reference_impl a packed workload replays via the classic
    all-events-up-front schedule (materialize_all), not the stream."""
    trace, capacity_gb = CASES["synth-tail"]
    orch, ref, _ = _replay(trace, "CIDRE", capacity_gb, reference=True,
                           packed=True)
    assert orch.sim._stream_len == 0
    _, classic, _ = _replay(trace, "CIDRE", capacity_gb, reference=True)
    assert ref.summary() == classic.summary()


# ======================================================================
# Tie-heavy batching under the sanitizer


def _tie_heavy_trace():
    """Integer-ms arrivals, five requests per timestamp: every dispatch
    is a batch, and arrival ties against completions are common."""
    functions = [FunctionSpec(f"fn-{i}", memory_mb=128.0,
                              cold_start_ms=250.0) for i in range(4)]
    requests = [Request(functions[i % 4].name,
                        arrival_ms=float(100 * (i // 5)),
                        exec_ms=float(40 + 13 * (i % 7)))
                for i in range(400)]
    return Trace("tie-heavy", functions, requests)


@pytest.mark.parametrize("fast_forward", (False, True))
def test_batched_dispatch_under_sanitizer(fast_forward):
    trace = _tie_heavy_trace()
    _, ref, ref_log = _replay(trace, "CIDRE", 0.5, reference=True)
    sanitizer = SimSanitizer(check_interval=64)
    _, got, got_log = _replay(trace, "CIDRE", 0.5, packed=True,
                              fast_forward=fast_forward,
                              sanitizer=sanitizer)
    assert got.summary() == ref.summary()
    assert _request_tuples(got) == _request_tuples(ref)
    assert _normalized_events(got_log) == _normalized_events(ref_log)
    assert sanitizer.checks_run > 0


# ======================================================================
# Engine stream + advance_periodic unit tests


class TestBindStream:
    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Simulator().bind_stream([5.0, 3.0], lambda lo, hi: None)

    def test_rejects_start_in_the_past(self):
        sim = Simulator(start_time=100.0)
        with pytest.raises(ValueError, match="past"):
            sim.bind_stream([50.0], lambda lo, hi: None)

    def test_rejects_bind_while_running(self):
        sim = Simulator()

        def rebind():
            sim.bind_stream([20.0], lambda lo, hi: None)

        sim.schedule(1.0, rebind)
        with pytest.raises(RuntimeError, match="while running"):
            sim.run()

    def test_start_offset_skips_validated_prefix(self):
        sim = Simulator()
        seen = []
        sim.bind_stream([1.0, 2.0, 3.0],
                        lambda lo, hi: seen.append((lo, hi)), start=2)
        sim.run()
        assert seen == [(2, 3)]


class TestStreamMerge:
    def test_stream_wins_same_timestamp_tie(self):
        sim = Simulator()
        order = []
        sim.bind_stream([10.0], lambda lo, hi: order.append("arrival"))
        sim.at(10.0, lambda: order.append("heap"))
        sim.run()
        assert order == ["arrival", "heap"]

    def test_equal_rows_dispatch_as_one_batch(self):
        sim = Simulator()
        batches = []
        sim.bind_stream([5.0, 5.0, 5.0, 8.0, 8.0],
                        lambda lo, hi: batches.append((lo, hi, sim.now)))
        sim.run()
        assert batches == [(0, 3, 5.0), (3, 5, 8.0)]
        assert sim.processed == 5

    def test_pending_counts_stream_rows(self):
        for naive in (False, True):
            sim = Simulator(naive=naive)
            sim.bind_stream([1.0, 2.0, 3.0], lambda lo, hi: None)
            sim.at(5.0, lambda: None)
            assert sim.pending() == 4
            assert sim._has_real_events()

    def test_periodic_keeps_ticking_while_stream_rows_remain(self):
        sim = Simulator()
        ticks = []
        arrivals = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.bind_stream([35.0], lambda lo, hi: arrivals.append(sim.now))
        sim.run()
        # Ticks at 10/20/30 precede the arrival; the tick at 40 fires
        # after it (one trailing no-op pop ends the chain).
        assert arrivals == [35.0]
        assert ticks == [10.0, 20.0, 30.0]

    def test_run_until_stops_before_stream_row(self):
        sim = Simulator()
        seen = []
        sim.bind_stream([10.0, 50.0], lambda lo, hi: seen.append(lo))
        sim.run(until=20.0)
        assert seen == [0]
        assert sim.now == 20.0
        assert sim._stream_remaining() == 1
        sim.run()
        assert seen == [0, 1]


class TestAdvancePeriodic:
    def test_advances_ticks_and_reschedules(self):
        sim = Simulator()
        handle = sim.every(10.0, lambda: None)
        advanced = sim.advance_periodic(35.0, {handle: None})
        assert advanced == 3
        assert sim.now == 30.0
        assert sim.processed == 3
        assert handle.event.time == 40.0
        # Counters unchanged: each tick was one pop + one push.
        assert sim._scan_counts() == (sim._live, sim._real)

    def test_burns_one_seq_per_tick(self):
        """Identical setups, one run classic and one fast-forwarded,
        end on the same sequence counter (each analytic tick burns
        exactly one seq, like its fired counterpart)."""
        classic = Simulator()
        classic.every(10.0, lambda: None)
        classic.at(35.0, lambda: None)
        classic.run()
        ff = Simulator()
        handle = ff.every(10.0, lambda: None)
        ff.at(35.0, lambda: None)
        assert ff.advance_periodic(35.0, {handle: None}) == 3
        ff.run()
        assert ff.now == classic.now
        assert ff.processed == classic.processed
        assert next(ff._seq) == next(classic._seq)

    def test_replay_callable_invoked_per_tick(self):
        sim = Simulator()
        handle = sim.every(10.0, lambda: None)
        fired = []
        sim.advance_periodic(25.0, {handle: lambda: fired.append(sim.now)})
        assert fired == [10.0, 20.0]

    def test_tick_exactly_at_boundary_left_alone(self):
        sim = Simulator()
        handle = sim.every(10.0, lambda: None)
        assert sim.advance_periodic(10.0, {handle: None}) == 0
        assert sim.now == 0.0

    def test_unknown_callback_aborts_skip(self):
        sim = Simulator()
        handle = sim.every(10.0, lambda: None)
        sim.at(15.0, lambda: None)
        assert sim.advance_periodic(40.0, {handle: None}) == 1
        assert sim.now == 10.0  # stopped at the non-periodic event

    def test_cancelled_entries_popped_and_skipped(self):
        sim = Simulator()
        doomed = sim.at(5.0, lambda: None)
        doomed.cancel()
        handle = sim.every(10.0, lambda: None)
        assert sim.advance_periodic(25.0, {handle: None}) == 2
        assert sim._scan_counts() == (sim._live, sim._real)

    def test_stopped_handle_pops_without_reschedule(self):
        sim = Simulator()
        handle = sim.every(10.0, lambda: None)
        handle.stopped = True  # stopped but tick left uncancelled
        assert sim.advance_periodic(25.0, {handle: None}) == 1
        assert sim.pending() == 0
        assert sim._scan_counts() == (sim._live, sim._real)


# ======================================================================
# Fault layer x fast-forward soundness
#
# Every fault mechanism leaves *real* (non-periodic) heap events behind
# — running executions, provision readies, pending restarts, armed
# straggler-window boundaries — so the engine's `_real == 0` gate never
# offers the hook a gap the fault layer still owns, and the orchestrator
# additionally refuses while blocked provisions wait. These
# differentials prove it end to end: chaos replay under fast-forward is
# bit-identical to the classic reference replay.


@pytest.mark.parametrize("policy_name", ("TTL", "CIDRE"))
@pytest.mark.parametrize("chaos_seed", (7, 23))
def test_faults_fast_forward_matches_reference(policy_name, chaos_seed):
    from repro.sim.faults import random_plan
    trace, capacity_gb = CASES["synth-tail"]
    plan = random_plan(chaos_seed, workers=1,
                       horizon_ms=trace.duration_ms)
    _, ref, ref_log = _replay(trace, policy_name, capacity_gb,
                              reference=True, faults=plan)
    ref_events = _normalized_events(ref_log)
    kinds = {e[1] for e in ref_events}
    assert "worker_crash" in kinds  # the scenario is non-vacuous

    for label, kwargs in (("packed", dict(packed=True)),
                          ("packed+ff", dict(packed=True,
                                             fast_forward=True))):
        _, res, log = _replay(trace, policy_name, capacity_gb,
                              faults=plan, **kwargs)
        assert _normalized_events(log) == ref_events, label
        assert _request_tuples(res) == _request_tuples(ref), label
        assert res.summary() == ref.summary(), label


@pytest.mark.parametrize("policy_name", ("TTL", "FaasCache"))
def test_contention_fast_forward_matches_reference(policy_name):
    from repro.sim.contention import ContentionModel
    trace, _ = CASES["synth-bursty"]
    model = ContentionModel(cores=1, alpha=1.0)
    _, ref, ref_log = _replay(trace, policy_name, 1.0,
                              reference=True, contention=model)
    ref_events = _normalized_events(ref_log)
    assert any(e[5].startswith("slowdown=") for e in ref_events
               if e[1] == "exec_end")  # contention actually bit

    for label, kwargs in (("packed", dict(packed=True)),
                          ("packed+ff", dict(packed=True,
                                             fast_forward=True)),
                          ("classic", {})):
        _, res, log = _replay(trace, policy_name, 1.0,
                              contention=model, **kwargs)
        assert _normalized_events(log) == ref_events, label
        assert _request_tuples(res) == _request_tuples(ref), label
        assert res.summary() == ref.summary(), label


# ======================================================================
# Engine: reschedule (the progress model's primitive)


class TestReschedule:
    def test_moves_event_and_skips_stale_entry(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10.0, fired.append, "a")
        sim.schedule(15.0, fired.append, "b")
        sim.reschedule(event, 20.0)
        sim.run()
        assert fired == ["b", "a"]
        assert sim.now == 20.0

    def test_reschedule_earlier(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(30.0, fired.append, "late")
        sim.schedule(15.0, fired.append, "mid")
        sim.reschedule(event, 5.0)
        sim.run()
        assert fired == ["late", "mid"]

    def test_counters_stay_consistent(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        for t in (30.0, 7.0, 40.0):
            sim.reschedule(event, t)
            assert sim.pending() == 1
            assert sim._scan_counts() == (sim._live, sim._real)
        sim.run()
        assert sim.pending() == 0
        assert sim._scan_counts() == (0, 0)

    def test_cancel_after_reschedule(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10.0, fired.append, "x")
        sim.reschedule(event, 20.0)
        event.cancel()
        sim.schedule(1.0, fired.append, "y")
        sim.run()
        assert fired == ["y"]
        assert sim._scan_counts() == (0, 0)

    def test_rejects_cancelled_past_and_foreign_events(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.reschedule(event, 1.0)     # before now
        event.cancel()
        with pytest.raises(ValueError):
            sim.reschedule(event, 20.0)    # cancelled
        other = Simulator()
        foreign = other.schedule(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.reschedule(foreign, 20.0)  # queued elsewhere

    def test_rejects_fired_events(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.reschedule(event, 5.0)

    def test_advance_periodic_skips_stale_entries(self):
        """A stale completion entry lingering in an idle gap must not
        abort the analytic skip (its event now lives later)."""
        sim = Simulator()
        event = sim.schedule(5.0, lambda: None)
        sim.reschedule(event, 100.0)   # stale entry remains at t=5
        handle = sim.every(10.0, lambda: None)
        assert sim.advance_periodic(45.0, {handle: None}) == 4
        assert sim.now == 40.0
        assert sim._scan_counts() == (sim._live, sim._real)
