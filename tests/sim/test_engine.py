"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "late")
        sim.schedule(5.0, fired.append, "early")
        sim.schedule(7.5, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for label in ("a", "b", "c"):
            sim.schedule(5.0, fired.append, label)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42.0]
        assert sim.now == 42.0

    def test_absolute_scheduling(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.at(150.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [150.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.at(5.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_zero_delay_event_fires_at_now(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: (order.append("outer"),
                                   sim.schedule(0.0, order.append,
                                                "inner")))
        sim.schedule(1.0, order.append, "peer")
        sim.run()
        # The zero-delay event fires after already-queued same-time peers.
        assert order == ["outer", "peer", "inner"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(5.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(5.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()  # should not raise

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(5.0, lambda: None)
        drop = sim.schedule(6.0, lambda: None)
        drop.cancel()
        assert sim.pending() == 1
        assert keep is not drop


class TestRunUntil:
    def test_run_until_stops_and_resumes(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "a")
        sim.schedule(15.0, fired.append, "b")
        sim.run(until=10.0)
        assert fired == ["a"]
        assert sim.now == 10.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_empty_is_noop(self):
        sim = Simulator()
        sim.run()
        assert sim.now == 0.0


class TestPeriodic:
    def test_periodic_fires_while_real_events_remain(self):
        sim = Simulator()
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.schedule(35.0, lambda: None)  # keeps the sim alive to t=35
        sim.run()
        assert ticks == [10.0, 20.0, 30.0]

    def test_periodic_stops_without_real_events(self):
        sim = Simulator()
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run()
        assert ticks == []  # nothing real to observe: never runs

    def test_periodic_start_delay(self):
        sim = Simulator()
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now), start_delay=0.0)
        sim.schedule(25.0, lambda: None)
        sim.run()
        assert ticks == [0.0, 10.0, 20.0]

    def test_periodic_cancel_stops_chain(self):
        sim = Simulator()
        ticks = []
        handle = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.schedule(15.0, handle.cancel)
        sim.schedule(50.0, lambda: None)
        sim.run()
        assert ticks == [10.0]

    def test_invalid_interval(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.every(0.0, lambda: None)


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_any_delay_set_fires_sorted(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, fired.append, d)
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
