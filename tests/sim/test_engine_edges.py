"""Engine edge cases beyond the basic scheduling tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator


class TestRunUntilBoundaries:
    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "x")
        sim.run(until=10.0)
        assert fired == ["x"]

    def test_clock_lands_on_until_when_nothing_fires(self):
        sim = Simulator()
        sim.schedule(50.0, lambda: None)
        sim.run(until=20.0)
        assert sim.now == 20.0
        sim.run()
        assert sim.now == 50.0

    def test_multiple_resume_rounds(self):
        sim = Simulator()
        fired = []
        for t in (5.0, 15.0, 25.0):
            sim.schedule(t, fired.append, t)
        sim.run(until=10.0)
        sim.run(until=20.0)
        sim.run()
        assert fired == [5.0, 15.0, 25.0]


class TestCallbackErrors:
    def test_exception_propagates_and_stops(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("boom")

        fired = []
        sim.schedule(1.0, boom)
        sim.schedule(2.0, fired.append, "later")
        with pytest.raises(RuntimeError):
            sim.run()
        # The failing event consumed the clock; the later one remains.
        assert fired == []
        assert sim.pending() == 1


class TestCancellationDuringRun:
    def test_event_cancelled_by_earlier_event(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(10.0, fired.append, "no")
        sim.schedule(5.0, later.cancel)
        sim.run()
        assert fired == []

    def test_periodic_cancelled_by_event(self):
        sim = Simulator()
        ticks = []
        handle = sim.every(5.0, lambda: ticks.append(sim.now))
        sim.schedule(12.0, handle.cancel)
        sim.schedule(40.0, lambda: None)
        sim.run()
        assert ticks == [5.0, 10.0]


class TestPropertyScheduling:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.0, 1e5, allow_nan=False),
                              st.booleans()),
                    min_size=1, max_size=40))
    def test_cancelled_subset_never_fires(self, items):
        sim = Simulator()
        fired = []
        events = []
        for delay, keep in items:
            events.append((sim.schedule(delay, fired.append, delay),
                           keep, delay))
        for event, keep, _ in events:
            if not keep:
                event.cancel()
        sim.run()
        expected = sorted(d for _, keep, d in events if keep)
        assert fired == expected

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.0, 1e4, allow_nan=False), min_size=1,
                    max_size=30),
           st.floats(1.0, 1e4, allow_nan=False))
    def test_run_until_partition(self, delays, cut):
        """run(until=cut) + run() fires exactly the same set as run()."""
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, fired.append, d)
        sim.run(until=cut)
        assert all(d <= cut for d in fired)
        sim.run()
        assert sorted(fired) == sorted(delays)
