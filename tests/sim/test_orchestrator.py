"""Integration tests for the orchestrator's request lifecycle semantics.

Each test constructs a tiny deterministic scenario and checks the exact
start types, waits and completions the paper's mechanism implies.
"""

import pytest

from repro.core.cidre import CIDREBSSPolicy
from repro.policies.base import OrchestrationPolicy, ScalingDecision
from repro.policies.faascache import BoundedQueueFaasCache
from repro.policies.lru import LRUPolicy
from repro.policies.ttl import TTLPolicy
from repro.sim.config import SimulationConfig
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator, simulate
from repro.sim.request import Request, StartType

GB = 1024.0


def spec(name="fn", mem=100.0, cold=500.0):
    return FunctionSpec(name, memory_mb=mem, cold_start_ms=cold)


def config(mb=1000.0, **kw):
    return SimulationConfig(capacity_gb=mb / GB, **kw)


class QueueOnlyPolicy(OrchestrationPolicy):
    """Test helper: always wait for a busy container (never cold start
    unless the orchestrator must escalate)."""

    name = "queue-only"

    def scale(self, request, worker, now):
        return ScalingDecision.queue()


class TestColdAndWarm:
    def test_first_request_is_cold(self):
        result = simulate([spec()], [Request("fn", 0.0, 100.0)],
                          LRUPolicy(), config())
        req = result.requests[0]
        assert req.start_type is StartType.COLD
        assert req.wait_ms == 500.0
        assert req.end_ms == 600.0
        assert result.cold_start_ratio == 1.0

    def test_reuse_after_completion_is_warm(self):
        reqs = [Request("fn", 0.0, 100.0), Request("fn", 1000.0, 100.0)]
        result = simulate([spec()], reqs, LRUPolicy(), config())
        assert result.requests[1].start_type is StartType.WARM
        assert result.requests[1].wait_ms == 0.0

    def test_concurrent_requests_cold_only_policy(self):
        reqs = [Request("fn", 0.0, 1000.0), Request("fn", 10.0, 1000.0)]
        result = simulate([spec()], reqs, LRUPolicy(), config())
        assert [r.start_type for r in result.requests] \
            == [StartType.COLD, StartType.COLD]
        # Each request waited exactly one cold start.
        assert result.requests[0].wait_ms == 500.0
        assert result.requests[1].wait_ms == 500.0

    def test_unknown_function_rejected(self):
        orch = Orchestrator([spec()], LRUPolicy(), config())
        with pytest.raises(KeyError):
            orch.run([Request("ghost", 0.0, 1.0)])

    def test_function_too_large_rejected(self):
        with pytest.raises(ValueError):
            Orchestrator([spec(mem=2000.0)], LRUPolicy(), config(mb=1000.0))


class TestDelayedWarmStarts:
    def test_queue_only_waits_for_busy_container(self):
        # R0 cold-starts (ready at 500, runs to 800); R1 arrives at 600,
        # queues, and is served when R0's container frees at 800.
        reqs = [Request("fn", 0.0, 300.0), Request("fn", 600.0, 300.0)]
        result = simulate([spec()], reqs, QueueOnlyPolicy(), config())
        r0, r1 = sorted(result.requests, key=lambda r: r.arrival_ms)
        assert r0.start_type is StartType.COLD
        assert r1.start_type is StartType.DELAYED
        assert r1.start_ms == 800.0
        assert r1.wait_ms == 200.0
        assert r1.container_id == r0.container_id

    def test_queue_escalates_to_cold_without_supply(self):
        # Only request of its function: nothing to queue on.
        result = simulate([spec()], [Request("fn", 0.0, 100.0)],
                          QueueOnlyPolicy(), config())
        assert result.requests[0].start_type is StartType.COLD

    def test_fifo_order_among_waiters(self):
        # One container busy until t=1000; three waiters queue.
        reqs = [Request("fn", 0.0, 1000.0)] + [
            Request("fn", 600.0 + i, 100.0) for i in range(3)]
        result = simulate([spec()], reqs, QueueOnlyPolicy(), config())
        waiters = sorted((r for r in result.requests
                          if r.start_type is not StartType.COLD),
                         key=lambda r: r.arrival_ms)
        starts = [r.start_ms for r in waiters]
        assert starts == sorted(starts)
        # Served back-to-back on the same container.
        assert starts[0] == 1500.0  # cold ready at 500 + exec 1000
        assert starts[1] == 1600.0
        assert starts[2] == 1700.0


class TestSpeculativeScaling:
    def test_busy_container_wins_race(self):
        # R0: cold 500, exec 300 -> container free at 800.
        # R1 arrives at 700: speculation provisions C1 (ready 1200) while
        # waiting on C0 (free 800). C0 wins; R1 delayed, wait 100.
        reqs = [Request("fn", 0.0, 300.0), Request("fn", 700.0, 300.0)]
        result = simulate([spec()], reqs, CIDREBSSPolicy(), config())
        r1 = max(result.requests, key=lambda r: r.arrival_ms)
        assert r1.start_type is StartType.DELAYED
        assert r1.wait_ms == 100.0
        # The speculative container was provisioned anyway.
        assert result.cold_starts_begun == 2

    def test_cold_start_wins_race(self):
        # R0 executes for 10 s; R1 arrives at 600 and its speculative
        # container (ready at 1100) beats C0 (free at 10500).
        reqs = [Request("fn", 0.0, 10_000.0), Request("fn", 600.0, 300.0)]
        result = simulate([spec()], reqs, CIDREBSSPolicy(), config())
        r1 = max(result.requests, key=lambda r: r.arrival_ms)
        assert r1.start_type is StartType.COLD
        assert r1.start_ms == 1100.0

    def test_wasted_speculative_container_counted(self):
        # The speculative container loses the race and is never reused.
        reqs = [Request("fn", 0.0, 300.0), Request("fn", 700.0, 300.0)]
        result = simulate([spec()], reqs, CIDREBSSPolicy(), config())
        assert result.wasted_cold_starts == 1


class TestBoundedQueues:
    def test_committed_queue_sticks_to_container(self):
        # Two busy containers: C0 frees at 5000, C1 at 1000. A request
        # committing to C0 (fewest queued at decision time is a tie ->
        # first found) must wait for C0 even though C1 frees earlier...
        # here we exercise commitment by filling C1's queue first.
        reqs = [
            Request("fn", 0.0, 5000.0),    # C0 busy long
            Request("fn", 0.0, 1000.0),    # C1 busy short
            Request("fn", 600.0, 10.0),    # commits to least-queued
            Request("fn", 601.0, 10.0),    # commits to the other
        ]
        result = simulate([spec()], reqs, BoundedQueueFaasCache(1),
                          config())
        delayed = [r for r in result.requests
                   if r.start_type is StartType.DELAYED]
        assert len(delayed) == 2
        starts = sorted(r.start_ms for r in delayed)
        # One served when the short container frees (1500), the other
        # stuck behind the long execution (5500).
        assert starts[0] == pytest.approx(1500.0)
        assert starts[1] == pytest.approx(5500.0)

    def test_queue_length_zero_is_vanilla(self):
        reqs = [Request("fn", 0.0, 5000.0), Request("fn", 600.0, 10.0)]
        result = simulate([spec()], reqs, BoundedQueueFaasCache(0),
                          config())
        assert result.delayed_start_ratio == 0.0
        assert result.cold_start_ratio == 1.0

    def test_full_queues_fall_back_to_cold(self):
        reqs = [
            Request("fn", 0.0, 5000.0),   # busy container
            Request("fn", 600.0, 10.0),   # fills its L=1 queue
            Request("fn", 601.0, 10.0),   # queue full -> cold start
        ]
        result = simulate([spec()], reqs, BoundedQueueFaasCache(1),
                          config())
        types = [r.start_type for r in
                 sorted(result.requests, key=lambda r: r.arrival_ms)]
        assert types == [StartType.COLD, StartType.DELAYED, StartType.COLD]


class TestMemoryPressure:
    def test_lru_evicts_oldest_idle(self):
        # Capacity 250 MB, 100 MB each: third function evicts the LRU one.
        specs = [spec("a"), spec("b"), spec("c")]
        reqs = [
            Request("a", 0.0, 10.0),
            Request("b", 1000.0, 10.0),
            Request("a", 2000.0, 10.0),   # touch a: b becomes LRU
            Request("c", 3000.0, 10.0),   # evicts b
            Request("a", 4000.0, 10.0),   # a still warm
            Request("b", 5000.0, 10.0),   # b was evicted -> cold
        ]
        result = simulate(specs, reqs, LRUPolicy(), config(mb=250.0))
        by_arrival = sorted(result.requests, key=lambda r: r.arrival_ms)
        assert by_arrival[4].start_type is StartType.WARM   # a
        assert by_arrival[5].start_type is StartType.COLD   # b again

    def test_provision_blocks_until_memory_frees(self):
        # Capacity fits one container; both requests contend.
        reqs = [Request("a", 0.0, 1000.0), Request("b", 100.0, 100.0)]
        result = simulate([spec("a"), spec("b")], reqs, LRUPolicy(),
                          config(mb=100.0))
        rb = [r for r in result.requests if r.func == "b"][0]
        # b could only start provisioning once a finished (t=1500) and its
        # container was evicted.
        assert rb.start_type is StartType.COLD
        assert rb.start_ms == pytest.approx(2000.0)

    def test_eviction_counted(self):
        specs = [spec("a"), spec("b")]
        reqs = [Request("a", 0.0, 10.0), Request("b", 1000.0, 10.0)]
        result = simulate(specs, reqs, LRUPolicy(), config(mb=100.0))
        assert result.evictions == 1


class TestThreads:
    def test_multi_thread_warm_start_on_busy_container(self):
        reqs = [Request("fn", 0.0, 1000.0), Request("fn", 600.0, 100.0)]
        result = simulate([spec()], reqs, LRUPolicy(),
                          config(threads_per_container=2))
        r1 = max(result.requests, key=lambda r: r.arrival_ms)
        assert r1.start_type is StartType.WARM
        assert r1.wait_ms == 0.0
        ids = {r.container_id for r in result.requests}
        assert len(ids) == 1  # both ran in the same container

    def test_single_thread_cannot_share(self):
        reqs = [Request("fn", 0.0, 1000.0), Request("fn", 600.0, 100.0)]
        result = simulate([spec()], reqs, LRUPolicy(), config())
        r1 = max(result.requests, key=lambda r: r.arrival_ms)
        assert r1.start_type is StartType.COLD


class TestTTL:
    def test_ttl_expires_idle_containers(self):
        reqs = [Request("fn", 0.0, 10.0),
                Request("fn", 100_000.0, 10.0)]   # 100 s later
        result = simulate([spec()], reqs, TTLPolicy(ttl_ms=60_000.0),
                          config())
        later = max(result.requests, key=lambda r: r.arrival_ms)
        assert later.start_type is StartType.COLD

    def test_ttl_keeps_recent_containers(self):
        reqs = [Request("fn", 0.0, 10.0),
                Request("fn", 30_000.0, 10.0)]
        result = simulate([spec()], reqs, TTLPolicy(ttl_ms=60_000.0),
                          config())
        later = max(result.requests, key=lambda r: r.arrival_ms)
        assert later.start_type is StartType.WARM


class TestPlumbing:
    def test_all_requests_complete_and_recorded(self):
        reqs = [Request("fn", float(i * 50), 25.0) for i in range(40)]
        result = simulate([spec()], reqs, LRUPolicy(), config())
        assert result.total == 40
        assert all(r.completed for r in result.requests)

    def test_memory_sampling(self):
        reqs = [Request("fn", 0.0, 5_000.0)]
        result = simulate([spec()], reqs, LRUPolicy(), config())
        assert result.memory_samples
        assert result.peak_memory_mb == pytest.approx(100.0)

    def test_multi_worker_hash_dispatch(self):
        specs = [spec(f"f{i}") for i in range(8)]
        reqs = [Request(f"f{i}", float(i), 10.0) for i in range(8)]
        cfg = SimulationConfig(capacity_gb=1.0, workers=4)
        orch = Orchestrator(specs, LRUPolicy(), cfg)
        result = orch.run(reqs)
        used_workers = {w.worker_id for w in orch.workers()
                        if w.containers or w.used_mb > 0}
        # With 8 functions over 4 workers, more than one worker is used.
        assert result.total == 8

    def test_requests_sorted_even_if_given_unsorted(self):
        reqs = [Request("fn", 1000.0, 10.0), Request("fn", 0.0, 10.0)]
        result = simulate([spec()], reqs, LRUPolicy(), config())
        first = min(result.requests, key=lambda r: r.arrival_ms)
        assert first.start_type is StartType.COLD
