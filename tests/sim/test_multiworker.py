"""Multi-worker cluster behaviour tests."""

import pytest

from repro.core.cidre import CIDREBSSPolicy
from repro.policies.lru import LRUPolicy
from repro.sim.config import SimulationConfig
from repro.sim.function import FunctionSpec
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import Request, StartType

GB = 1024.0


def specs(n):
    return [FunctionSpec(f"f{i}", memory_mb=100.0, cold_start_ms=500.0)
            for i in range(n)]


class TestDispatch:
    def test_hash_dispatch_is_sticky(self):
        """All requests of one function land on the same worker."""
        functions = specs(6)
        cfg = SimulationConfig(capacity_gb=4.0, workers=3,
                               dispatch="hash")
        orch = Orchestrator(functions, LRUPolicy(), cfg)
        reqs = [Request(f"f{i % 6}", float(i) * 10.0, 5.0)
                for i in range(60)]
        orch.run(reqs)
        for func in (f.name for f in functions):
            hosting = [w.worker_id for w in orch.workers()
                       if w.of_func(func)]
            assert len(hosting) <= 1

    def test_single_dispatch_uses_worker_zero(self):
        cfg = SimulationConfig(capacity_gb=4.0, workers=3,
                               dispatch="single")
        orch = Orchestrator(specs(3), LRUPolicy(), cfg)
        orch.run([Request(f"f{i}", float(i), 5.0) for i in range(3)])
        assert orch.workers()[0].containers
        assert not orch.workers()[1].containers
        assert not orch.workers()[2].containers

    def test_least_loaded_spreads(self):
        cfg = SimulationConfig(capacity_gb=4.0, workers=4,
                               dispatch="least-loaded")
        orch = Orchestrator(specs(8), LRUPolicy(), cfg)
        # Concurrent arrivals of 8 distinct functions.
        orch.run([Request(f"f{i}", 0.0 + float(i) * 0.1, 10_000.0)
                  for i in range(8)])
        used = [w.worker_id for w in orch.workers() if w.containers]
        assert len(used) == 4   # all workers took load

    def test_per_worker_capacity_is_partitioned(self):
        # 400 MB total over 4 workers = 100 MB each: a 150 MB function
        # cannot fit anywhere.
        big = FunctionSpec("big", memory_mb=150.0, cold_start_ms=1.0)
        with pytest.raises(ValueError):
            Orchestrator([big], LRUPolicy(),
                         SimulationConfig(capacity_gb=400.0 / GB,
                                          workers=4))


class TestIsolation:
    def test_speculation_stays_on_dispatch_worker(self):
        """Speculative containers are provisioned on the worker that owns
        the function (hash dispatch), not wherever memory is free."""
        functions = specs(4)
        cfg = SimulationConfig(capacity_gb=2.0, workers=2,
                               dispatch="hash")
        orch = Orchestrator(functions, CIDREBSSPolicy(), cfg)
        reqs = []
        for i in range(4):
            reqs.append(Request(f"f{i}", 0.0, 2_000.0))
            reqs.append(Request(f"f{i}", 100.0, 100.0))  # overlap
        result = orch.run(reqs)
        assert result.total == 8
        for func in (f.name for f in functions):
            hosting = [w.worker_id for w in orch.workers()
                       if w.of_func(func)]
            assert len(hosting) <= 1

    def test_pressure_on_one_worker_does_not_evict_other(self):
        # "fa" and "fd" hash to different workers (crc32 parity).
        functions = [
            FunctionSpec("fa", 900.0, 500.0),   # big, fills its worker
            FunctionSpec("fd", 900.0, 500.0),
        ]
        cfg = SimulationConfig(capacity_gb=2000.0 / GB, workers=2,
                               dispatch="hash")
        orch = Orchestrator(functions, LRUPolicy(), cfg)
        result = orch.run([
            Request("fa", 0.0, 10.0),
            Request("fd", 0.0, 10.0),
            Request("fa", 5_000.0, 10.0),
            Request("fd", 5_000.0, 10.0),
        ])
        # Both fit on their own worker: second round all warm.
        later = [r for r in result.requests if r.arrival_ms == 5_000.0]
        assert all(r.start_type is StartType.WARM for r in later)
        assert result.evictions == 0
