"""Tests for the run-telemetry subsystem: sinks, spans, traces, series.

Covers the satellite/acceptance items of the telemetry work: bit-exact
JSONL round trips, ring-bounded memory under a pressure replay with the
streaming sink still seeing every event, span reconstruction matching
the simulator's own request records, Chrome ``trace_event`` schema
validity, time-series start accounting, and the differential proof that
attaching telemetry leaves simulation outcomes bit-identical.
"""

import json

import numpy as np
import pytest

from repro.experiments.suites import policy_factories
from repro.sim.config import SimulationConfig
from repro.sim.eventlog import Event, EventKind, EventLog
from repro.sim.orchestrator import Orchestrator
from repro.sim.request import StartType
from repro.sim.telemetry import (JsonlSink, RingSink, SpanBuilder,
                                 TimeSeriesRecorder, build_spans,
                                 chrome_trace, event_from_dict,
                                 event_to_dict, read_events_jsonl,
                                 write_chrome_trace)
from repro.traces.azure import azure_trace
from repro.traces.synth import ArrivalModel, synth_trace


def pressure_trace(seed=101):
    return synth_trace(f"telemetry-{seed}", np.random.default_rng(seed),
                       n_functions=8, total_requests=900,
                       duration_ms=120_000.0,
                       arrivals=ArrivalModel(burst_size_p=0.4))


def replay(trace, capacity_gb=2.0, policy="CIDRE", event_log=None,
           recorder=None):
    config = SimulationConfig(capacity_gb=capacity_gb)
    orchestrator = Orchestrator(trace.functions,
                                policy_factories()[policy](trace), config,
                                event_log=event_log, recorder=recorder)
    result = orchestrator.run(trace.fresh_requests())
    return orchestrator, result


class Traced:
    """One fully-instrumented pressure replay shared across tests."""

    def __init__(self):
        self.log = EventLog()
        self.spans = SpanBuilder()
        self.log.attach(self.spans)
        self.recorder = TimeSeriesRecorder(interval_ms=1_000.0)
        self.orch, self.result = replay(pressure_trace(),
                                        event_log=self.log,
                                        recorder=self.recorder)


@pytest.fixture(scope="module")
def traced():
    return Traced()


# ======================================================================
# Serialization + sinks


class TestSerialization:
    def test_event_dict_roundtrip(self):
        full = Event(12.5, EventKind.EXEC_START, "fn", container_id=3,
                     req_id=7, detail="cold", worker_id=1)
        sparse = Event(0.0, EventKind.ARRIVAL, "fn")
        for event in (full, sparse):
            assert event_from_dict(event_to_dict(event)) == event
        # Sparse events omit the None/empty fields entirely.
        assert set(event_to_dict(sparse)) == {"t", "kind", "func"}

    def test_jsonl_roundtrip_is_bit_exact(self, traced, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            for event in traced.log:
                sink.emit(event)
        loaded = read_events_jsonl(path)
        assert loaded == list(traced.log)   # dataclass eq: every field
        assert sink.emitted == len(traced.log)

    def test_jsonl_sink_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit(Event(1.0, EventKind.ARRIVAL, "fn", req_id=0))
        sink.close()
        sink.close()   # idempotent
        assert len(read_events_jsonl(path)) == 1


class TestRingSink:
    def test_keeps_newest(self):
        ring = RingSink(capacity=3)
        for i in range(10):
            ring.emit(Event(float(i), EventKind.ARRIVAL, "fn", req_id=i))
        assert len(ring) == 3
        assert [e.req_id for e in ring] == [7, 8, 9]
        assert ring.emitted == 10
        assert ring.dropped == 7

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingSink(0)


class TestBoundedPressureReplay:
    """Acceptance: a large pressure replay with a streaming sink keeps
    the in-memory EventLog bounded by the ring capacity while the sink
    sees the complete stream."""

    def test_ring_bounded_with_complete_jsonl(self, tmp_path):
        trace = azure_trace(seed=1, total_requests=20_000)
        jsonl = JsonlSink(tmp_path / "pressure.jsonl")
        ring = RingSink(capacity=256)
        log = EventLog(capacity=4_096, sinks=(jsonl, ring))
        _, result = replay(trace, capacity_gb=2.0, event_log=log)
        log.close()

        assert result.total >= 15_000
        assert result.evictions > 0              # really under pressure
        assert len(log) == 4_096                 # memory bound held
        assert log.recorded == len(log) + log.dropped
        assert jsonl.emitted == log.recorded     # sink saw every event
        loaded = read_events_jsonl(jsonl.path)
        assert len(loaded) == log.recorded
        # The bounded buffer holds exactly the newest events.
        assert loaded[-len(log):] == list(log)
        assert ring.emitted == log.recorded
        assert list(ring) == loaded[-len(ring):]


# ======================================================================
# Spans


class TestSpans:
    def test_spans_match_request_records(self, traced):
        spans = {s.req_id: s for s in traced.spans.finish()}
        completed = [r for r in traced.result.requests if r.completed]
        assert len(completed) > 0
        for r in completed:
            span = spans[r.req_id]
            assert span.func == r.func
            assert span.arrival_ms == r.arrival_ms
            assert span.exec_start_ms == r.start_ms
            assert span.exec_end_ms == r.end_ms
            assert span.wait_ms == r.wait_ms
            assert span.service_ms == r.service_ms
            assert span.start_type == r.start_type.value
            assert span.container_id == r.container_id
            assert span.completed

    def test_cold_spans_carry_provision_window(self, traced):
        cold = [s for s in traced.spans.finish()
                if s.start_type == "cold" and s.completed]
        assert cold
        for span in cold:
            assert span.provision_start_ms is not None
            assert span.provision_ready_ms is not None
            assert span.provision_start_ms < span.provision_ready_ms
            assert span.provision_ready_ms <= span.exec_start_ms

    def test_streaming_equals_offline_fold(self, traced):
        offline = build_spans(list(traced.log))
        assert offline == traced.spans.finish()

    def test_container_tracks(self, traced):
        evicted = [t for t in traced.spans.containers.values()
                   if t.evicted_ms is not None]
        assert len(evicted) == traced.result.evictions
        for track in traced.spans.containers.values():
            assert track.worker_id is not None
            for window in track.provisions:
                assert window.ready_ms is None or \
                    window.ready_ms >= window.start_ms


# ======================================================================
# Chrome trace export


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def payload(self, traced):
        return chrome_trace(traced.spans)

    def test_is_json_serializable(self, payload):
        text = json.dumps(payload)
        assert json.loads(text) == payload

    def test_schema(self, payload):
        events = payload["traceEvents"]
        assert events
        named_pids = set()
        for entry in events:
            assert {"ph", "pid", "name"} <= set(entry)
            if entry["ph"] == "M" and entry["name"] == "process_name":
                named_pids.add(entry["pid"])
            if entry["ph"] == "X":
                assert entry["ts"] >= 0.0
                assert entry["dur"] >= 0.0
                assert "tid" in entry
            if entry["ph"] in ("b", "e"):
                assert "id" in entry and "cat" in entry
        # Every referenced pid has a process_name metadata record.
        assert {e["pid"] for e in events} == named_pids

    def test_async_pairs_balanced(self, payload, traced):
        begins = {}
        ends = {}
        for entry in payload["traceEvents"]:
            if entry["ph"] == "b":
                begins[(entry["pid"], entry["id"])] = entry["ts"]
            elif entry["ph"] == "e":
                ends[(entry["pid"], entry["id"])] = entry["ts"]
        assert set(begins) == set(ends)
        assert all(begins[k] <= ends[k] for k in begins)
        completed = sum(1 for r in traced.result.requests if r.completed)
        assert len(begins) == completed

    def test_exec_slices_cover_requests(self, payload, traced):
        execs = [e for e in payload["traceEvents"]
                 if e["ph"] == "X" and e.get("cat") == "exec"]
        completed = [r for r in traced.result.requests if r.completed]
        assert len(execs) == len(completed)
        by_rid = {e["args"]["req_id"]: e for e in execs}
        r = completed[0]
        entry = by_rid[r.req_id]
        assert entry["ts"] == pytest.approx(r.start_ms * 1000.0)
        assert entry["dur"] == pytest.approx((r.end_ms - r.start_ms)
                                             * 1000.0)

    def test_write_chrome_trace(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        payload = write_chrome_trace(path, traced.spans)
        with open(path) as fh:
            assert json.load(fh) == payload


# ======================================================================
# Time series


class TestTimeSeries:
    def test_start_totals_match_result(self, traced):
        cluster = traced.recorder.cluster
        for start_type in StartType:
            assert sum(cluster.starts[start_type.value]) == \
                traced.result.count(start_type)

    def test_function_starts_sum_to_cluster(self, traced):
        recorder = traced.recorder
        for kind in ("warm", "delayed", "cold"):
            per_func = sum(sum(s.starts[kind])
                           for s in recorder.functions.values())
            assert per_func == sum(recorder.cluster.starts[kind])

    def test_sampling_grid(self, traced):
        cluster = traced.recorder.cluster
        assert len(cluster) > 10
        times = cluster.times
        assert all(a < b for a, b in zip(times, times[1:]))
        # Periodic ticks land on the interval grid (final flush may not).
        assert times[1] - times[0] == pytest.approx(1_000.0)
        # Function series sample the tail of the cluster grid.
        for series in traced.recorder.functions.values():
            assert series.times == times[-len(series):]
            assert series.warm == [i + b for i, b in
                                   zip(series.idle, series.busy)]

    def test_points_and_rates(self, traced):
        cluster = traced.recorder.cluster
        points = cluster.points("warm")
        assert points == list(zip(cluster.times, cluster.warm))
        starts = cluster.points("cold_starts")
        assert [v for _, v in starts] == cluster.starts["cold"]
        rates = cluster.start_rate_per_sec("cold", 1_000.0)
        assert [v for _, v in rates] == cluster.starts["cold"]

    def test_as_dict_roundtrips_through_json(self, traced, tmp_path):
        path = tmp_path / "series.json"
        traced.recorder.save_json(path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded == traced.recorder.as_dict()
        assert loaded["interval_ms"] == 1_000.0
        assert set(loaded["functions"]) == set(traced.recorder.functions)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(interval_ms=0.0)


# ======================================================================
# Telemetry must not perturb the simulation


def _normalized_events(events):
    """Event tuples with container ids rebased to the first observed id
    (ids come from a process-global counter, so two runs differ by a
    constant offset)."""
    base = None
    out = []
    for e in events:
        cid = None
        if e.container_id is not None:
            if base is None:
                base = e.container_id
            cid = e.container_id - base
        out.append((e.time_ms, e.kind.value, e.func, cid, e.req_id,
                    e.detail, e.worker_id))
    return out


class TestTelemetryIsReadOnly:
    def test_instrumented_run_is_bit_identical(self, tmp_path):
        trace = pressure_trace(seed=202)

        bare_log = EventLog()
        _, bare = replay(trace, event_log=bare_log)

        jsonl = JsonlSink(tmp_path / "events.jsonl")
        full_log = EventLog(capacity=128, sinks=(jsonl, SpanBuilder()))
        _, instrumented = replay(trace, event_log=full_log,
                                 recorder=TimeSeriesRecorder(500.0))
        full_log.close()

        assert bare.summary() == instrumented.summary()
        tuples = lambda res: [(r.req_id, r.start_type, r.start_ms,
                               r.end_ms) for r in res.requests]
        assert tuples(bare) == tuples(instrumented)
        # The streamed event log matches the unbounded in-memory one.
        streamed = read_events_jsonl(jsonl.path)
        assert _normalized_events(streamed) == \
            _normalized_events(list(bare_log))

    def test_recorder_disabled_by_default(self):
        orch, _ = replay(pressure_trace())
        assert orch.recorder is None
        assert orch.event_log is None
